"""Crash-safe durability: WAL, atomic commits, recovery, crash matrix.

The paper models media whose value lives in *permanently associated*
interpretations (§4.1); this package makes "permanent" literal under
crashes. Three mechanisms, one contract:

* :class:`~repro.durability.wal.WriteAheadLog` +
  :class:`~repro.durability.store.DurablePageStore` — no-steal
  buffering with redo recovery for page-granular storage: a commit is
  acknowledged at the WAL fsync, and
  :func:`~repro.durability.store.recover_page_store` replays committed
  full-page images after a crash;
* :func:`~repro.durability.atomic.atomic_write_bytes` — shadow write +
  fsync barrier + rename for whole-file commits (RMF containers,
  server checkpoints): readers see a complete old or new file, never a
  prefix;
* :mod:`~repro.durability.crashtest` — the crash matrix that *proves*
  it: every durability-critical instruction is a named crash point,
  and the harness kills the workload at each one, recovers over the
  simulated medium, and asserts no acknowledged write was lost and no
  torn state is visible.

The contract everywhere: **acknowledged ⇒ durable**; unacknowledged
work may vanish but never corrupts what came before.
"""

from repro.durability.atomic import (
    atomic_write_bytes,
    read_bytes,
    remove_stale_temp,
)
from repro.durability.crashtest import (
    CheckpointCrashScenario,
    ContainerCrashScenario,
    CrashMatrix,
    CrashMatrixReport,
    CrashOutcome,
    PageStoreCrashScenario,
    default_scenarios,
)
from repro.durability.fs import REAL_FS, OsFilesystem
from repro.durability.store import (
    DurablePageStore,
    RecoveryReport,
    recover_page_store,
)
from repro.durability.wal import WalRecord, WalScan, WriteAheadLog

__all__ = [
    "REAL_FS",
    "CheckpointCrashScenario",
    "ContainerCrashScenario",
    "CrashMatrix",
    "CrashMatrixReport",
    "CrashOutcome",
    "DurablePageStore",
    "OsFilesystem",
    "PageStoreCrashScenario",
    "RecoveryReport",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "atomic_write_bytes",
    "default_scenarios",
    "read_bytes",
    "recover_page_store",
    "remove_stale_temp",
]
