"""An append-only, checksummed, segment-rotating write-ahead log.

The WAL is the repo's durability primitive: a write is *acknowledged*
only after its records and a commit marker are appended and fsynced
here. The main data file may then be updated lazily — a crash between
the two is repaired by redo recovery
(:func:`repro.durability.store.recover_page_store`), which replays
committed records and discards the uncommitted tail.

Physical format, per segment file (``wal-00000001.seg``)::

    record := type u8 | txn u64 BE | payload_len u32 BE | crc u32 BE | payload
    crc    := CRC-32 of (type | txn | payload_len | payload)

Record types: ``HEADER`` (segment preamble, format version), ``GROW``
(a page appended to the store), ``WRITE`` (a full page image), and
``COMMIT`` (transaction boundary — the acknowledgment point). Full page
images make replay idempotent: recovering twice, or re-applying a
transaction the main file already holds, is byte-neutral.

A crash can only damage the *tail* of the newest segment (appends are
sequential and fsync-barriered), so a scan treats a bad record there as
the torn tail and stops; a bad record with valid data after it raises
:class:`~repro.errors.WalCorruptionError` — that is disk damage, not a
crash, and recovery refuses to guess.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.durability.fs import dirname, resolve
from repro.errors import WalCorruptionError, WalError
from repro.faults.crash import NULL_CRASH, CrashInjector
from repro.obs.events import Severity
from repro.obs.instrument import Instrumented, Observability

#: Record types.
HEADER, GROW, WRITE, COMMIT = 1, 2, 3, 4

RECORD_NAMES = {HEADER: "header", GROW: "grow", WRITE: "write",
                COMMIT: "commit"}

_RECORD = struct.Struct(">BQII")  # type, txn, payload_len, crc
_PAGE_NO = struct.Struct(">Q")
_HEADER_PAYLOAD = struct.Struct(">I")  # format version

#: WAL format version written into every segment header.
WAL_VERSION = 1

#: Default segment-rotation threshold (bytes).
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Guard against absurd payload lengths from corrupt headers.
_MAX_PAYLOAD = 1 << 26


@dataclass(frozen=True)
class WalRecord:
    """One decoded record, with its physical position."""

    segment: int
    offset: int
    type: int
    txn: int
    payload: bytes

    @property
    def type_name(self) -> str:
        return RECORD_NAMES.get(self.type, f"unknown({self.type})")

    def page_no(self) -> int:
        """The page number of a GROW/WRITE record."""
        if self.type not in (GROW, WRITE):
            raise WalError(f"{self.type_name} record carries no page number")
        return _PAGE_NO.unpack_from(self.payload)[0]

    def page_image(self) -> bytes:
        """The full page image of a WRITE record."""
        if self.type != WRITE:
            raise WalError(f"{self.type_name} record carries no page image")
        return self.payload[_PAGE_NO.size:]


@dataclass
class WalScan:
    """Everything a sequential scan of the log learned."""

    records: list[WalRecord] = field(default_factory=list)
    committed_txns: set[int] = field(default_factory=set)
    torn_tail: bool = False
    bytes_scanned: int = 0
    segments: int = 0

    @property
    def max_txn(self) -> int:
        return max((r.txn for r in self.records), default=0)

    def uncommitted_records(self) -> list[WalRecord]:
        return [
            r for r in self.records
            if r.type not in (HEADER, COMMIT)
            and r.txn not in self.committed_txns
        ]


def encode_record(record_type: int, txn: int, payload: bytes = b"") -> bytes:
    """One record's wire bytes (exposed for tests and the inspector)."""
    body = _RECORD.pack(record_type, txn, len(payload), 0)[:-4]
    crc = zlib.crc32(payload, zlib.crc32(body))
    return body + struct.pack(">I", crc) + payload


class WriteAheadLog(Instrumented):
    """Segmented redo log over a directory of segment files.

    Appends always open a *fresh* segment — never the possibly-torn
    tail of an old one — so the monotonic segment numbering doubles as
    the recovery ordering. ``segment_bytes`` bounds each segment;
    rotation fsyncs the finished segment and the directory before the
    next record lands.
    """

    def __init__(self, directory: str, segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fs=None, crash: CrashInjector | None = None,
                 obs: Observability | None = None):
        if segment_bytes < 64:
            raise WalError(
                f"segment_bytes must be >= 64, got {segment_bytes}"
            )
        self.directory = str(directory)
        self.segment_bytes = segment_bytes
        self.fs = resolve(fs)
        self.crash = crash or NULL_CRASH
        self.fs.makedirs(self.directory, exist_ok=True)
        self._existing = self._segment_indices()
        self._next_segment = (self._existing[-1] + 1 if self._existing
                              else 1)
        self._handle = None
        self._current_bytes = 0
        self._next_txn = 0  # resolved lazily against the scanned log
        self.appends = 0
        self.commits = 0
        self.syncs = 0
        self.rotations = 0
        if obs is not None:
            self.instrument(obs)

    # -- segment bookkeeping ------------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return f"{self.directory}/wal-{index:08d}.seg"

    def _segment_indices(self) -> list[int]:
        indices = []
        for name in self.fs.listdir(self.directory):
            if name.startswith("wal-") and name.endswith(".seg"):
                try:
                    indices.append(int(name[4:-4]))
                except ValueError:
                    raise WalError(
                        f"unparseable segment name {name!r} in "
                        f"{self.directory}"
                    ) from None
        return sorted(indices)

    def segments(self) -> list[int]:
        """Segment indices currently on disk, oldest first."""
        return self._segment_indices()

    def size_bytes(self) -> int:
        return sum(
            self.fs.getsize(self._segment_path(i))
            for i in self._segment_indices()
        )

    # -- appending ----------------------------------------------------------------

    def begin(self) -> int:
        """Allocate the next transaction id (monotonic across reopens)."""
        if self._next_txn == 0:
            self._next_txn = self.scan().max_txn + 1
        txn = self._next_txn
        self._next_txn += 1
        return txn

    def _open_segment(self) -> None:
        self.crash.point("wal.rotate")
        index = self._next_segment
        self._next_segment += 1
        path = self._segment_path(index)
        self._handle = self.fs.open(path, "wb")
        self._current_bytes = 0
        header = encode_record(HEADER, 0, _HEADER_PAYLOAD.pack(WAL_VERSION))
        self._handle.write(header)
        self._current_bytes += len(header)
        self.fs.fsync(self._handle)
        self.fs.fsync_dir(self.directory)
        self.rotations += 1
        self._obs.metrics.counter("wal.rotations").inc()
        self._obs.metrics.gauge("wal.segments").set(
            len(self._segment_indices())
        )
        self._obs.events.record(
            Severity.DEBUG, "durability.wal", "segment.opened",
            segment=index,
        )

    def _append(self, record_type: int, txn: int, payload: bytes) -> None:
        data = encode_record(record_type, txn, payload)
        if self._handle is None \
                or self._current_bytes + len(data) > self.segment_bytes:
            if self._handle is not None:
                self.fs.fsync(self._handle)
                self._handle.close()
            self._open_segment()
        self.crash.point("wal.append")
        self._handle.write(data)
        self._current_bytes += len(data)
        self.appends += 1
        metrics = self._obs.metrics
        metrics.counter("wal.appends").inc(type=RECORD_NAMES[record_type])
        metrics.counter("wal.bytes_appended").inc(len(data))

    def log_grow(self, txn: int, page_no: int) -> None:
        self._append(GROW, txn, _PAGE_NO.pack(page_no))

    def log_write(self, txn: int, page_no: int, image: bytes) -> None:
        self._append(WRITE, txn, _PAGE_NO.pack(page_no) + image)

    def commit(self, txn: int) -> None:
        """Append the commit marker and fsync: the acknowledgment barrier.

        When this returns, the transaction survives any crash."""
        self.crash.point("wal.commit")
        self._append(COMMIT, txn, b"")
        self.crash.point("wal.commit.before_sync")
        self.sync()
        self.crash.point("wal.commit.after_sync")
        self.commits += 1
        self._obs.metrics.counter("wal.commits").inc()

    def sync(self) -> None:
        if self._handle is not None:
            self.fs.fsync(self._handle)
            self.syncs += 1
            self._obs.metrics.counter("wal.fsyncs").inc()

    # -- scanning -----------------------------------------------------------------

    def scan(self) -> WalScan:
        """Decode every record, stopping at a torn tail.

        Raises :class:`~repro.errors.WalCorruptionError` when damage is
        found anywhere a crash could not have put it.
        """
        scan = WalScan()
        indices = self._segment_indices()
        scan.segments = len(indices)
        for position, index in enumerate(indices):
            data = self._read_segment(index)
            offset = 0
            clean = True
            while offset < len(data):
                record, consumed = self._decode_one(index, data, offset)
                if record is None:
                    clean = False
                    break
                scan.records.append(record)
                if record.type == COMMIT:
                    scan.committed_txns.add(record.txn)
                offset += consumed
                scan.bytes_scanned += consumed
            if not clean:
                if position != len(indices) - 1:
                    raise WalCorruptionError(
                        f"segment {index} is damaged mid-log (valid "
                        f"segments follow); refusing to replay past it"
                    )
                scan.torn_tail = True
        return scan

    def _read_segment(self, index: int) -> bytes:
        with self.fs.open(self._segment_path(index), "rb") as handle:
            return handle.read()

    @staticmethod
    def _decode_one(segment: int, data: bytes,
                    offset: int) -> tuple[WalRecord | None, int]:
        if offset + _RECORD.size > len(data):
            return None, 0
        record_type, txn, length, crc = _RECORD.unpack_from(data, offset)
        if record_type not in RECORD_NAMES or length > _MAX_PAYLOAD:
            return None, 0
        start = offset + _RECORD.size
        if start + length > len(data):
            return None, 0
        payload = data[start:start + length]
        expected = zlib.crc32(payload,
                              zlib.crc32(data[offset:offset + 13]))
        if crc != expected:
            return None, 0
        return (WalRecord(segment, offset, record_type, txn, payload),
                _RECORD.size + length)

    # -- truncation ---------------------------------------------------------------

    def truncate(self) -> int:
        """Delete every segment (a checkpoint made them redundant).

        Deletion runs oldest-first so a crash mid-truncate leaves a
        suffix of the log — whose committed transactions replay
        idempotently over the already-synced main file. Returns the
        number of segments removed."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._current_bytes = 0
        removed = 0
        for index in self._segment_indices():
            self.crash.point("wal.truncate")
            self.fs.remove(self._segment_path(index))
            removed += 1
        self.fs.fsync_dir(self.directory)
        self._obs.metrics.counter("wal.truncations").inc()
        self._obs.metrics.gauge("wal.segments").set(0)
        self._obs.events.record(
            Severity.DEBUG, "durability.wal", "log.truncated",
            segments=removed,
        )
        return removed

    def close(self) -> None:
        if self._handle is not None:
            self.fs.fsync(self._handle)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """Human summary for ``tools.inspect --wal``."""
        scan = self.scan()
        counts: dict[str, int] = {}
        for record in scan.records:
            counts[record.type_name] = counts.get(record.type_name, 0) + 1
        discarded = len(scan.uncommitted_records())
        lines = [
            f"write-ahead log at {self.directory}",
            f"  segments      : {scan.segments} "
            f"({self.size_bytes():,} bytes)",
            f"  records       : {len(scan.records)} "
            + "(" + ", ".join(
                f"{name} {counts[name]}" for name in sorted(counts)
            ) + ")" if scan.records else "  records       : 0",
            f"  committed txns: {len(scan.committed_txns)}"
            + (f" (through txn {scan.max_txn})" if scan.records else ""),
            f"  uncommitted   : {discarded} records would be discarded",
            f"  torn tail     : {'yes' if scan.torn_tail else 'no'}",
        ]
        return "\n".join(lines)
