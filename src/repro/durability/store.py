"""A crash-safe page store: no-steal buffering over a write-ahead log.

:class:`DurablePageStore` keeps the :class:`~repro.blob.pages.PageStore`
API but changes the contract underneath: writes accumulate as full page
images in an in-memory overlay (*no-steal* — an uncommitted byte never
reaches the backing pager), and :meth:`DurablePageStore.commit` is the
acknowledgment point — it appends every pending image plus a commit
marker to the :class:`~repro.durability.wal.WriteAheadLog`, fsyncs, and
only then applies the images to the pager. A crash anywhere leaves one
of two recoverable states:

* commit marker durable → redo recovery replays the full page images
  (idempotently — replaying twice is byte-neutral);
* commit marker missing/torn → the transaction was never acknowledged,
  and its records are discarded with the torn tail.

:func:`recover_page_store` is the reboot path: scan, replay committed
transactions onto the pager, fsync, truncate the log, and hand back a
fresh store plus a :class:`RecoveryReport`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.blob.pages import PageStore
from repro.durability.wal import GROW, WRITE, WriteAheadLog
from repro.errors import BlobError, DurabilityError, WalCorruptionError
from repro.faults.crash import NULL_CRASH, CrashInjector
from repro.obs.events import Severity
from repro.obs.instrument import Observability


class DurablePageStore(PageStore):
    """Page store whose writes survive crashes once :meth:`commit` returns.

    ``auto_checkpoint_bytes``, when set, bounds recovery time: after any
    commit that leaves the WAL at or above the threshold, the store
    checkpoints (fsync the main file, truncate the log) automatically.
    """

    def __init__(self, pager=None, wal: WriteAheadLog | None = None,
                 checksums: bool = False, buffer_pool=None,
                 auto_checkpoint_bytes: int | None = None,
                 crash: CrashInjector | None = None,
                 obs: Observability | None = None):
        if wal is None:
            raise DurabilityError(
                "DurablePageStore requires a WriteAheadLog"
            )
        self.wal = wal
        self.crash = crash or NULL_CRASH
        self.auto_checkpoint_bytes = auto_checkpoint_bytes
        # page -> full merged image of every uncommitted write.
        self._dirty: dict[int, bytearray] = {}
        self._pending_grows = 0
        self._txn_reused: list[int] = []
        self.committed_txns = 0
        super().__init__(pager, checksums=checksums,
                         buffer_pool=buffer_pool, obs=obs)

    def _instrument_children(self, obs: Observability) -> None:
        super()._instrument_children(obs)
        self.wal.instrument(obs)

    # -- transaction state --------------------------------------------------------

    @property
    def pending_writes(self) -> int:
        """Dirty pages buffered for the next commit."""
        return len(self._dirty)

    @property
    def pending_grows(self) -> int:
        return self._pending_grows

    @property
    def allocated_pages(self) -> int:
        return (len(self.pager) + self._pending_grows) - len(self._free)

    def _page_limit(self) -> int:
        return len(self.pager) + self._pending_grows

    # -- PageStore API, rerouted through the overlay ------------------------------

    def allocate(self) -> int:
        if self._free_order:
            page_no = self._free_order.pop()
            self._free.discard(page_no)
            self._txn_reused.append(page_no)
            # The zeroing is itself a buffered write, journaled and
            # applied at commit — a crash must not expose the previous
            # owner's bytes as an acknowledged zero page.
            self._dirty[page_no] = bytearray(self.page_size)
            if self.buffer_pool is not None:
                self.buffer_pool.invalidate(page_no)
            self._obs.metrics.counter("blob.page.zeroed").inc()
            self._obs.metrics.counter("blob.page.allocations").inc(
                source="reuse"
            )
            return page_no
        page_no = self._page_limit()
        self._pending_grows += 1
        self._obs.metrics.counter("blob.page.allocations").inc(source="grow")
        return page_no

    def write(self, page_no: int, data: bytes, offset: int = 0) -> None:
        end = offset + len(data)
        if end > self.page_size:
            raise BlobError(
                f"write of {len(data)} bytes at offset {offset} exceeds "
                f"page size {self.page_size}"
            )
        limit = self._page_limit()
        if not 0 <= page_no < limit:
            raise BlobError(
                f"page {page_no} out of range (have {limit})"
            )
        if page_no in self._free:
            raise BlobError(f"write to freed page {page_no}")
        image = self._dirty.get(page_no)
        if image is None:
            if page_no < len(self.pager):
                image = bytearray(self._read_raw(page_no))
            else:
                image = bytearray(self.page_size)
            self._dirty[page_no] = image
        image[offset:end] = data
        metrics = self._obs.metrics
        metrics.counter("blob.page.writes").inc()
        metrics.counter("blob.page.bytes_written").inc(len(data))

    def read(self, page_no: int, verify: bool = True) -> bytes:
        image = self._dirty.get(page_no)
        if image is not None:
            metrics = self._obs.metrics
            metrics.counter("blob.page.reads").inc()
            metrics.counter("blob.page.dirty_reads").inc()
            metrics.counter("blob.page.bytes_read").inc(len(image))
            return bytes(image)
        if page_no >= len(self.pager):
            if page_no < self._page_limit():
                # Allocated by grow this transaction, never written.
                metrics = self._obs.metrics
                metrics.counter("blob.page.reads").inc()
                metrics.counter("blob.page.bytes_read").inc(self.page_size)
                return bytes(self._zero_page)
            raise BlobError(
                f"page {page_no} out of range (have {self._page_limit()})"
            )
        return super().read(page_no, verify=verify)

    def free(self, page_no: int) -> None:
        limit = self._page_limit()
        if not 0 <= page_no < limit:
            raise BlobError(
                f"cannot free page {page_no}: out of range (have {limit})"
            )
        if page_no in self._free:
            raise BlobError(f"double free of page {page_no}")
        self._free.add(page_no)
        self._free_order.append(page_no)
        self._dirty.pop(page_no, None)
        if self.buffer_pool is not None:
            self.buffer_pool.invalidate(page_no)
        self._obs.metrics.counter("blob.page.frees").inc()

    # -- commit / rollback / checkpoint -------------------------------------------

    def commit(self) -> int | None:
        """Make every buffered write durable; returns the txn id.

        The fsync inside :meth:`WriteAheadLog.commit` is the
        acknowledgment barrier: before it, a crash discards the
        transaction wholesale; after it, recovery replays it
        completely. Returns None when nothing is pending."""
        if not self._dirty and not self._pending_grows:
            return None
        self.crash.point("store.commit.begin")
        # repro: suppress DF002 — a txn torn open by a mid-commit crash is the
        txn = self.wal.begin()  # point: recovery's commit-record scan drops it
        base = len(self.pager)
        for i in range(self._pending_grows):
            self.wal.log_grow(txn, base + i)
        dirty_pages = sorted(self._dirty)
        for page_no in dirty_pages:
            self.wal.log_write(txn, page_no, bytes(self._dirty[page_no]))
        self.wal.commit(txn)
        # -- acknowledged: everything below is redone by recovery ------
        self.crash.point("store.commit.acknowledged")
        for _ in range(self._pending_grows):
            self.pager.grow()
        self.crash.point("store.commit.apply")
        for page_no in dirty_pages:
            self._apply_page(page_no, bytes(self._dirty[page_no]))
        grows = self._pending_grows
        self._dirty.clear()
        self._pending_grows = 0
        self._txn_reused.clear()
        self.committed_txns += 1
        metrics = self._obs.metrics
        metrics.counter("durability.commits").inc()
        metrics.counter("durability.pages_committed").inc(len(dirty_pages))
        self._obs.events.record(
            Severity.DEBUG, "durability.store", "txn.committed",
            txn=txn, pages=len(dirty_pages), grows=grows,
        )
        if self.auto_checkpoint_bytes is not None \
                and self.wal.size_bytes() >= self.auto_checkpoint_bytes:
            self.checkpoint()
        return txn

    def _apply_page(self, page_no: int, image: bytes) -> None:
        """Physically install a committed full-page image."""
        self.pager.write_page(page_no, image)
        if self.checksums:
            self._checksums[page_no] = zlib.crc32(image)
        pool = self.buffer_pool
        if pool is not None and page_no in pool:
            pool.put(page_no, image)

    def rollback(self) -> int:
        """Discard every buffered write; returns how many were dropped.

        Pages allocated during the transaction are abandoned: reused
        pages return to the free list, grown pages were never
        materialized. Page numbers handed out since the last commit are
        invalid afterwards."""
        discarded = len(self._dirty) + self._pending_grows
        self._dirty.clear()
        self._pending_grows = 0
        for page_no in reversed(self._txn_reused):
            self._free.add(page_no)
            self._free_order.append(page_no)
        self._txn_reused.clear()
        self._obs.metrics.counter("durability.rollbacks").inc()
        return discarded

    def checkpoint(self) -> None:
        """fsync the main file, then truncate the now-redundant WAL."""
        if self._dirty or self._pending_grows:
            raise DurabilityError(
                "cannot checkpoint with uncommitted writes pending; "
                "commit or rollback first"
            )
        self.crash.point("store.checkpoint.begin")
        self.flush()
        sync = getattr(self.pager, "sync", None)
        if sync is not None:
            sync()
        self.crash.point("store.checkpoint.synced")
        removed = self.wal.truncate()
        self.crash.point("store.checkpoint.done")
        self._obs.metrics.counter("durability.checkpoints").inc()
        self._obs.events.record(
            Severity.INFO, "durability.store", "checkpoint",
            segments_truncated=removed,
        )

    def close(self) -> None:
        if self._dirty or self._pending_grows:
            self._obs.events.record(
                Severity.WARNING, "durability.store",
                "close.uncommitted_discarded",
                pages=len(self._dirty), grows=self._pending_grows,
            )
            self.rollback()
        self.wal.close()
        super().close()


@dataclass(frozen=True)
class RecoveryReport:
    """What redo recovery found and did."""

    committed_txns: int
    records_replayed: int
    pages_applied: int
    grows_applied: int
    discarded_records: int
    torn_tail: bool
    segments_scanned: int
    bytes_scanned: int

    def summary(self) -> str:
        return (
            f"recovered {self.committed_txns} txns "
            f"({self.pages_applied} pages, {self.grows_applied} grows) "
            f"from {self.segments_scanned} segments; discarded "
            f"{self.discarded_records} uncommitted records"
            + (" (torn tail)" if self.torn_tail else "")
        )


def recover_page_store(pager, wal: WriteAheadLog, checksums: bool = False,
                       buffer_pool=None,
                       auto_checkpoint_bytes: int | None = None,
                       crash: CrashInjector | None = None,
                       obs: Observability | None = None,
                       ) -> tuple[DurablePageStore, RecoveryReport]:
    """Redo recovery: replay the WAL's committed transactions onto ``pager``.

    Idempotent — crashing during recovery and recovering again converges
    on the same bytes, because records are full page images and the WAL
    is only truncated after the pager is fsynced."""
    crash = crash or NULL_CRASH
    scan = wal.scan()
    crash.point("recovery.begin")
    replayed = pages_applied = grows_applied = 0
    for record in scan.records:
        if record.type not in (GROW, WRITE):
            continue
        if record.txn not in scan.committed_txns:
            continue
        page_no = record.page_no()
        while len(pager) <= page_no:
            pager.grow()
        if record.type == GROW:
            grows_applied += 1
        else:
            image = record.page_image()
            if len(image) != pager.page_size:
                raise WalCorruptionError(
                    f"write record for page {page_no} (txn {record.txn}) "
                    f"carries {len(image)} bytes; page size is "
                    f"{pager.page_size}"
                )
            pager.write_page(page_no, image)
            pages_applied += 1
        replayed += 1
    crash.point("recovery.applied")
    flush = getattr(pager, "flush", None)
    if flush is not None:
        flush()
    sync = getattr(pager, "sync", None)
    if sync is not None:
        sync()
    crash.point("recovery.synced")
    wal.truncate()
    store = DurablePageStore(
        pager, wal, checksums=checksums, buffer_pool=buffer_pool,
        auto_checkpoint_bytes=auto_checkpoint_bytes, crash=crash, obs=obs,
    )
    if checksums:
        store.rebuild_checksums()
    discarded = len(scan.uncommitted_records())
    report = RecoveryReport(
        committed_txns=len(scan.committed_txns),
        records_replayed=replayed,
        pages_applied=pages_applied,
        grows_applied=grows_applied,
        discarded_records=discarded,
        torn_tail=scan.torn_tail,
        segments_scanned=scan.segments,
        bytes_scanned=scan.bytes_scanned,
    )
    metrics = store._obs.metrics
    metrics.counter("recovery.runs").inc()
    metrics.counter("recovery.txns_replayed").inc(report.committed_txns)
    metrics.counter("recovery.pages_applied").inc(pages_applied)
    metrics.counter("recovery.records_discarded").inc(discarded)
    severity = (Severity.WARNING if scan.torn_tail or discarded
                else Severity.INFO)
    store._obs.events.record(
        severity, "durability.recovery", "recovery.complete",
        txns=report.committed_txns, pages=pages_applied,
        discarded=discarded, torn_tail=scan.torn_tail,
    )
    return store, report
