"""Atomic whole-file commit: shadow write + fsync barrier + rename.

The classic three-step protocol for replacing a file so that a reader —
or a recovery pass — sees either the complete old bytes or the complete
new bytes, never a prefix:

1. write the new content to ``<path>.tmp`` *in the same directory*
   (same filesystem, so the rename below is atomic) and fsync it;
2. ``os.replace`` the temp file over the target — the atomicity point;
3. fsync the parent directory so the rename itself is durable.

Skipping step 3 is the classic bug: on a real filesystem the rename
lives only in the directory's page cache, and a crash resurrects the
old file. :class:`~repro.faults.disk.SimulatedMedium` models exactly
that, so the crash matrix fails if the barrier is ever dropped.
"""

from __future__ import annotations

from repro.durability.fs import dirname, resolve
from repro.faults.crash import NULL_CRASH, CrashInjector

#: Suffix of in-flight shadow files; readers must ignore these.
TMP_SUFFIX = ".tmp"


def atomic_write_bytes(path: str, data: bytes, fs=None,
                       crash: CrashInjector | None = None) -> None:
    """Durably replace ``path``'s content with ``data``, atomically."""
    fs = resolve(fs)
    crash = crash or NULL_CRASH
    path = str(path)
    temp = path + TMP_SUFFIX
    crash.point("atomic.begin")
    handle = fs.open(temp, "wb")
    try:
        handle.write(data)
        crash.point("atomic.after_write")
        fs.fsync(handle)
    finally:
        handle.close()
    crash.point("atomic.after_sync")
    fs.replace(temp, path)
    crash.point("atomic.after_replace")
    fs.fsync_dir(dirname(path))
    crash.point("atomic.after_dir_sync")


def read_bytes(path: str, fs=None) -> bytes:
    """Read a whole file through the same filesystem interface."""
    fs = resolve(fs)
    with fs.open(str(path), "rb") as handle:
        return handle.read()


def remove_stale_temp(path: str, fs=None) -> bool:
    """Delete a leftover ``<path>.tmp`` from a crashed commit, if any.

    Returns True when one was found. Safe to call unconditionally
    before reading ``path`` after a restart."""
    fs = resolve(fs)
    temp = str(path) + TMP_SUFFIX
    if fs.exists(temp):
        fs.remove(temp)
        return True
    return False
