"""The crash matrix: kill the process at every instruction, recover, assert.

The harness runs a workload **scenario** once with a recording
:class:`~repro.faults.crash.CrashInjector` to discover every crash
point it visits, then re-runs it once per ``(point, occurrence)`` site
with the injector armed there: the run dies mid-instruction with
:class:`~repro.errors.SimulatedCrash`, the
:class:`~repro.faults.disk.SimulatedMedium` settles unsynced writes by
their seeded fates, and the scenario's recovery path is invoked against
whatever survived. After recovery the scenario's invariants must hold:

* **no acknowledged write lost** — everything the workload was told was
  durable is still there, byte-identical;
* **no torn state visible** — recovered files parse cleanly; page
  checksums verify; a container is a complete old or new version,
  never a hybrid;
* **recovery is idempotent** — a crash *during* recovery (recovery has
  crash points too) is answered by recovering again, to the same state.

A scenario is any object with ``name``, ``run(fs, crash, acks)``,
``recover(fs, crash)`` and ``verify(state, acks)``. ``acks`` is the
acknowledgment journal: the workload appends an entry only after the
durability layer acknowledged the write, so at crash time it holds
exactly what a client is entitled to find after recovery. ``verify``
raises :class:`~repro.errors.DurabilityError` on any violation.

Heavy dependencies (engine, storage, media) are imported inside the
scenario methods: this module sits in :mod:`repro.durability`'s package
init, below those layers in the import order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.durability.store import DurablePageStore, recover_page_store
from repro.durability.wal import WriteAheadLog
from repro.errors import DurabilityError, MediaModelError, SimulatedCrash
from repro.faults.crash import CrashInjector, CrashSite
from repro.faults.disk import SimulatedMedium
from repro.faults.plan import FaultPlan
from repro.obs.events import Severity
from repro.obs.instrument import Instrumented, Observability


@dataclass(frozen=True)
class CrashOutcome:
    """What happened when the workload was killed at one site."""

    site: CrashSite
    fired: bool
    verified: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "pass" if self.verified else "FAIL"
        reached = "" if self.fired else " (site not reached)"
        tail = f": {self.detail}" if self.detail else ""
        return f"{status} {self.site}{reached}{tail}"


@dataclass
class CrashMatrixReport:
    """One scenario's exhaustive crash sweep."""

    scenario: str
    sites: list[CrashSite] = field(default_factory=list)
    outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.verified for outcome in self.outcomes)

    @property
    def failures(self) -> list[CrashOutcome]:
        return [o for o in self.outcomes if not o.verified]

    def summary(self) -> str:
        lines = [
            f"crash matrix [{self.scenario}]: "
            f"{len(self.outcomes)} sites, "
            f"{len(self.failures)} failures"
        ]
        for outcome in self.failures:
            lines.append(f"  {outcome}")
        return "\n".join(lines)


class CrashMatrix(Instrumented):
    """Exhaustive crash sweep of one scenario.

    ``seed`` parameterizes the medium's :class:`FaultPlan` write fates
    (kept / torn / lost at crash); seed 0 uses the maximally adversarial
    default — every unsynced write is lost.
    """

    def __init__(self, scenario, seed: int = 0,
                 obs: Observability | None = None):
        self.scenario = scenario
        self.seed = seed
        if obs is not None:
            self.instrument(obs)

    def _medium(self) -> SimulatedMedium:
        if self.seed == 0:
            return SimulatedMedium()
        plan = FaultPlan(
            seed=self.seed, torn_write_rate=0.3,
            unsynced_survival_rate=0.3,
        )
        return SimulatedMedium(plan=plan)

    def discover(self) -> list[CrashSite]:
        """The recording pass: run + recover cleanly, collect sites.

        The clean run must verify — a scenario broken without any crash
        would make every armed result meaningless."""
        fs = self._medium()
        crash = CrashInjector()
        acks: list = []
        self.scenario.run(fs, crash, acks)
        state = self.scenario.recover(fs, crash)
        self.scenario.verify(state, acks)
        return crash.sites()

    def run(self, max_sites: int | None = None) -> CrashMatrixReport:
        """Arm every discovered site in turn; returns the full report."""
        sites = self.discover()
        if max_sites is not None:
            sites = sites[:max_sites]
        report = CrashMatrixReport(scenario=self.scenario.name, sites=sites)
        for site in sites:
            outcome = self._run_one(site)
            report.outcomes.append(outcome)
            self._obs.metrics.counter("crashtest.sites").inc(
                verified=str(outcome.verified).lower()
            )
        severity = Severity.INFO if report.passed else Severity.ERROR
        self._obs.events.record(
            severity, "durability.crashtest", "matrix.complete",
            scenario=self.scenario.name, sites=len(report.outcomes),
            failures=len(report.failures),
        )
        return report

    def _run_one(self, site: CrashSite) -> CrashOutcome:
        fs = self._medium()
        crash = CrashInjector(site)
        acks: list = []
        try:
            self.scenario.run(fs, crash, acks)
        # repro: suppress DF008 — the matrix IS the process boundary: it
        except SimulatedCrash:  # observes the death, then runs recovery
            fs.crash()
        state = None
        for _ in range(3):
            try:
                state = self.scenario.recover(fs, crash)
                break
            # repro: suppress DF008 — crash-during-recovery is the scenario
            except SimulatedCrash:
                # The armed site lives in the recovery path itself:
                # crash again and re-recover — idempotence is part of
                # the contract.
                fs.crash()
        else:
            return CrashOutcome(
                site, fired=crash.fired is not None, verified=False,
                detail="recovery did not converge after repeated crashes",
            )
        try:
            self.scenario.verify(state, acks)
        except MediaModelError as exc:
            return CrashOutcome(
                site, fired=crash.fired is not None, verified=False,
                detail=str(exc),
            )
        return CrashOutcome(site, fired=crash.fired is not None,
                            verified=True)


# -- scenarios ---------------------------------------------------------------------


class PageStoreCrashScenario:
    """Transactions against a WAL-backed page store on one medium.

    Acknowledgment = :meth:`DurablePageStore.commit` returning. The
    verifier re-reads every acknowledged page image and sweeps the
    checksums, so a lost acknowledged write *or* a visible torn page
    fails the site."""

    name = "page-store"

    def __init__(self, txns: int = 4, pages_per_txn: int = 2,
                 page_size: int = 256):
        self.txns = txns
        self.pages_per_txn = pages_per_txn
        self.page_size = page_size

    def _payload(self, txn: int, index: int) -> bytes:
        pattern = bytes(
            (txn * 37 + index * 11 + byte) % 251
            for byte in range(self.page_size)
        )
        return pattern

    def _open(self, fs, crash, repair: bool = False):
        from repro.blob.pages import FilePager

        fs.makedirs("/data")
        pager = FilePager("/data/store.pg", page_size=self.page_size,
                          fs=fs, repair=repair)
        wal = WriteAheadLog("/data/wal", segment_bytes=4096, fs=fs,
                            crash=crash)
        return pager, wal

    def run(self, fs, crash, acks: list) -> None:
        pager, wal = self._open(fs, crash)
        store = DurablePageStore(pager, wal, checksums=True, crash=crash)
        for txn in range(self.txns):
            written: dict[int, bytes] = {}
            for index in range(self.pages_per_txn):
                page_no = store.allocate()
                image = self._payload(txn, index)
                store.write(page_no, image)
                written[page_no] = image
            store.commit()
            # Only now is the transaction acknowledged.
            acks.append(written)
            if txn == self.txns // 2:
                store.checkpoint()
        store.close()

    def recover(self, fs, crash):
        pager, wal = self._open(fs, crash, repair=True)
        store, report = recover_page_store(
            pager, wal, checksums=True, crash=crash,
        )
        return store

    def verify(self, store, acks: list) -> None:
        for txn, written in enumerate(acks):
            for page_no, image in written.items():
                actual = store.read(page_no)
                if actual != image:
                    raise DurabilityError(
                        f"acknowledged write lost: txn {txn} page "
                        f"{page_no} differs after recovery"
                    )
        for page_no in range(len(store.pager)):
            if not store.verify_page(page_no):
                raise DurabilityError(
                    f"torn page visible after recovery: page {page_no} "
                    f"fails its checksum"
                )
        store.close()


class ContainerCrashScenario:
    """Atomic container replacement under crashes.

    The workload publishes version 0, then atomically replaces it with
    version 1. After any crash the file must be a *complete* version no
    older than the last acknowledged one, parse cleanly, and replay
    byte-identically to the uncrashed run of that version."""

    name = "container"

    def __init__(self, elements: int = 3):
        self.elements = elements

    def _build(self, version: int):
        from repro.blob.blob import MemoryBlob
        from repro.core.interpretation import Interpretation, PlacementEntry
        from repro.core.media_types import media_type_registry

        video_type = media_type_registry.get("pal-video")
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB", encoding=f"raw-v{version}",
        )
        blob = MemoryBlob()
        entries = []
        for index in range(self.elements):
            payload = bytes([version * 100 + index * 7 + 1]) * (16 + index)
            offset = blob.append(payload)
            entries.append(
                PlacementEntry(index, index, 1, len(payload), offset)
            )
        interpretation = Interpretation(blob, f"title-v{version}")
        interpretation.add("video", video_type, descriptor, entries)
        return interpretation

    def _serialized(self, version: int) -> bytes:
        from repro.storage.container import serialize_container

        return serialize_container(self._build(version))

    def run(self, fs, crash, acks: list) -> None:
        from repro.storage.container import write_container

        fs.makedirs("/media")
        for version in range(2):
            write_container(self._build(version), "/media/title.rmf",
                            fs=fs, crash=crash)
            acks.append(version)

    def recover(self, fs, crash):
        from repro.durability.atomic import read_bytes, remove_stale_temp

        remove_stale_temp("/media/title.rmf", fs=fs)
        if not fs.exists("/media/title.rmf"):
            return None
        return read_bytes("/media/title.rmf", fs=fs)

    def verify(self, data, acks: list) -> None:
        from repro.storage.container import deserialize_container

        if not acks:
            # Nothing was ever acknowledged; a missing file is legal.
            if data is not None:
                deserialize_container(data)  # whatever exists must parse
            return
        if data is None:
            raise DurabilityError(
                "acknowledged container missing after crash"
            )
        versions = {v: self._serialized(v) for v in range(2)}
        matching = [v for v, raw in versions.items() if raw == data]
        if not matching:
            raise DurabilityError(
                "container on disk is not any complete version "
                "(torn or hybrid write became visible)"
            )
        if matching[0] < acks[-1]:
            raise DurabilityError(
                f"container rolled back past acknowledgment: found "
                f"version {matching[0]}, acknowledged {acks[-1]}"
            )
        restored = deserialize_container(data)
        baseline = deserialize_container(versions[matching[0]])
        for name in baseline.names():
            expected = [
                t.element.payload for t in baseline.materialize(name)
            ]
            actual = [
                t.element.payload for t in restored.materialize(name)
            ]
            if expected != actual:
                raise DurabilityError(
                    f"recovered replay of {name!r} is not byte-identical"
                )


class CheckpointCrashScenario:
    """VodServer killed mid-serve, restored from its checkpoint.

    The server checkpoints after every session; a crash at any point
    must leave a state from which restore + resume accounts for every
    admitted request exactly once — finished sessions arrive as
    ``recovered``, the rest are re-served as ``resumed`` (and a session
    that finished after its last durable checkpoint legitimately
    replays). Nothing is ever silently dropped."""

    name = "vod-checkpoint"

    def __init__(self, clients: int = 3, frame_count: int = 6):
        self.clients = clients
        self.frame_count = frame_count

    def _title(self):
        from repro.blob.blob import MemoryBlob
        from repro.codecs.jpeg_like import JpegLikeCodec
        from repro.engine.recorder import Recorder
        from repro.media import frames
        from repro.media.objects import video_object

        video = video_object(
            frames.scene(16, 12, self.frame_count, "orbit"), "feature",
        )
        return Recorder(MemoryBlob()).record(
            [video],
            encoders={"feature": JpegLikeCodec(quality=40).encode},
            interpretation_name="feature-capture",
        )

    def _requests(self) -> list:
        from repro.engine.vod import SessionRequest

        return [
            SessionRequest(client=f"client-{i}", title="feature")
            for i in range(self.clients)
        ]

    def run(self, fs, crash, acks: list) -> None:
        from repro.engine.vod import VodServer

        fs.makedirs("/srv")
        server = VodServer(bandwidth=50_000_000, crash=crash)
        server.publish("feature", self._title())
        report = server.serve(
            self._requests(), checkpoint_to="/srv/vod.ckpt",
            checkpoint_fs=fs,
        )
        acks.append(report.admitted_count)

    def recover(self, fs, crash):
        from repro.durability.atomic import remove_stale_temp
        from repro.engine.vod import VodServer

        remove_stale_temp("/srv/vod.ckpt", fs=fs)
        if not fs.exists("/srv/vod.ckpt"):
            return None
        server = VodServer.restore("/srv/vod.ckpt", fs=fs, crash=crash)
        report = server.resume()
        return server, report

    def verify(self, state, acks: list) -> None:
        if state is None:
            # Crashed before the first checkpoint became durable: the
            # whole batch restarts, which loses nothing acknowledged.
            return
        server, report = state
        expected = self.clients
        accounted = (report.recovered + len(report.admitted)
                     + len(report.failed))
        if accounted != expected:
            raise DurabilityError(
                f"sessions lost across failover: {accounted} accounted "
                f"of {expected} admitted"
            )
        for session in report.admitted:
            if not session.resumed:
                raise DurabilityError(
                    f"session {session.client} served after restore "
                    f"is not marked resumed"
                )
        health = server.health()
        if report.admitted and health.degraded < len(report.admitted):
            raise DurabilityError(
                "resumed sessions are not accounted as degraded service"
            )


def default_scenarios(small: bool = False) -> list:
    """The built-in crash scenarios, smallest-first.

    ``small`` shrinks the workloads for the smoke run in
    ``repro.tools.check --crash``."""
    if small:
        return [
            ContainerCrashScenario(elements=2),
            PageStoreCrashScenario(txns=2, pages_per_txn=1, page_size=128),
        ]
    return [
        ContainerCrashScenario(),
        PageStoreCrashScenario(),
        CheckpointCrashScenario(),
    ]
