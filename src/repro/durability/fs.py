"""The filesystem interface the durability layer writes through.

Everything durable — WAL segments, atomic container commits, server
checkpoints — goes through this small surface (``open``/``fsync``/
``replace``/``fsync_dir``/…) instead of the builtin ``open``, so the
same code runs over the real OS (:class:`OsFilesystem`, the default)
and over the crashable in-memory
:class:`~repro.faults.disk.SimulatedMedium` used by the crash matrix.

The interface is duck-typed on purpose: the durability modules accept
any object with these methods, and the blob layer's
:class:`~repro.blob.pages.FilePager` takes the same ``fs`` parameter.
"""

from __future__ import annotations

import os


class OsFilesystem:
    """The real thing: thin wrappers over ``os`` and builtin ``open``."""

    @staticmethod
    def open(path: str | os.PathLike, mode: str = "rb"):
        return open(path, mode)

    @staticmethod
    def exists(path: str | os.PathLike) -> bool:
        return os.path.exists(path)

    @staticmethod
    def listdir(path: str | os.PathLike) -> list[str]:
        return sorted(os.listdir(path))

    @staticmethod
    def makedirs(path: str | os.PathLike, exist_ok: bool = True) -> None:
        os.makedirs(path, exist_ok=exist_ok)

    @staticmethod
    def remove(path: str | os.PathLike) -> None:
        os.remove(path)

    @staticmethod
    def replace(src: str | os.PathLike, dst: str | os.PathLike) -> None:
        os.replace(src, dst)

    @staticmethod
    def getsize(path: str | os.PathLike) -> int:
        return os.path.getsize(path)

    @staticmethod
    def fsync(handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    @staticmethod
    def fsync_dir(path: str | os.PathLike) -> None:
        """fsync a directory so renames/creations under it are durable.

        Platforms without directory fds (Windows) silently skip — the
        OS's own metadata journaling is the best available there.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        # repro: suppress DF006 — documented best-effort: no dir fds on this OS
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        # repro: suppress DF006 — documented best-effort: dir fsync unsupported
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)


#: Shared real-OS filesystem; the default for every durability entry point.
REAL_FS = OsFilesystem()


def resolve(fs) -> object:
    """``fs`` or the real filesystem when None."""
    return REAL_FS if fs is None else fs


def dirname(path: str | os.PathLike) -> str:
    """The parent directory of ``path`` (``"."`` for bare names)."""
    parent = os.path.dirname(os.fspath(path))
    return parent or "."
