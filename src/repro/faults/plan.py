"""Deterministic fault schedules for the storage stack.

A :class:`FaultPlan` decides, from a seed and nothing else, which reads
fail and how: transient errors that clear on retry, permanently bad
pages, silent bit flips, and windows of degraded bandwidth/latency.
Decisions are pure functions of ``(seed, kind, page number, visit/read
index)`` hashed through BLAKE2b — no wall clock, no shared RNG state —
so a faulted run is exactly as reproducible as a clean one, and two
consumers of the same plan (the real pager wrapper and the playback
simulation) see the same storage behaviour.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from hashlib import blake2b

from repro.core.rational import Rational, as_rational
from repro.errors import EngineError

#: Default page size mirrored from :mod:`repro.blob.pages`; duplicated
#: here so the faults package does not import the blob layer.
_DEFAULT_PAGE_SIZE = 4096

_TWO64 = 2 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of storage faults.

    Parameters
    ----------
    seed:
        Root of all fault decisions; same seed, same faults.
    page_size:
        Maps byte offsets to page numbers (faults are per-page, like
        real bad sectors).
    transient_rate:
        Probability a page *visit* raises a retryable error. Each retry
        is a fresh visit with an independent draw.
    bad_page_rate:
        Probability a page is permanently unreadable.
    corruption_rate:
        Probability a page visit silently returns flipped bits.
    degraded_fraction:
        Fraction of ``degradation_span``-read windows in which the
        storage path runs degraded.
    degradation_span:
        Number of consecutive reads per degradation window.
    degraded_bandwidth_factor:
        Bandwidth multiplier (in (0, 1]) inside a degraded window.
    degraded_latency:
        Extra seconds of latency charged per read in a degraded window.
    short_write_rate:
        Probability a page write is silently truncated to a prefix (the
        controller acknowledges a partial transfer). Surfaces later as a
        checksum failure on read, or as a torn page repaired by WAL redo.
    torn_write_rate:
        Probability an *unsynced* write survives a crash only partially
        (a torn page). Drawn per write when the simulated medium crashes.
    unsynced_survival_rate:
        Probability an unsynced write survives a crash intact. The
        default 0.0 is the adversarial disk: everything not fsynced is
        gone. Survival and tearing are disjoint draws from one uniform;
        their rates must sum to at most 1.
    lying_fsync_rate:
        Probability an fsync reports success without making the data
        durable. Undetectable by software — the crash matrix documents
        (rather than masks) the acknowledged-write loss it causes.
    """

    seed: int
    page_size: int = _DEFAULT_PAGE_SIZE
    transient_rate: float = 0.0
    bad_page_rate: float = 0.0
    corruption_rate: float = 0.0
    degraded_fraction: float = 0.0
    degradation_span: int = 32
    degraded_bandwidth_factor: Rational = Rational(1, 2)
    degraded_latency: Rational = Rational(0)
    short_write_rate: float = 0.0
    torn_write_rate: float = 0.0
    unsynced_survival_rate: float = 0.0
    lying_fsync_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise EngineError("page_size must be >= 1")
        for name in ("transient_rate", "bad_page_rate", "corruption_rate",
                     "degraded_fraction", "short_write_rate",
                     "torn_write_rate", "unsynced_survival_rate",
                     "lying_fsync_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise EngineError(f"{name} must be in [0, 1], got {value}")
        if self.unsynced_survival_rate + self.torn_write_rate > 1.0:
            raise EngineError(
                "unsynced_survival_rate + torn_write_rate must not "
                "exceed 1"
            )
        if self.degradation_span < 1:
            raise EngineError("degradation_span must be >= 1")
        object.__setattr__(
            self, "degraded_bandwidth_factor",
            as_rational(self.degraded_bandwidth_factor),
        )
        object.__setattr__(
            self, "degraded_latency", as_rational(self.degraded_latency)
        )
        if not 0 < self.degraded_bandwidth_factor <= 1:
            raise EngineError(
                "degraded_bandwidth_factor must be in (0, 1], got "
                f"{self.degraded_bandwidth_factor}"
            )
        if self.degraded_latency < 0:
            raise EngineError("degraded_latency must be non-negative")

    # -- deterministic draws ---------------------------------------------------

    def _unit(self, kind: str, *parts: int) -> float:
        """Uniform draw in [0, 1) determined by (seed, kind, parts)."""
        digest = blake2b(
            kind.encode() + b"".join(struct.pack(">q", p) for p in parts),
            digest_size=8,
            key=str(self.seed).encode(),
        ).digest()
        return int.from_bytes(digest, "big") / _TWO64

    # -- per-page / per-visit decisions ----------------------------------------

    def is_bad_page(self, page_no: int) -> bool:
        """Is ``page_no`` permanently unreadable (a bad sector)?"""
        return (self.bad_page_rate > 0
                and self._unit("bad", page_no) < self.bad_page_rate)

    def is_transient(self, page_no: int, visit: int) -> bool:
        """Does the ``visit``-th read of ``page_no`` fail transiently?"""
        return (self.transient_rate > 0
                and self._unit("transient", page_no, visit) < self.transient_rate)

    def is_corrupted(self, page_no: int, visit: int) -> bool:
        """Does the ``visit``-th read of ``page_no`` return flipped bits?"""
        return (self.corruption_rate > 0
                and self._unit("corrupt", page_no, visit) < self.corruption_rate)

    def corrupt(self, data: bytes, page_no: int, visit: int) -> bytes:
        """Return ``data`` with one deterministically chosen bit flipped."""
        if not data:
            return data
        byte_index = int(self._unit("corrupt-byte", page_no, visit) * len(data))
        byte_index = min(byte_index, len(data) - 1)
        bit = int(self._unit("corrupt-bit", page_no, visit) * 8) & 7
        flipped = bytearray(data)
        flipped[byte_index] ^= 1 << bit
        return bytes(flipped)

    # -- write-side faults --------------------------------------------------------

    def is_short_write(self, page_no: int, write_index: int) -> bool:
        """Is the ``write_index``-th write of ``page_no`` acknowledged
        short (only a prefix reaches the medium)?"""
        return (self.short_write_rate > 0
                and self._unit("short", page_no, write_index)
                < self.short_write_rate)

    def short_length(self, size: int, page_no: int, write_index: int) -> int:
        """Bytes of a ``size``-byte short write that actually land
        (deterministic, in ``[1, size - 1]`` whenever ``size >= 2``)."""
        if size < 2:
            return size
        fraction = self._unit("short-len", page_no, write_index)
        return min(max(int(fraction * size), 1), size - 1)

    def write_outcome(self, write_index: int) -> str:
        """Fate of the ``write_index``-th *unsynced* write at a crash:
        ``"kept"`` (survives intact), ``"torn"`` (a prefix survives) or
        ``"lost"`` (never reached the medium)."""
        draw = self._unit("write-fate", write_index)
        if draw < self.unsynced_survival_rate:
            return "kept"
        if draw < self.unsynced_survival_rate + self.torn_write_rate:
            return "torn"
        return "lost"

    def torn_length(self, size: int, write_index: int) -> int:
        """Bytes of a ``size``-byte torn write that survive a crash
        (deterministic, in ``[1, size - 1]`` whenever ``size >= 2``)."""
        if size < 2:
            return size
        fraction = self._unit("torn-len", write_index)
        return min(max(int(fraction * size), 1), size - 1)

    def is_lying_fsync(self, fsync_index: int) -> bool:
        """Does the ``fsync_index``-th fsync lie about durability?"""
        return (self.lying_fsync_rate > 0
                and self._unit("lying-fsync", fsync_index)
                < self.lying_fsync_rate)

    # -- degradation windows -----------------------------------------------------

    def is_degraded(self, read_index: int) -> bool:
        """Is the ``read_index``-th read inside a degraded window?"""
        if self.degraded_fraction <= 0:
            return False
        window = read_index // self.degradation_span
        return self._unit("degrade", window) < self.degraded_fraction

    def bandwidth_factor(self, read_index: int) -> Rational:
        """Bandwidth multiplier for the ``read_index``-th read."""
        if self.is_degraded(read_index):
            return self.degraded_bandwidth_factor
        return Rational(1)

    def extra_latency(self, read_index: int) -> Rational:
        """Extra latency charged to the ``read_index``-th read."""
        if self.is_degraded(read_index):
            return self.degraded_latency
        return Rational(0)

    # -- geometry + derivation ---------------------------------------------------

    def pages_of(self, offset: int, size: int) -> range:
        """Page numbers a read of ``size`` bytes at ``offset`` touches."""
        if size <= 0:
            first = offset // self.page_size
            return range(first, first)
        return range(offset // self.page_size,
                     (offset + size - 1) // self.page_size + 1)

    def fork(self, salt: int) -> "FaultPlan":
        """A plan with the same rates but independent draws.

        Deterministic: the derived seed is a hash of (seed, salt), so
        forking the same plan with the same salt always yields the same
        child plan.
        """
        derived = int.from_bytes(
            blake2b(
                struct.pack(">q", salt),
                digest_size=8,
                key=str(self.seed).encode(),
            ).digest(),
            "big",
        )
        return replace(self, seed=derived)

    def describe(self) -> str:
        text = (
            f"FaultPlan(seed={self.seed}: transient {self.transient_rate:.1%}, "
            f"bad pages {self.bad_page_rate:.1%}, corruption "
            f"{self.corruption_rate:.1%}, degraded windows "
            f"{self.degraded_fraction:.1%} at x{self.degraded_bandwidth_factor})"
        )
        if (self.short_write_rate or self.torn_write_rate
                or self.unsynced_survival_rate or self.lying_fsync_rate):
            text += (
                f" + writes(short {self.short_write_rate:.1%}, torn "
                f"{self.torn_write_rate:.1%}, unsynced survival "
                f"{self.unsynced_survival_rate:.1%}, lying fsync "
                f"{self.lying_fsync_rate:.1%})"
            )
        return text
