"""A crashable, fault-injecting filesystem for durability testing.

:class:`SimulatedMedium` implements the small filesystem interface the
durability layer writes through (``open``/``fsync``/``replace``/
``fsync_dir``/…) over in-memory state with an explicit *volatile vs
durable* split, so a crash is a first-class, deterministic operation:

* every ``write`` lands in the volatile image immediately and joins the
  file's *pending* list;
* ``fsync`` promotes a file's pending writes to the durable image —
  unless the :class:`~repro.faults.plan.FaultPlan` schedules a *lying
  fsync*, which reports success and promotes nothing;
* file creation, deletion and ``replace`` (rename) are namespace edits
  that become durable only on ``fsync_dir`` of the parent directory —
  the POSIX rule real databases are bitten by;
* :meth:`SimulatedMedium.crash` settles every pending write by a seeded
  draw — kept intact, *torn* to a prefix, or lost — rolls the namespace
  back to its durable state, invalidates every open handle, and leaves
  the medium ready to "reboot" into recovery code.

All draws are pure functions of ``(plan seed, write index)``, so a
crash-matrix run is exactly as reproducible as a clean one.
"""

from __future__ import annotations

import os

from repro.errors import DurabilityError
from repro.faults.plan import FaultPlan
from repro.obs.events import Severity
from repro.obs.instrument import Instrumented, Observability


def _norm(path: str | os.PathLike) -> str:
    return os.path.normpath(os.fspath(path)).replace(os.sep, "/")


class _SimFile:
    """One file's volatile image, durable image, and pending writes."""

    __slots__ = ("volatile", "durable", "pending")

    def __init__(self, durable: bytes = b""):
        self.durable = bytes(durable)
        self.volatile = bytearray(durable)
        # Pending ops since the last honest fsync, in order:
        # ("write", index, offset, data) | ("truncate", index, 0, b"").
        self.pending: list[tuple[str, int, int, bytes]] = []


class _SimHandle:
    """File-object facade over a :class:`_SimFile` (binary only)."""

    def __init__(self, medium: "SimulatedMedium", path: str, sim: _SimFile,
                 readable: bool, writable: bool, append: bool):
        self._medium = medium
        self._path = path
        self._sim = sim
        self._readable = readable
        self._writable = writable
        self._append = append
        self._pos = len(sim.volatile) if append else 0
        self.closed = False

    @property
    def name(self) -> str:
        return self._path

    def _check_open(self) -> None:
        if self.closed:
            raise DurabilityError(f"I/O on closed simulated file {self._path}")

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if not self._readable:
            raise DurabilityError(f"{self._path} not open for reading")
        data = self._sim.volatile
        if size is None or size < 0:
            chunk = bytes(data[self._pos:])
        else:
            chunk = bytes(data[self._pos:self._pos + size])
        self._pos += len(chunk)
        return chunk

    def write(self, data: bytes) -> int:
        self._check_open()
        if not self._writable:
            raise DurabilityError(f"{self._path} not open for writing")
        if self._append:
            self._pos = len(self._sim.volatile)
        self._medium._record_write(self._path, self._sim, self._pos,
                                   bytes(data))
        self._pos += len(data)
        return len(data)

    def seek(self, pos: int, whence: int = os.SEEK_SET) -> int:
        self._check_open()
        if whence == os.SEEK_SET:
            self._pos = pos
        elif whence == os.SEEK_CUR:
            self._pos += pos
        elif whence == os.SEEK_END:
            self._pos = len(self._sim.volatile) + pos
        else:
            raise DurabilityError(f"bad whence {whence}")
        if self._pos < 0:
            raise DurabilityError("negative seek position")
        return self._pos

    def tell(self) -> int:
        self._check_open()
        return self._pos

    def flush(self) -> None:
        # Library-buffer flush only; durability is fsync's job.
        self._check_open()

    def sync(self) -> None:
        """fsync this handle through the medium (lying-fsync faults
        apply)."""
        self._medium.fsync(self)

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "_SimHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SimulatedMedium(Instrumented):
    """An in-memory filesystem with crash semantics.

    ``plan`` supplies the seeded write-fate / lying-fsync draws; with no
    plan the medium is maximally adversarial and deterministic: every
    unsynced write is lost at a crash, every fsync is honest.
    """

    def __init__(self, plan: FaultPlan | None = None,
                 obs: Observability | None = None):
        self.plan = plan
        self._files: dict[str, _SimFile] = {}
        self._durable_names: dict[str, _SimFile] = {}
        self._dirs: set[str] = set()
        self._handles: list[_SimHandle] = []
        self._write_index = 0
        self._fsync_index = 0
        self.crashes = 0
        self.fsyncs = 0
        self.lying_fsyncs = 0
        self.dir_fsyncs = 0
        self.writes_kept = 0
        self.writes_torn = 0
        self.writes_lost = 0
        if obs is not None:
            self.instrument(obs)

    # -- filesystem interface -----------------------------------------------------

    def open(self, path: str | os.PathLike, mode: str = "rb") -> _SimHandle:
        if "b" not in mode:
            raise DurabilityError(
                f"simulated medium is binary-only, got mode {mode!r}"
            )
        path = _norm(path)
        create = "w" in mode or "a" in mode or "x" in mode
        readable = "r" in mode or "+" in mode
        writable = ("w" in mode or "a" in mode or "x" in mode
                    or "+" in mode)
        sim = self._files.get(path)
        if sim is None:
            if not create:
                raise DurabilityError(f"no such simulated file: {path}")
            sim = _SimFile()
            self._files[path] = sim
        elif "x" in mode:
            raise DurabilityError(f"simulated file exists: {path}")
        elif "w" in mode:
            # O_TRUNC: the truncation itself is a pending op whose fate
            # is drawn at crash time like any unsynced write.
            self._write_index += 1
            sim.pending.append(("truncate", self._write_index, 0, b""))
            sim.volatile = bytearray()
        handle = _SimHandle(self, path, sim, readable, writable,
                            append="a" in mode)
        self._handles.append(handle)
        return handle

    def exists(self, path: str | os.PathLike) -> bool:
        path = _norm(path)
        if path in self._files or path in self._dirs:
            return True
        prefix = path + "/"
        return any(name.startswith(prefix) for name in self._files)

    def listdir(self, path: str | os.PathLike) -> list[str]:
        prefix = _norm(path) + "/"
        entries = {
            name[len(prefix):].split("/", 1)[0]
            for name in self._files if name.startswith(prefix)
        }
        return sorted(entries)

    def makedirs(self, path: str | os.PathLike,
                 exist_ok: bool = True) -> None:
        path = _norm(path)
        if not exist_ok and path in self._dirs:
            raise DurabilityError(f"simulated directory exists: {path}")
        self._dirs.add(path)

    def remove(self, path: str | os.PathLike) -> None:
        path = _norm(path)
        if path not in self._files:
            raise DurabilityError(f"no such simulated file: {path}")
        del self._files[path]

    def replace(self, src: str | os.PathLike,
                dst: str | os.PathLike) -> None:
        src, dst = _norm(src), _norm(dst)
        if src not in self._files:
            raise DurabilityError(f"no such simulated file: {src}")
        self._files[dst] = self._files.pop(src)

    def getsize(self, path: str | os.PathLike) -> int:
        path = _norm(path)
        if path not in self._files:
            raise DurabilityError(f"no such simulated file: {path}")
        return len(self._files[path].volatile)

    def fsync(self, handle: _SimHandle) -> None:
        """Promote ``handle``'s pending writes to durable — honestly or,
        per the plan, deceitfully."""
        index = self._fsync_index
        self._fsync_index += 1
        self.fsyncs += 1
        if self.plan is not None and self.plan.is_lying_fsync(index):
            self.lying_fsyncs += 1
            self._obs.metrics.counter("faults.injected").inc(
                kind="lying_fsync"
            )
            self._obs.events.record(
                Severity.WARNING, "faults.disk", "fault.lying_fsync",
                path=handle.name, fsync=index,
            )
            return
        sim = handle._sim
        sim.durable = bytes(sim.volatile)
        sim.pending.clear()

    def fsync_dir(self, path: str | os.PathLike) -> None:
        """Make the directory's *namespace* durable: creations, renames
        and deletions directly under ``path`` survive a crash."""
        prefix = _norm(path) + "/"
        self.dir_fsyncs += 1
        for name in [n for n in self._durable_names
                     if n.startswith(prefix) and n not in self._files]:
            del self._durable_names[name]
        for name, sim in self._files.items():
            if name.startswith(prefix):
                self._durable_names[name] = sim

    # -- crash semantics ----------------------------------------------------------

    def _record_write(self, path: str, sim: _SimFile, offset: int,
                      data: bytes) -> None:
        self._write_index += 1
        sim.pending.append(("write", self._write_index, offset, data))
        end = offset + len(data)
        if len(sim.volatile) < end:
            sim.volatile.extend(bytes(end - len(sim.volatile)))
        sim.volatile[offset:end] = data

    def _settle(self, sim: _SimFile) -> None:
        """Apply the crash fate of every pending op to the durable image."""
        image = bytearray(sim.durable)
        for kind, index, offset, data in sim.pending:
            fate = (self.plan.write_outcome(index)
                    if self.plan is not None else "lost")
            if kind == "truncate":
                if fate != "lost":
                    image = bytearray()
                continue
            if fate == "lost":
                self.writes_lost += 1
                continue
            if fate == "torn":
                self.writes_torn += 1
                data = data[:self.plan.torn_length(len(data), index)]
            else:
                self.writes_kept += 1
            end = offset + len(data)
            if len(image) < end:
                image.extend(bytes(end - len(image)))
            image[offset:end] = data
        sim.durable = bytes(image)
        sim.volatile = bytearray(image)
        sim.pending = []

    def crash(self) -> None:
        """Kill the machine: settle pending writes by their drawn fate,
        roll the namespace back to its durable state, and invalidate
        every open handle. The medium is immediately usable again — the
        caller's next opens model the post-reboot recovery process."""
        settled: set[int] = set()
        for sim in list(self._files.values()) \
                + list(self._durable_names.values()):
            if id(sim) not in settled:
                settled.add(id(sim))
                self._settle(sim)
        self._files = dict(self._durable_names)
        for handle in self._handles:
            handle.closed = True
        self._handles = []
        self.crashes += 1
        self._obs.metrics.counter("faults.disk.crashes").inc()
        self._obs.events.record(
            Severity.CRITICAL, "faults.disk", "crash",
            files_surviving=len(self._files),
        )

    # -- introspection ------------------------------------------------------------

    def paths(self) -> list[str]:
        return sorted(self._files)

    def volatile_bytes(self, path: str | os.PathLike) -> bytes:
        return bytes(self._files[_norm(path)].volatile)

    def durable_bytes(self, path: str | os.PathLike) -> bytes:
        """The bytes ``path`` would hold after a crash right now (content
        only — whether the *name* survives depends on fsync_dir)."""
        return bytes(self._files[_norm(path)].durable)

    def stats(self) -> dict:
        return {
            "files": len(self._files),
            "crashes": self.crashes,
            "fsyncs": self.fsyncs,
            "lying_fsyncs": self.lying_fsyncs,
            "dir_fsyncs": self.dir_fsyncs,
            "writes_kept": self.writes_kept,
            "writes_torn": self.writes_torn,
            "writes_lost": self.writes_lost,
        }

    def __repr__(self) -> str:
        return (
            f"SimulatedMedium({len(self._files)} files, "
            f"{self.crashes} crashes, {self.fsyncs} fsyncs)"
        )
