"""Deterministic crash points for the durability layer.

Every durability-critical instruction in the write path (a WAL append,
an fsync, a rename, applying a page image) is bracketed by a named
*crash point*: a call to :meth:`CrashInjector.point`. In production the
shared :data:`NULL_CRASH` makes every point a no-op; under the crash
matrix (:mod:`repro.durability.crashtest`) an injector is *armed* on one
``(name, occurrence)`` site and raises
:class:`~repro.errors.SimulatedCrash` exactly there — the simulated
process dies mid-instruction, and recovery is asserted to restore every
acknowledged write.

Determinism: an injector's decision is a pure function of the sequence
of points visited, so the same workload crashes at the same instruction
every time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import DurabilityError, SimulatedCrash


@dataclass(frozen=True, order=True)
class CrashSite:
    """One durability-critical instruction: the ``occurrence``-th visit
    (0-based) of the crash point named ``name``."""

    name: str
    occurrence: int = 0

    def __str__(self) -> str:
        return f"{self.name}#{self.occurrence}"


class CrashInjector:
    """Counts crash-point visits; raises when the armed site is reached.

    Unarmed (``site=None``) the injector only *records* — the crash
    matrix runs one recording pass to discover every reachable site,
    then one armed run per site. ``seen`` maps point name to visit
    count after a run.
    """

    def __init__(self, site: CrashSite | None = None):
        if site is not None and site.occurrence < 0:
            raise DurabilityError(
                f"crash site occurrence must be >= 0, got {site.occurrence}"
            )
        self.site = site
        self.seen: Counter = Counter()
        self.fired: CrashSite | None = None

    def point(self, name: str) -> None:
        """Visit the crash point ``name``; dies here when armed for it."""
        occurrence = self.seen[name]
        self.seen[name] += 1
        if (self.site is not None and self.site.name == name
                and self.site.occurrence == occurrence):
            self.fired = CrashSite(name, occurrence)
            raise SimulatedCrash(f"injected crash at {self.fired}")

    def sites(self) -> list[CrashSite]:
        """Every site visited so far, in deterministic sorted order."""
        return [
            CrashSite(name, occurrence)
            for name in sorted(self.seen)
            for occurrence in range(self.seen[name])
        ]

    def __repr__(self) -> str:
        armed = f"armed at {self.site}" if self.site else "recording"
        return f"CrashInjector({armed}, {sum(self.seen.values())} visits)"


class _NullCrashInjector(CrashInjector):
    """The production injector: every crash point is a free no-op."""

    def __init__(self) -> None:
        super().__init__()

    def point(self, name: str) -> None:
        pass


#: Shared inert injector; the default everywhere.
NULL_CRASH = _NullCrashInjector()
