"""Deterministic fault injection for the storage/playback stack.

The paper's model promises that timed streams stay playable when
resources degrade — scalable streams exist "so that the number of
elements per second can be varied" (§4.1), and quality factors exist so
fidelity can be traded for feasibility. This package supplies the
adversary that makes those claims testable:

* :class:`~repro.faults.plan.FaultPlan` — a seeded schedule of transient
  read errors, permanently bad pages, silent bit flips and degraded
  bandwidth windows, every decision a pure hash of the seed so faulted
  runs are bit-reproducible;
* :class:`~repro.faults.pager.FaultyPager` — wraps a real pager and
  enforces the plan on the blob read path.

The playback engine consumes the same plan directly
(:class:`repro.engine.player.Player` with ``fault_plan=``) to charge
retries, skips and quality degradation as simulated time.

The write side (PR 6) adds the durability adversary:

* seeded write faults on the plan — short writes, torn unsynced writes,
  lying fsyncs;
* :class:`~repro.faults.crash.CrashInjector` — deterministic
  :class:`~repro.errors.SimulatedCrash` at named durability-critical
  instructions;
* :class:`~repro.faults.disk.SimulatedMedium` — a crashable filesystem
  with an explicit volatile/durable split, consumed by the crash matrix
  in :mod:`repro.durability.crashtest`.
"""

from repro.faults.crash import NULL_CRASH, CrashInjector, CrashSite
from repro.faults.disk import SimulatedMedium
from repro.faults.pager import FaultyPager
from repro.faults.plan import FaultPlan

__all__ = [
    "NULL_CRASH",
    "CrashInjector",
    "CrashSite",
    "FaultPlan",
    "FaultyPager",
    "SimulatedMedium",
]
