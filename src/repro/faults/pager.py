"""A fault-injecting wrapper around a backing pager.

:class:`FaultyPager` sits between a :class:`~repro.blob.pages.PageStore`
and its real pager (memory or file) and perturbs the *read* path
according to a :class:`~repro.faults.plan.FaultPlan`: permanently bad
pages raise :class:`~repro.errors.BlobCorruptionError`, transient faults
raise :class:`~repro.errors.TransientBlobError` (a retry re-reads and may
succeed), and corrupted visits silently flip one bit — which page-level
checksums upstream are expected to catch. On the write side the plan can
schedule *short writes*: the controller acknowledges a page write of
which only a prefix landed — surfacing later as a checksum failure, or
repaired invisibly when a write-ahead log sits above the store.
"""

from __future__ import annotations

from collections import Counter

from repro.faults.plan import FaultPlan
from repro.errors import BlobCorruptionError, TransientBlobError
from repro.obs.events import Severity
from repro.obs.instrument import Instrumented, Observability


class FaultyPager(Instrumented):
    """Wraps a pager, injecting deterministic faults on reads.

    The wrapper tracks how many times each page has been read (its
    *visit* count) and a global read index; the plan keys its decisions
    on those, so a fixed access pattern always faults identically.
    """

    def __init__(self, pager, plan: FaultPlan,
                 obs: Observability | None = None):
        self.pager = pager
        self.plan = plan
        self.reads = 0
        self.writes = 0
        self.fault_counts: Counter = Counter()
        self._visits: Counter = Counter()
        self._write_visits: Counter = Counter()
        if obs is not None:
            self.instrument(obs)

    @property
    def page_size(self) -> int:
        return self.pager.page_size

    def __len__(self) -> int:
        return len(self.pager)

    # -- write path: short writes when the plan schedules them --------------------

    def grow(self) -> int:
        return self.pager.grow()

    def write_page(self, page_no: int, data: bytes, offset: int = 0) -> None:
        visit = self._write_visits[page_no]
        self._write_visits[page_no] += 1
        self.writes += 1
        if data and self.plan.is_short_write(page_no, visit):
            landed = self.plan.short_length(len(data), page_no, visit)
            self.fault_counts["short_write"] += 1
            self._obs.metrics.counter("faults.injected").inc(
                kind="short_write"
            )
            self._obs.events.record(
                Severity.WARNING, "faults.pager", "fault.short_write",
                page=page_no, visit=visit, intended=len(data), landed=landed,
            )
            data = data[:landed]
        self.pager.write_page(page_no, data, offset)

    # -- read path: faulted --------------------------------------------------------

    def read_page(self, page_no: int) -> bytes:
        visit = self._visits[page_no]
        self._visits[page_no] += 1
        self.reads += 1
        metrics = self._obs.metrics
        metrics.counter("faults.pager.reads").inc()
        if self.plan.is_bad_page(page_no):
            self.fault_counts["bad_page"] += 1
            metrics.counter("faults.injected").inc(kind="bad_page")
            self._obs.events.record(
                Severity.ERROR, "faults.pager", "fault.bad_page",
                page=page_no,
            )
            raise BlobCorruptionError(
                f"page {page_no} is permanently unreadable (injected)"
            )
        if self.plan.is_transient(page_no, visit):
            self.fault_counts["transient"] += 1
            metrics.counter("faults.injected").inc(kind="transient")
            self._obs.events.record(
                Severity.WARNING, "faults.pager", "fault.transient",
                page=page_no, visit=visit,
            )
            raise TransientBlobError(
                f"transient read failure on page {page_no} "
                f"(visit {visit}, injected)"
            )
        data = self.pager.read_page(page_no)
        if self.plan.is_corrupted(page_no, visit):
            self.fault_counts["corrupted"] += 1
            metrics.counter("faults.injected").inc(kind="corrupted")
            self._obs.events.record(
                Severity.WARNING, "faults.pager", "fault.corrupted",
                page=page_no, visit=visit,
            )
            data = self.plan.corrupt(data, page_no, visit)
        return data

    def read_page_raw(self, page_no: int) -> bytes:
        """Read without fault injection.

        Used by the write path's checksum maintenance, which models a
        controller checksumming data still in its buffer — injected
        read faults model the medium, not the controller.
        """
        return self.pager.read_page(page_no)

    # -- lifecycle: delegate when supported -----------------------------------------

    def flush(self) -> None:
        flush = getattr(self.pager, "flush", None)
        if flush is not None:
            flush()

    def sync(self) -> None:
        sync = getattr(self.pager, "sync", None)
        if sync is not None:
            sync()

    def close(self) -> None:
        close = getattr(self.pager, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "FaultyPager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
