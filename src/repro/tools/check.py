"""The repo's static verification gate.

Usage::

    python -m repro.tools.check --all

Runs the static verification layer end to end and exits non-zero on
any ERROR-level finding, so CI can gate on it:

* ``--graph`` checks exemplar media graphs (the Figure 2 capture, the
  Figure 4 production and the §1.2 multilingual movie, rebuilt at
  reduced scale) through the media-graph rules (MG001-MG009);
* ``--lint`` runs the determinism/taxonomy linter (LN001-LN007) over
  the library's own sources;
* ``--crash`` runs a reduced crash matrix (the ``small`` scenario set
  over the simulated medium): every injected crash point is exercised
  and recovery invariants are asserted — a fast smoke of the full
  matrix the ``crash``-marked tests run;
* ``--fleet`` runs the fleet failover smoke: a three-shard fleet loses
  its owning shard mid-batch to an injected crash; the kill must be
  absorbed by checkpoint-backed failover with every displaced session
  accounted exactly once and the deadline-miss SLO still green;
* ``--query`` runs the dual-backend agreement smoke: seeded randomized
  catalogs are queried through both the relational temporal index and
  the linear oracle, and every result set (selections, temporal
  predicates, composition axes, lineage — including after
  ``set_attribute`` mutations) must be byte-identical;
* ``--style`` and ``--types`` invoke ``ruff`` and ``mypy`` when they
  are installed, and are skipped (without failing) when they are not —
  the in-tree engines above carry the gate either way.

``--all`` selects every stage and is the default when no stage flag is
given. ``--list-rules`` prints the rule table; ``--json`` switches the
graph/lint output to the deterministic JSON reporters; ``--ignore
RULE`` (repeatable) suppresses a rule id in both engines.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    DiagnosticReport,
    GraphChecker,
    lint_repo,
    rule_registry,
)
from repro.bench.reporting import table_text

#: Bandwidth (bytes/second) the exemplar graphs are priced against —
#: generous enough that the reduced-scale examples are feasible, so a
#: clean tree checks clean.
EXEMPLAR_BANDWIDTH = 40_000_000


def exemplar_graphs() -> list[tuple[str, object]]:
    """The worked examples the graph stage verifies, at reduced scale.

    Each is a real build of a paper figure — derived objects stay
    unexpanded, which is exactly what the static checker wants.
    """
    from repro.bench.workloads import (
        figure2_capture,
        figure4_production,
        multilingual_movie,
    )

    capture = figure2_capture(width=64, height=48, seconds=0.4, fps=10)
    production = figure4_production(width=48, height=36, fps=10, scale=0.05)
    _, movie = multilingual_movie(seconds=0.5, fps=10, width=48, height=36)
    return [
        ("figure2", capture.interpretation),
        ("figure4", production.multimedia),
        ("multilingual", movie),
    ]


def run_graph(ignore: tuple[str, ...] = ()) -> DiagnosticReport:
    """Check every exemplar graph; one merged report."""
    from repro.engine.player import CostModel

    checker = GraphChecker(
        cost_model=CostModel(bandwidth=EXEMPLAR_BANDWIDTH), ignore=ignore,
    )
    merged = DiagnosticReport(subject="graph:exemplars")
    for _, target in exemplar_graphs():
        merged.merge(checker.check(target))
    return merged


def run_crash() -> tuple[bool, str]:
    """The reduced crash matrix; ``(passed, rendered summary)``."""
    from repro.durability import CrashMatrix, default_scenarios

    lines = []
    passed = True
    for scenario in default_scenarios(small=True):
        report = CrashMatrix(scenario).run()
        lines.append(report.summary())
        if not report.passed:
            passed = False
            for outcome in report.failures:
                lines.append(f"  FAIL {outcome.site}: {outcome.detail}")
    return passed, "\n".join(lines)


def run_fleet() -> tuple[bool, str]:
    """The fleet failover smoke; ``(passed, rendered summary)``.

    Three shards serve a small synthetic title; the owning shard is
    killed mid-batch by an injected crash. The smoke passes when the
    failover is absorbed (no crash propagates), every displaced session
    is accounted exactly once, and the deadline-miss SLO stays green.
    """
    from repro.blob.blob import MemoryBlob
    from repro.codecs.jpeg_like import JpegLikeCodec
    from repro.engine.fleet import Fleet
    from repro.engine.recorder import Recorder
    from repro.engine.vod import SessionRequest
    from repro.faults.crash import CrashInjector, CrashSite
    from repro.faults.disk import SimulatedMedium
    from repro.media import frames
    from repro.media.objects import video_object
    from repro.obs import Observability

    video = video_object(frames.scene(48, 36, 20, "orbit"), "feature")
    movie = Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )

    def build(**kwargs) -> Fleet:
        fleet = Fleet(bandwidth=2_000_000, shards=3, **kwargs)
        fleet.publish("feature", movie)
        return fleet

    owner = build().route("feature")
    clients = 5
    fleet = build(
        obs=Observability(),
        checkpoint_fs=SimulatedMedium(),
        crash={owner: CrashInjector(CrashSite("vod.serve.session", 2))},
    )
    report = fleet.serve([
        SessionRequest(client=f"client-{i}", title="feature")
        for i in range(clients)
    ])
    health = fleet.health()

    checks = [
        ("shard marked dead", owner in fleet.dead_shards),
        ("exactly-once accounting",
         report.recovered + report.admitted_count
         + len(report.failed) == clients),
        ("no failed sessions", not report.failed),
        ("deadline-miss SLO green", any(
            v.slo == "deadline-miss-rate" and v.ok for v in health.slo
        )),
    ]
    passed = all(ok for _, ok in checks)
    rows = [(name, "ok" if ok else "FAIL") for name, ok in checks]
    rows.append(("dead shard", owner))
    rows.append(("recovered / resumed / failed",
                 f"{report.recovered} / {report.admitted_count} / "
                 f"{len(report.failed)}"))
    rows.append(("fleet status", health.status))
    return passed, table_text(
        ("check", "result"), rows,
        title="fleet failover smoke (3 shards, mid-serve shard kill)",
    )


def run_query(seeds: tuple[int, ...] = (0, 1, 2)) -> tuple[bool, str]:
    """The dual-backend agreement smoke; ``(passed, rendered summary)``.

    Each seed builds a randomized catalog behind ``MediaDatabase(
    index=True)`` and replays every dual-backend query through both the
    indexed and linear paths; any disagreement fails the stage.
    """
    from repro.query.index import demonstrate_correctness

    rows = []
    passed = True
    for seed in seeds:
        report = demonstrate_correctness(seed=seed)
        rows.append((
            str(seed), str(report["checks"]),
            str(len(report["disagreements"])),
            "ok" if report["ok"] else "FAIL",
        ))
        if not report["ok"]:
            passed = False
    return passed, table_text(
        ("seed", "checks", "disagreements", "result"), rows,
        title="dual-backend agreement smoke (indexed vs linear oracle)",
    )


def run_external(tool: str, arguments: list[str]) -> tuple[str, str]:
    """Run an optional external tool; ``(status, detail)``.

    ``status`` is ``"ok"``, ``"failed"`` or ``"skipped"`` (tool not
    installed — the baked-in toolchain may not carry it, and the gate
    must not depend on it).
    """
    executable = shutil.which(tool)
    if executable is None:
        return "skipped", f"{tool} not installed"
    result = subprocess.run(
        [executable, *arguments], capture_output=True, text=True,
    )
    detail = (result.stdout + result.stderr).strip()
    if result.returncode == 0:
        return "ok", detail or f"{tool} clean"
    return "failed", detail


def list_rules_text() -> str:
    """The registered rule table (the same source DESIGN.md renders)."""
    return table_text(
        ("rule", "engine", "severity", "title"),
        rule_registry.table(),
        title="registered analysis rules",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.check",
        description="Static verification gate: graph rules, self-lint, "
                    "and (when installed) ruff/mypy.",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every stage (default when no stage "
                             "flag is given)")
    parser.add_argument("--graph", action="store_true",
                        help="check the exemplar media graphs")
    parser.add_argument("--lint", action="store_true",
                        help="lint the library's own sources")
    parser.add_argument("--crash", action="store_true",
                        help="run the reduced crash matrix over the "
                             "simulated medium")
    parser.add_argument("--fleet", action="store_true",
                        help="run the fleet failover smoke: 3 shards, "
                             "mid-serve shard kill, SLO must stay green")
    parser.add_argument("--query", action="store_true",
                        help="run the dual-backend agreement smoke: "
                             "indexed vs linear answers must match")
    parser.add_argument("--style", action="store_true",
                        help="run ruff if installed (skipped otherwise)")
    parser.add_argument("--types", action="store_true",
                        help="run mypy if installed (skipped otherwise)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rule table and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit graph/lint reports as JSON")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="RULE",
                        help="suppress a rule id (repeatable)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules_text())
        return 0

    selected = {
        stage for stage in ("graph", "lint", "crash", "fleet", "query",
                            "style", "types")
        if getattr(args, stage)
    }
    if args.all or not selected:
        selected = {"graph", "lint", "crash", "fleet", "query", "style",
                    "types"}
    ignore = tuple(args.ignore)

    failed = []
    for stage in ("graph", "lint"):
        if stage not in selected:
            continue
        report = run_graph(ignore) if stage == "graph" else lint_repo(ignore)
        print(report.to_json() if args.json else report.render_text())
        print()
        if not report.ok:
            failed.append(stage)

    if "crash" in selected:
        crash_ok, crash_text = run_crash()
        print(crash_text)
        print()
        if not crash_ok:
            failed.append("crash")

    if "fleet" in selected:
        fleet_ok, fleet_text = run_fleet()
        print(fleet_text)
        print()
        if not fleet_ok:
            failed.append("fleet")

    if "query" in selected:
        query_ok, query_text = run_query()
        print(query_text)
        print()
        if not query_ok:
            failed.append("query")

    src_root = str(Path(__file__).resolve().parents[2])
    external = {
        "style": ("ruff", ["check", src_root]),
        "types": ("mypy", ["--ignore-missing-imports", src_root]),
    }
    for stage in ("style", "types"):
        if stage not in selected:
            continue
        tool, arguments = external[stage]
        status, detail = run_external(tool, arguments)
        print(f"{stage} ({tool}): {status}")
        if status == "failed":
            print(detail)
            failed.append(stage)
        print()

    if failed:
        print(f"check failed: {', '.join(failed)}")
        return 1
    print("check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
