"""The repo's static verification gate.

Usage::

    python -m repro.tools.check --all

Runs the static verification layer end to end and exits non-zero on
any ERROR-level finding, so CI can gate on it:

* ``--graph`` checks exemplar media graphs (the Figure 2 capture, the
  Figure 4 production and the §1.2 multilingual movie, rebuilt at
  reduced scale) through the media-graph rules (the ``MG`` range —
  ``--list-rules`` prints the live table; hardcoding the span here
  went stale once already);
* ``--lint`` runs the determinism/taxonomy linter (the ``LN`` range)
  over the library's own sources;
* ``--dataflow`` runs the CFG-based dataflow engine (the ``DF``
  range: typestate protocols for pins, WAL transactions and resource
  handles; wall-clock/float taint into exact-rational arithmetic;
  set-iteration order hazards; swallowed exceptions and absorbed
  simulated crashes) over the library's own sources. Findings listed
  in the committed baseline (``analysis/dataflow_baseline.json``) are
  reported but do not gate; only regressions fail the stage.
  ``--sarif PATH`` additionally writes the dataflow report as SARIF
  2.1.0; ``--update-baseline`` regenerates the baseline from the
  current findings instead of gating; ``--dataflow-root PATH`` points
  the engine at another tree (the baseline then does not apply);
* ``--crash`` runs a reduced crash matrix (the ``small`` scenario set
  over the simulated medium): every injected crash point is exercised
  and recovery invariants are asserted — a fast smoke of the full
  matrix the ``crash``-marked tests run;
* ``--fleet`` runs the fleet failover smoke: a three-shard fleet loses
  its owning shard mid-batch to an injected crash; the kill must be
  absorbed by checkpoint-backed failover with every displaced session
  accounted exactly once and the deadline-miss SLO still green;
* ``--query`` runs the dual-backend agreement smoke: seeded randomized
  catalogs are queried through both the relational temporal index and
  the linear oracle, and every result set (selections, temporal
  predicates, composition axes, lineage — including after
  ``set_attribute`` mutations) must be byte-identical;
* ``--telemetry`` runs the telemetry pipeline smoke: an overloaded
  single-shard serve with the clock-driven scraper attached must see a
  burn-rate alert fire *and* resolve before the serve returns, and two
  same-seed runs must produce byte-identical telemetry-store dumps and
  alert timelines;
* ``--style`` and ``--types`` invoke ``ruff`` and ``mypy`` when they
  are installed, and are skipped (without failing) when they are not —
  the in-tree engines above carry the gate either way.

``--all`` selects every stage and is the default when no stage flag is
given. ``--list-rules`` prints the rule table; ``--json`` switches the
graph/lint output to the deterministic JSON reporters; ``--ignore
RULE`` (repeatable) suppresses a rule id in both engines.

``--bench-compare BASELINE.json`` (not part of ``--all``) compares the
machine-readable benchmark metrics under ``results/`` against a saved
baseline and fails on any >25% throughput regression.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    DiagnosticReport,
    GraphChecker,
    lint_repo,
    rule_registry,
)
from repro.bench.reporting import table_text

#: Bandwidth (bytes/second) the exemplar graphs are priced against —
#: generous enough that the reduced-scale examples are feasible, so a
#: clean tree checks clean.
EXEMPLAR_BANDWIDTH = 40_000_000


def exemplar_graphs() -> list[tuple[str, object]]:
    """The worked examples the graph stage verifies, at reduced scale.

    Each is a real build of a paper figure — derived objects stay
    unexpanded, which is exactly what the static checker wants.
    """
    from repro.bench.workloads import (
        figure2_capture,
        figure4_production,
        multilingual_movie,
    )

    capture = figure2_capture(width=64, height=48, seconds=0.4, fps=10)
    production = figure4_production(width=48, height=36, fps=10, scale=0.05)
    _, movie = multilingual_movie(seconds=0.5, fps=10, width=48, height=36)
    return [
        ("figure2", capture.interpretation),
        ("figure4", production.multimedia),
        ("multilingual", movie),
    ]


def run_graph(ignore: tuple[str, ...] = ()) -> DiagnosticReport:
    """Check every exemplar graph; one merged report."""
    from repro.engine.player import CostModel

    checker = GraphChecker(
        cost_model=CostModel(bandwidth=EXEMPLAR_BANDWIDTH), ignore=ignore,
    )
    merged = DiagnosticReport(subject="graph:exemplars")
    for _, target in exemplar_graphs():
        merged.merge(checker.check(target))
    return merged


def run_crash() -> tuple[bool, str]:
    """The reduced crash matrix; ``(passed, rendered summary)``."""
    from repro.durability import CrashMatrix, default_scenarios

    lines = []
    passed = True
    for scenario in default_scenarios(small=True):
        report = CrashMatrix(scenario).run()
        lines.append(report.summary())
        if not report.passed:
            passed = False
            for outcome in report.failures:
                lines.append(f"  FAIL {outcome.site}: {outcome.detail}")
    return passed, "\n".join(lines)


def run_fleet() -> tuple[bool, str]:
    """The fleet failover smoke; ``(passed, rendered summary)``.

    Three shards serve a small synthetic title; the owning shard is
    killed mid-batch by an injected crash. The smoke passes when the
    failover is absorbed (no crash propagates), every displaced session
    is accounted exactly once, and the deadline-miss SLO stays green.
    """
    from repro.blob.blob import MemoryBlob
    from repro.codecs.jpeg_like import JpegLikeCodec
    from repro.engine.fleet import Fleet
    from repro.engine.recorder import Recorder
    from repro.engine.vod import SessionRequest
    from repro.faults.crash import CrashInjector, CrashSite
    from repro.faults.disk import SimulatedMedium
    from repro.media import frames
    from repro.media.objects import video_object
    from repro.obs import Observability

    video = video_object(frames.scene(48, 36, 20, "orbit"), "feature")
    movie = Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )

    def build(**kwargs) -> Fleet:
        fleet = Fleet(bandwidth=2_000_000, shards=3, **kwargs)
        fleet.publish("feature", movie)
        return fleet

    owner = build().route("feature")
    clients = 5
    fleet = build(
        obs=Observability(),
        checkpoint_fs=SimulatedMedium(),
        crash={owner: CrashInjector(CrashSite("vod.serve.session", 2))},
    )
    report = fleet.serve([
        SessionRequest(client=f"client-{i}", title="feature")
        for i in range(clients)
    ])
    health = fleet.health()

    checks = [
        ("shard marked dead", owner in fleet.dead_shards),
        ("exactly-once accounting",
         report.recovered + report.admitted_count
         + len(report.failed) == clients),
        ("no failed sessions", not report.failed),
        ("deadline-miss SLO green", any(
            v.slo == "deadline-miss-rate" and v.ok for v in health.slo
        )),
    ]
    passed = all(ok for _, ok in checks)
    rows = [(name, "ok" if ok else "FAIL") for name, ok in checks]
    rows.append(("dead shard", owner))
    rows.append(("recovered / resumed / failed",
                 f"{report.recovered} / {report.admitted_count} / "
                 f"{len(report.failed)}"))
    rows.append(("fleet status", health.status))
    return passed, table_text(
        ("check", "result"), rows,
        title="fleet failover smoke (3 shards, mid-serve shard kill)",
    )


def run_query(seeds: tuple[int, ...] = (0, 1, 2)) -> tuple[bool, str]:
    """The dual-backend agreement smoke; ``(passed, rendered summary)``.

    Each seed builds a randomized catalog behind ``MediaDatabase(
    index=True)`` and replays every dual-backend query through both the
    indexed and linear paths; any disagreement fails the stage.
    """
    from repro.query.index import demonstrate_correctness

    rows = []
    passed = True
    for seed in seeds:
        report = demonstrate_correctness(seed=seed)
        rows.append((
            str(seed), str(report["checks"]),
            str(len(report["disagreements"])),
            "ok" if report["ok"] else "FAIL",
        ))
        if not report["ok"]:
            passed = False
    return passed, table_text(
        ("seed", "checks", "disagreements", "result"), rows,
        title="dual-backend agreement smoke (indexed vs linear oracle)",
    )


def run_telemetry() -> tuple[bool, str]:
    """The telemetry pipeline smoke; ``(passed, rendered summary)``.

    An overloaded single-shard serve (six staggered sessions against a
    bandwidth sized for two) runs with the clock-driven scraper
    attached. The smoke passes when a burn-rate alert fires *and*
    resolves before the serve returns, the firing state is visible in
    ``health()`` mid-serve, and a second same-seed run produces a
    byte-identical store dump and alert timeline.
    """
    from repro.blob.blob import MemoryBlob
    from repro.codecs.jpeg_like import JpegLikeCodec
    from repro.core.rational import Rational
    from repro.engine.recorder import Recorder
    from repro.engine.vod import SessionRequest, VodServer
    from repro.media import frames
    from repro.media.objects import video_object
    from repro.obs import Observability
    from repro.obs.telemetry import Telemetry

    video = video_object(frames.scene(48, 36, 20, "orbit"), "feature")
    movie = Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )

    def run() -> tuple[Telemetry, list[str]]:
        telemetry = Telemetry()
        server = VodServer(21_000, obs=Observability(),
                           telemetry=telemetry)
        server.publish("feature", movie)
        seen_mid_serve: list[tuple[str, str, bool]] = []

        def observe(alert, at) -> None:
            health = server.health()
            seen_mid_serve.append((
                alert.state, health.status,
                bool(health.firing_alerts),
            ))

        telemetry.alerts.on_transition = observe
        server.serve(
            [SessionRequest(client=f"client-{i}", title="feature",
                            arrival_time=Rational(i, 8))
             for i in range(6)],
            enforce_admission=False,
        )
        return telemetry, seen_mid_serve

    first, mid_states = run()
    second, _ = run()
    states = {row["state"] for row in first.store.alert_rows()}
    checks = [
        ("alert fired during serve",
         any(state == "firing" for state, _, _ in mid_states)),
        ("firing visible in health() mid-serve",
         any(state == "firing" and status != "ok" and visible
             for state, status, visible in mid_states)),
        ("alert resolved before serve returned", "resolved" in states),
        ("store dump byte-identical",
         first.store.dump() == second.store.dump()),
        ("alert timeline identical",
         first.store.alert_rows() == second.store.alert_rows()),
    ]
    passed = all(ok for _, ok in checks)
    rows = [(name, "ok" if ok else "FAIL") for name, ok in checks]
    rows.append(("scrapes", first.store.scrape_count))
    rows.append(("alert transitions", len(first.store.alert_rows())))
    return passed, table_text(
        ("check", "result"), rows,
        title="telemetry pipeline smoke (overloaded serve, dual run)",
    )


def run_bench_compare(baseline_path: str,
                      results_dir: str | Path | None = None
                      ) -> tuple[bool, str]:
    """Compare ``results/BENCH_*.json`` against a saved baseline.

    The baseline is either one benchmark's ``BENCH_<id>.json``
    (``{"experiment": ..., "metrics": {...}}``) or a mapping of
    experiment id to its metrics dict. A throughput metric — name
    containing ``per_second`` or ``throughput`` — fails the stage when
    the current value drops below 75% of the baseline; other metrics
    are reported but never gate.
    """
    import json

    baseline_file = Path(baseline_path)
    if not baseline_file.is_file():
        return False, f"bench-compare: no baseline at {baseline_path}"
    baseline = json.loads(baseline_file.read_text(encoding="utf-8"))
    if "experiment" in baseline and "metrics" in baseline:
        baseline = {baseline["experiment"]: baseline["metrics"]}
    if results_dir is None:
        results_dir = Path(__file__).resolve().parents[3] \
            / "benchmarks" / "results"
    results_dir = Path(results_dir)

    rows = []
    passed = True
    for experiment in sorted(baseline):
        current_file = results_dir / f"BENCH_{experiment}.json"
        if not current_file.is_file():
            rows.append((experiment, "-", "-", "-", "MISSING"))
            passed = False
            continue
        current = json.loads(
            current_file.read_text(encoding="utf-8"))["metrics"]
        for name in sorted(baseline[experiment]):
            base = baseline[experiment][name]
            now = current.get(name)
            gates = "per_second" in name or "throughput" in name
            if not isinstance(base, (int, float)) or \
                    isinstance(base, bool):
                continue
            if now is None:
                rows.append((experiment, name, f"{base:g}", "-",
                             "MISSING" if gates else "absent"))
                passed = passed and not gates
                continue
            ratio = now / base if base else float("inf")
            if gates and ratio < 0.75:
                verdict = f"FAIL ({ratio:.0%} of baseline)"
                passed = False
            elif gates:
                verdict = f"ok ({ratio:.0%})"
            else:
                verdict = "info"
            rows.append((experiment, name, f"{base:g}", f"{now:g}",
                         verdict))
    return passed, table_text(
        ("experiment", "metric", "baseline", "current", "verdict"),
        rows, title="benchmark regression gate (>25% throughput drop fails)",
    )


def run_external(tool: str, arguments: list[str]) -> tuple[str, str]:
    """Run an optional external tool; ``(status, detail)``.

    ``status`` is ``"ok"``, ``"failed"`` or ``"skipped"`` (tool not
    installed — the baked-in toolchain may not carry it, and the gate
    must not depend on it).
    """
    executable = shutil.which(tool)
    if executable is None:
        return "skipped", f"{tool} not installed"
    result = subprocess.run(
        [executable, *arguments], capture_output=True, text=True,
    )
    detail = (result.stdout + result.stderr).strip()
    if result.returncode == 0:
        return "ok", detail or f"{tool} clean"
    return "failed", detail


def run_dataflow(ignore: tuple[str, ...] = (),
                 root: str | None = None,
                 baseline: Path | None = None,
                 ) -> tuple[DiagnosticReport, int]:
    """Run the dataflow engine; ``(fresh report, grandfathered count)``.

    Over the default root (the installed ``repro`` package) the
    committed baseline applies: findings whose fingerprints it lists
    are split out and only fresh ones gate. A custom ``root`` gets no
    baseline — everything it finds is fresh.
    """
    from repro.analysis.dataflow import (
        DEFAULT_BASELINE,
        check_paths,
        check_repo,
        load_baseline,
        split_baselined,
    )

    if root is not None:
        return check_paths([Path(root)], ignore=ignore), 0
    report = check_repo(ignore=ignore)
    known = load_baseline(DEFAULT_BASELINE if baseline is None else baseline)
    return split_baselined(report, known)


def rule_ranges() -> str:
    """The live per-engine rule id spans, e.g. ``MG001-MG009``.

    Derived from the registry rather than hardcoded, so the help text
    cannot go stale when a rule is added.
    """
    spans = []
    for engine in sorted({info.engine for info in
                          (rule_registry.get(i) for i in rule_registry.ids())}):
        ids = rule_registry.ids(engine=engine)
        spans.append(ids[0] if len(ids) == 1 else f"{ids[0]}-{ids[-1]}")
    return ", ".join(spans)


def list_rules_text() -> str:
    """The registered rule table (the same source DESIGN.md renders)."""
    return table_text(
        ("rule", "engine", "severity", "title"),
        rule_registry.table(),
        title="registered analysis rules",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.check",
        description="Static verification gate: graph rules, self-lint, "
                    "dataflow protocols, and (when installed) ruff/mypy.",
        epilog=f"registered rules: {rule_ranges()} "
               "(--list-rules for the full table)",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every stage (default when no stage "
                             "flag is given)")
    parser.add_argument("--graph", action="store_true",
                        help="check the exemplar media graphs")
    parser.add_argument("--lint", action="store_true",
                        help="lint the library's own sources")
    parser.add_argument("--dataflow", action="store_true",
                        help="run the CFG-based dataflow engine (DF "
                             "rules) over the library's own sources")
    parser.add_argument("--dataflow-root", metavar="PATH",
                        help="analyze this tree instead of the "
                             "installed repro package (the committed "
                             "baseline then does not apply)")
    parser.add_argument("--sarif", metavar="PATH",
                        help="also write the dataflow report as SARIF "
                             "2.1.0 to PATH")
    parser.add_argument("--update-baseline", action="store_true",
                        help="regenerate the committed dataflow "
                             "baseline from the current findings "
                             "instead of gating on them")
    parser.add_argument("--crash", action="store_true",
                        help="run the reduced crash matrix over the "
                             "simulated medium")
    parser.add_argument("--fleet", action="store_true",
                        help="run the fleet failover smoke: 3 shards, "
                             "mid-serve shard kill, SLO must stay green")
    parser.add_argument("--query", action="store_true",
                        help="run the dual-backend agreement smoke: "
                             "indexed vs linear answers must match")
    parser.add_argument("--telemetry", action="store_true",
                        help="run the telemetry pipeline smoke: alert "
                             "fires and resolves mid-serve, dual-run "
                             "store dumps byte-identical")
    parser.add_argument("--bench-compare", metavar="BASELINE.json",
                        help="compare results/BENCH_*.json against a "
                             "saved baseline; >25%% throughput "
                             "regression fails (not part of --all)")
    parser.add_argument("--style", action="store_true",
                        help="run ruff if installed (skipped otherwise)")
    parser.add_argument("--types", action="store_true",
                        help="run mypy if installed (skipped otherwise)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rule table and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit graph/lint reports as JSON")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="RULE",
                        help="suppress a rule id (repeatable)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules_text())
        return 0

    selected = {
        stage for stage in ("graph", "lint", "dataflow", "crash", "fleet",
                            "query", "telemetry", "style", "types")
        if getattr(args, stage)
    }
    if args.all or (not selected and not args.bench_compare):
        selected = {"graph", "lint", "dataflow", "crash", "fleet", "query",
                    "telemetry", "style", "types"}
    ignore = tuple(args.ignore)

    failed = []
    for stage in ("graph", "lint"):
        if stage not in selected:
            continue
        report = run_graph(ignore) if stage == "graph" else lint_repo(ignore)
        print(report.to_json() if args.json else report.render_text())
        print()
        if not report.ok:
            failed.append(stage)

    if "dataflow" in selected:
        from repro.analysis.dataflow import (
            DEFAULT_BASELINE,
            baseline_payload,
            sarif_report,
        )
        from repro.durability.atomic import atomic_write_bytes

        if args.update_baseline:
            if args.dataflow_root is not None:
                print("dataflow: --update-baseline only applies to the "
                      "default root")
                failed.append("dataflow")
                report = None
            else:
                from repro.analysis.dataflow import check_repo

                # The baseline must carry every current finding, not
                # just the ones the previous baseline missed.
                report = check_repo(ignore=ignore)
                atomic_write_bytes(
                    str(DEFAULT_BASELINE), baseline_payload(report))
                print(f"dataflow: baseline rewritten with "
                      f"{len(report.diagnostics)} finding(s) at "
                      f"{DEFAULT_BASELINE}")
        else:
            report, grandfathered = run_dataflow(
                ignore, root=args.dataflow_root)
            print(report.to_json() if args.json else report.render_text())
            if grandfathered:
                print(f"({grandfathered} baselined finding(s) not shown; "
                      "--update-baseline regenerates)")
            if not report.ok:
                failed.append("dataflow")
        if args.sarif and report is not None:
            import json as _json

            atomic_write_bytes(args.sarif, _json.dumps(
                sarif_report(report), indent=2, sort_keys=True,
            ).encode("utf-8") + b"\n")
            print(f"dataflow: SARIF written to {args.sarif}")
        print()

    if "crash" in selected:
        crash_ok, crash_text = run_crash()
        print(crash_text)
        print()
        if not crash_ok:
            failed.append("crash")

    if "fleet" in selected:
        fleet_ok, fleet_text = run_fleet()
        print(fleet_text)
        print()
        if not fleet_ok:
            failed.append("fleet")

    if "query" in selected:
        query_ok, query_text = run_query()
        print(query_text)
        print()
        if not query_ok:
            failed.append("query")

    if "telemetry" in selected:
        telemetry_ok, telemetry_text = run_telemetry()
        print(telemetry_text)
        print()
        if not telemetry_ok:
            failed.append("telemetry")

    if args.bench_compare:
        bench_ok, bench_text = run_bench_compare(args.bench_compare)
        print(bench_text)
        print()
        if not bench_ok:
            failed.append("bench-compare")

    src_root = str(Path(__file__).resolve().parents[2])
    external = {
        "style": ("ruff", ["check", src_root]),
        "types": ("mypy", ["--ignore-missing-imports", src_root]),
    }
    for stage in ("style", "types"):
        if stage not in selected:
            continue
        tool, arguments = external[stage]
        status, detail = run_external(tool, arguments)
        print(f"{stage} ({tool}): {status}")
        if status == "failed":
            print(detail)
            failed.append(stage)
        print()

    if failed:
        print(f"check failed: {', '.join(failed)}")
        return 1
    print("check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
