"""Command-line tools.

* ``python -m repro.tools.inspect <file.rmf>`` — inspect a container:
  sequences, descriptors, placement tables, categories, playback check.
"""
