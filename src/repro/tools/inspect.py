"""Inspect an RMF container file.

Usage::

    python -m repro.tools.inspect movie.rmf [--table NAME] [--play BANDWIDTH]

Prints the interpretation summary (sequences, descriptors, categories),
optionally one sequence's placement table, and optionally a simulated
playback report at the given bandwidth (bytes/second). With ``--obs``
the playback runs instrumented and the collected metrics are printed
as a table. With ``--cache PAGES`` the container is replayed through a
``PAGES``-page buffer pool (cold pass, then warm pass) and the
cache-hit accounting is printed.

``--health [CLIENTS]`` serves the container to CLIENTS concurrent
sessions (default 2, admission disabled so overload is visible) through
an instrumented :class:`~repro.engine.vod.VodServer` and prints the
server's health: status, SLO verdicts, pipeline stage profile and
recent flight-recorder events. ``--timeline PATH`` writes the same
instrumented run's spans and events as Chrome ``trace_event`` JSON,
loadable in chrome://tracing or Perfetto. Both take the serving
bandwidth from ``--play`` when given, else 2 MB/s.

``--fleet [SHARDS]`` serves the container across a SHARDS-shard
:class:`~repro.engine.fleet.Fleet` (default 3) and prints the shard
census — routing, per-shard session counts, event-loop stats — and the
fleet health rollup.

``--dash [CLIENTS]`` serves CLIENTS concurrent sessions (default 4,
admission disabled) with the clock-driven telemetry pipeline attached
and renders the terminal dashboard: per-series sparklines, the alert
table and timeline, and the shard heat row.

``--verify`` runs the static media-graph checker over the container's
interpretation and prints its findings; the exit code turns non-zero
on any ERROR-level diagnostic, so a broken container is caught before
anything tries to play it.

``--index`` catalogs the container into an indexed
:class:`~repro.query.database.MediaDatabase` and prints the relational
temporal index's census: per-relation row counts, the index inventory,
on-disk size and the last write-through.

``--wal`` treats the path as a write-ahead-log *directory* instead of
a container and prints the log's state — segments, record counts,
committed transactions, and whether the tail is torn — without
modifying it.

``--cfg QUALNAME`` treats the path as a *Python source file* instead
of a container and prints the dataflow engine's control-flow graph of
the named function (``serve`` or ``PagedBlob.read``-style qualnames),
node by node with its edges — the exact graph the DF rules analyze.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import format_rate, table_text
from repro.blob.blob import PagedBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.cache import BufferPool
from repro.core.interpretation import Interpretation
from repro.engine.player import CostModel, Player
from repro.engine.vod import SessionRequest, VodServer
from repro.obs import (
    Observability,
    events_to_table,
    profile_stages,
    to_chrome_trace,
    to_table,
)
from repro.storage.container import read_container

#: Serving bandwidth for --health/--timeline when --play gives none.
DEFAULT_HEALTH_BANDWIDTH = 2_000_000


def describe_interpretation(interpretation: Interpretation) -> str:
    """Full human-readable description of a container's contents."""
    lines = [interpretation.describe(), ""]
    for name in interpretation.names():
        sequence = interpretation.sequence(name)
        stream = interpretation.materialize(name, read_payloads=False)
        descriptor = sequence.media_descriptor
        lines.append(f"{name}:")
        lines.append(f"  media type : {sequence.media_type.name}")
        lines.append(f"  time system: {sequence.time_system}")
        lines.append(f"  category   : {stream.category_label()}")
        lines.append(
            f"  elements   : {len(sequence)}, "
            f"{sequence.total_size():,} bytes, "
            f"span {stream.duration_seconds().to_timestamp()}"
        )
        for key in ("encoding", "quality_factor", "average_data_rate"):
            if key in descriptor:
                value = descriptor[key]
                if key == "average_data_rate":
                    value = format_rate(float(value))
                lines.append(f"  {key:11s}: {value}")
        lines.append("")
    return "\n".join(lines)


def placement_table_text(interpretation: Interpretation, name: str,
                         limit: int = 20) -> str:
    """One sequence's placement table (first ``limit`` rows)."""
    sequence = interpretation.sequence(name)
    rows = sequence.table()[:limit]
    suffix = "" if len(sequence) <= limit else f" (of {len(sequence)})"
    return table_text(
        sequence.table_columns(), rows,
        title=f"{name} placement table, first {len(rows)} rows{suffix}",
    )


def playback_text(interpretation: Interpretation, bandwidth: int,
                  obs: Observability | None = None) -> str:
    player = Player(CostModel(bandwidth=bandwidth), obs=obs)
    report = player.play(interpretation)
    text = f"playback at {format_rate(bandwidth)}: {report.summary()}"
    if obs is not None:
        text += "\n\n" + to_table(obs)
    return text


def paged_copy(interpretation: Interpretation,
               pool: BufferPool) -> Interpretation:
    """The same interpretation over a paged, pool-backed copy of its BLOB.

    Placement offsets are unchanged — only the backing store differs —
    so the copy replays identically while exercising the page cache.
    """
    store = PageStore(MemoryPager(), checksums=True, buffer_pool=pool)
    blob = PagedBlob(store)
    blob.append(interpretation.blob.read_all())
    copy = Interpretation(blob, f"{interpretation.name}-cached")
    for name in interpretation.names():
        copy.add_sequence(interpretation.sequence(name))
    return copy


def cached_replay_text(interpretation: Interpretation, pages: int) -> str:
    """Cold-then-warm replay through a buffer pool, with hit accounting."""
    obs = Observability()
    pool = BufferPool(pages)
    cached = paged_copy(interpretation, pool)
    cached.instrument(obs)
    cached.blob.store.instrument(obs)
    pager_reads = obs.metrics.counter("blob.page.pager_reads")

    def replay() -> int:
        before = pager_reads.total()
        for name in cached.names():
            cached.materialize(name)
        return pager_reads.total() - before

    cold = replay()
    warm = replay()
    rows = [
        ("buffer pool pages", pool.capacity_pages),
        ("cold pager reads", cold),
        ("warm pager reads", warm),
        ("cache hits", pool.hits),
        ("cache hit ratio", f"{pool.hit_ratio:.1%}"),
        ("evictions", pool.evictions),
        ("occupancy bytes", pool.occupancy_bytes),
    ]
    return table_text(
        ("metric", "value"), rows,
        title=f"cached replay through a {pages}-page buffer pool",
    )


def serve_instrumented(interpretation: Interpretation, bandwidth: int,
                       clients: int, obs: Observability,
                       telemetry=None) -> VodServer:
    """Serve ``clients`` concurrent sessions of the container's title
    through an instrumented VOD server (admission disabled)."""
    server = VodServer(bandwidth, obs=obs, telemetry=telemetry)
    server.publish(interpretation.name, interpretation)
    requests = [
        SessionRequest(client=f"client-{i}", title=interpretation.name)
        for i in range(clients)
    ]
    server.serve(requests, enforce_admission=False)
    return server


def dashboard_text(interpretation: Interpretation, bandwidth: int,
                   clients: int) -> str:
    """Serve with telemetry attached and render the dashboard."""
    from repro.obs.telemetry import Telemetry
    from repro.tools.dashboard import render_dashboard

    obs = Observability()
    telemetry = Telemetry()
    serve_instrumented(interpretation, bandwidth, clients, obs,
                       telemetry=telemetry)
    return render_dashboard(telemetry.store, alerts=telemetry.alerts)


def fleet_census_text(interpretation: Interpretation, bandwidth: int,
                      shards: int, clients: int = 6) -> str:
    """Serve the container across a small fleet and print the shard
    census: routing, per-shard session counts, event-loop stats and
    the fleet health rollup."""
    from repro.engine.fleet import Fleet

    obs = Observability()
    fleet = Fleet(bandwidth, shards=shards, obs=obs)
    title = interpretation.name
    fleet.publish(title, interpretation)
    fleet.serve(
        [SessionRequest(client=f"client-{i}", title=title)
         for i in range(clients)],
        enforce_admission=False,
    )
    health = fleet.health()
    rows = []
    for name in fleet.shard_names:
        shard = fleet.shard(name)
        shard_health = health.shards[name]
        stats = shard.last_loop_stats
        rows.append((
            name,
            "live" if name in fleet.live_shards else "DEAD",
            "yes" if fleet.route(title) == name else "",
            shard_health.sessions,
            shard_health.status,
            stats["events_processed"] if stats else 0,
        ))
    census = table_text(
        ("shard", "state", f"owns {title!r}", "sessions", "status",
         "events"),
        rows,
        title=f"fleet census: {shards} shards at "
              f"{format_rate(bandwidth)} each, {clients} sessions",
    )
    return census + "\n\n" + health.summary()


def index_census_text(interpretation: Interpretation) -> str:
    """Catalog the container behind a relational index; print its census."""
    from repro.query.database import MediaDatabase

    db = MediaDatabase(f"{interpretation.name}-catalog", index=True)
    db.add_interpretation(interpretation)
    census = db.index.census()
    rows = [
        (relation, count)
        for relation, count in sorted(census["rows"].items())
    ]
    rows.append(("(total writes)", census["writes"]))
    seq, op, detail = census["last_write"] or (0, "-", "-")
    rows.append(("(last write-through)", f"#{seq} {op} {detail}"))
    rows.append(("(size bytes)", census["size_bytes"]))
    relations = table_text(
        ("relation", "rows"), rows,
        title=f"temporal index census for {interpretation.name!r}",
    )
    indexes = "indexes: " + ", ".join(census["indexes"])
    return relations + "\n" + indexes


def health_text(server: VodServer, obs: Observability) -> str:
    """The server's health summary, stage profile and recent events."""
    parts = [server.health().summary()]
    profile = profile_stages(obs)
    if profile.stages:
        parts.append(profile.table())
    if len(obs.events):
        parts.append(events_to_table(obs, title="recent events", limit=15))
    return "\n\n".join(parts)


def cfg_dump_text(path: str, qualname: str) -> str:
    """The CFG dump of one function in a Python source file.

    Raises :class:`~repro.errors.AnalysisError` for an unknown
    qualname, listing what the file does define.
    """
    import ast
    from pathlib import Path

    from repro.analysis.cfg import build_cfg, function_defs
    from repro.errors import AnalysisError

    source = Path(path)
    tree = ast.parse(source.read_text(encoding="utf-8"))
    defs = function_defs(tree)
    for found, _, func in defs:
        if found == qualname:
            return build_cfg(func, name=source.name,
                             qualname=qualname).dump()
    raise AnalysisError(
        f"no function {qualname!r} in {path}; defines: "
        f"{', '.join(q for q, _, _ in defs) or '(none)'}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.inspect",
        description="Inspect an RMF media container.",
    )
    parser.add_argument("path", help="container file (.rmf)")
    parser.add_argument("--table", metavar="NAME",
                        help="print NAME's placement table")
    parser.add_argument("--play", metavar="BANDWIDTH", type=int,
                        help="simulate playback at BANDWIDTH bytes/second")
    parser.add_argument("--obs", action="store_true",
                        help="instrument --play and print the metric table")
    parser.add_argument("--cache", metavar="PAGES", type=int,
                        help="replay cold/warm through a PAGES-page "
                             "buffer pool and print hit accounting")
    parser.add_argument("--health", metavar="CLIENTS", type=int,
                        nargs="?", const=2,
                        help="serve CLIENTS concurrent sessions (default "
                             "2) and print the server's health: status, "
                             "SLO verdicts, stage profile, recent events")
    parser.add_argument("--fleet", metavar="SHARDS", type=int,
                        nargs="?", const=3,
                        help="serve the container across a SHARDS-shard "
                             "fleet (default 3) and print the shard "
                             "census and fleet health rollup")
    parser.add_argument("--dash", metavar="CLIENTS", type=int,
                        nargs="?", const=4,
                        help="serve CLIENTS concurrent sessions (default "
                             "4) with telemetry attached and render the "
                             "terminal dashboard")
    parser.add_argument("--timeline", metavar="PATH",
                        help="write the instrumented serving run as "
                             "Chrome trace_event JSON to PATH")
    parser.add_argument("--verify", action="store_true",
                        help="run the static graph checker over the "
                             "container and fail on any error finding")
    parser.add_argument("--index", action="store_true",
                        help="catalog the container behind the relational "
                             "temporal index and print its census")
    parser.add_argument("--wal", action="store_true",
                        help="treat PATH as a write-ahead-log directory "
                             "and print its state")
    parser.add_argument("--cfg", metavar="QUALNAME",
                        help="treat PATH as a Python source file and "
                             "print the control-flow graph of the "
                             "QUALNAME function (e.g. PagedBlob.read)")
    args = parser.parse_args(argv)

    if args.cfg:
        from repro.errors import MediaModelError

        try:
            print(cfg_dump_text(args.path, args.cfg))
        except (OSError, SyntaxError, MediaModelError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.wal:
        from repro.durability import REAL_FS, WriteAheadLog
        from repro.errors import MediaModelError

        if not REAL_FS.exists(args.path):
            print(f"error: no WAL directory at {args.path}",
                  file=sys.stderr)
            return 1
        try:
            with WriteAheadLog(args.path) as wal:
                print(wal.describe())
        except (OSError, MediaModelError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    try:
        interpretation = read_container(args.path)
    except (OSError, Exception) as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(describe_interpretation(interpretation))
    if args.verify:
        from repro.analysis import GraphChecker

        checker = GraphChecker(
            cost_model=CostModel(
                bandwidth=args.play or DEFAULT_HEALTH_BANDWIDTH
            )
        )
        report = checker.check(interpretation)
        print(report.render_text())
        print()
        if not report.ok:
            return 1
    if args.index:
        print(index_census_text(interpretation))
        print()
    if args.table:
        print(placement_table_text(interpretation, args.table))
        print()
    if args.play:
        obs = Observability() if args.obs else None
        print(playback_text(interpretation, args.play, obs=obs))
    if args.cache:
        print(cached_replay_text(interpretation, args.cache))
    if args.fleet is not None:
        print(fleet_census_text(
            interpretation,
            bandwidth=args.play or DEFAULT_HEALTH_BANDWIDTH,
            shards=args.fleet,
        ))
        print()
    if args.dash is not None:
        print(dashboard_text(
            interpretation,
            bandwidth=args.play or DEFAULT_HEALTH_BANDWIDTH,
            clients=args.dash,
        ))
        print()
    if args.health is not None or args.timeline:
        obs = Observability()
        server = serve_instrumented(
            interpretation,
            bandwidth=args.play or DEFAULT_HEALTH_BANDWIDTH,
            clients=args.health if args.health is not None else 1,
            obs=obs,
        )
        if args.health is not None:
            print(health_text(server, obs))
        if args.timeline:
            from repro.durability import atomic_write_bytes

            atomic_write_bytes(args.timeline,
                               to_chrome_trace(obs).encode("utf-8"))
            print(f"wrote Chrome trace to {args.timeline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
