"""A deterministic terminal dashboard over a telemetry store.

Renders what an operator would watch during a serve — per-series
sparklines, the alert table, a per-shard heat row — as plain text (or,
with ``ansi=True``, with alert states colored). Everything is a pure
function of the :class:`~repro.obs.telemetry.TelemetryStore` rows, so
two same-seed runs render byte-identical dashboards.

Usage::

    python -m repro.tools.inspect movie.rmf --dash

or programmatically::

    from repro.tools.dashboard import render_dashboard
    print(render_dashboard(fleet.telemetry.store,
                           alerts=fleet.telemetry.alerts))
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.bench.reporting import table_text

__all__ = [
    "HEAT_CHARS",
    "SPARK_CHARS",
    "heat_row",
    "render_dashboard",
    "sparkline",
]

#: Nine-level block ramp; index 0 (space) is "no signal this scrape".
SPARK_CHARS = " ▁▂▃▄▅▆▇█"

#: Four-level shade ramp for the per-shard heat row.
HEAT_CHARS = "░▒▓█"

_ANSI = {
    "firing": "\x1b[31m",    # red
    "pending": "\x1b[33m",   # yellow
    "resolved": "\x1b[32m",  # green
    "inactive": "\x1b[2m",   # dim
}
_ANSI_RESET = "\x1b[0m"

#: Longest sparkline / metric name the dashboard will print.
MAX_SPARK_WIDTH = 48
_MAX_SERIES = 24


def sparkline(values: Iterable[float], width: int = MAX_SPARK_WIDTH) -> str:
    """Map a value series onto :data:`SPARK_CHARS`.

    Values scale linearly against the series maximum (zero and the
    empty series render as spaces); series longer than ``width`` keep
    their newest points. The mapping uses only comparisons and one
    division per point, so equal inputs give equal glyphs.
    """
    points = [0.0 if v is None else float(v) for v in values][-width:]
    if not points:
        return ""
    top = max(points)
    if top <= 0.0:
        return SPARK_CHARS[0] * len(points)
    steps = len(SPARK_CHARS) - 1
    out = []
    for value in points:
        if value <= 0.0:
            out.append(SPARK_CHARS[0])
        else:
            rank = int(value / top * steps)
            out.append(SPARK_CHARS[max(1, min(steps, rank))])
    return "".join(out)


def _deltas(samples: list[tuple]) -> list[float]:
    """Per-scrape increases of a cumulative series (floored at zero)."""
    out = []
    previous = 0.0
    for row in samples:
        value = 0.0 if row[1] is None else float(row[1])
        out.append(max(value - previous, 0.0))
        previous = value
    return out


def _values(samples: list[tuple]) -> list[float]:
    return [0.0 if row[1] is None else float(row[1]) for row in samples]


def _series_table(store, kinds: Mapping[str, str]) -> str:
    rows = []
    for metric in store.metrics():
        kind = kinds.get(metric, "metric")
        field = "count" if kind == "histogram" else "value"
        grouped = store.series(metric, field=field)
        for key in sorted(grouped):
            source, name, labels = key
            samples = grouped[key]
            if kind == "gauge":
                points = _values(samples)
                shown = "level"
            else:
                points = _deltas(samples)
                shown = "delta"
            last = points[-1] if points else 0.0
            rows.append((
                name[-MAX_SPARK_WIDTH:],
                source,
                "" if labels == "{}" else labels,
                shown,
                f"{last:g}",
                sparkline(points),
            ))
    dropped = len(rows) - _MAX_SERIES
    rows = rows[:_MAX_SERIES]
    title = "series (sparkline per scrape)"
    if dropped > 0:
        title += f" — first {_MAX_SERIES}, {dropped} more omitted"
    return table_text(
        ("metric", "source", "labels", "shows", "last", "spark"),
        rows, title=title,
    )


def _paint(state: str, ansi: bool) -> str:
    if not ansi or state not in _ANSI:
        return state
    return f"{_ANSI[state]}{state}{_ANSI_RESET}"


def _alert_table(store, alerts, ansi: bool) -> str:
    """Current alert states (when a manager is given) plus the
    transition timeline from the store's alert log."""
    parts = []
    if alerts is not None:
        rows = [
            (
                alert.name,
                alert.source,
                _paint(alert.state, ansi),
                "" if alert.since is None else str(alert.since),
                f"{alert.burn_short:.2f}",
                f"{alert.burn_long:.2f}",
            )
            for alert in alerts.all()
        ]
        if rows:
            parts.append(table_text(
                ("alert", "source", "state", "since", "burn(s)", "burn(l)"),
                rows, title="alerts",
            ))
    timeline = [
        (
            row["seq"],
            row["at"],
            row["alert"],
            row["source"],
            _paint(row["state"], ansi),
            f"{row['burn_short']:.2f}",
            f"{row['burn_long']:.2f}",
        )
        for row in store.alert_rows()
    ]
    if timeline:
        parts.append(table_text(
            ("seq", "at", "alert", "source", "state", "burn(s)", "burn(l)"),
            timeline, title="alert timeline",
        ))
    if not parts:
        return "alerts: none recorded"
    return "\n\n".join(parts)


def heat_row(store, kinds: Mapping[str, str] | None = None) -> str:
    """One heat glyph per source: total counter growth, normalized.

    A shard that accumulated the most counter increments across the
    run glows ``█``; idle shards show ``░``. The reduction is a sum of
    final-minus-first readings per cumulative series, so it is exact
    for identical stores.
    """
    kinds = store.metric_kinds() if kinds is None else kinds
    totals: dict[str, float] = {source: 0.0 for source in store.sources()}
    for metric, kind in kinds.items():
        if kind == "gauge":
            continue
        field = "count" if kind == "histogram" else "value"
        for key, samples in store.series(metric, field=field).items():
            values = _values(samples)
            if values:
                totals[key[0]] = totals.get(key[0], 0.0) + \
                    max(values[-1] - values[0], 0.0)
    if not totals:
        return "shard heat: (no scrapes)"
    top = max(totals.values())
    cells = []
    for source in sorted(totals):
        value = totals[source]
        if top <= 0.0:
            glyph = HEAT_CHARS[0]
        else:
            rank = int(value / top * (len(HEAT_CHARS) - 1) + 0.5)
            glyph = HEAT_CHARS[max(0, min(len(HEAT_CHARS) - 1, rank))]
        cells.append(f"{source}:{glyph}")
    return "shard heat: " + "  ".join(cells)


def render_dashboard(store, alerts=None, *, ansi: bool = False) -> str:
    """The full dashboard text for one telemetry store.

    ``alerts`` is the run's :class:`~repro.obs.telemetry.AlertManager`
    when available (current states render alongside the store's
    transition timeline). ``ansi`` colors alert states; the default is
    plain text so dumps diff cleanly.
    """
    latest = store.latest_time()
    header = (
        f"telemetry dashboard — {store.scrape_count} scrapes, "
        f"{len(store.sources())} source(s), "
        f"t={'-' if latest is None else latest}"
    )
    if store.scrape_count == 0:
        return header + "\n(no scrapes recorded)"
    kinds = store.metric_kinds()
    return "\n\n".join([
        header,
        _series_table(store, kinds),
        _alert_table(store, alerts, ansi),
        heat_row(store, kinds),
    ])
