"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def format_bytes(count: float) -> str:
    """Human-readable byte count (binary units)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024
    return f"{value:.2f} GiB"


def format_rate(bytes_per_second: float) -> str:
    """Human-readable data rate."""
    return f"{format_bytes(bytes_per_second)}/s"


def table_text(headers: Sequence[str], rows: Sequence[Sequence[Any]],
               title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[column]) for row in cells)
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                title: str | None = None) -> None:
    print()
    print(table_text(headers, rows, title))


def metric_snapshot_rows(snapshot: dict) -> list[tuple[str, str, str, str]]:
    """Flatten a metrics snapshot (``MetricsRegistry.snapshot()`` or
    ``PlaybackReport.metrics``) to ``(metric, type, labels, value)``
    rows, sorted for stable output."""
    rows = []
    for name in sorted(snapshot):
        body = snapshot[name]
        for entry in body["series"]:
            labels = entry.get("labels") or {}
            value = entry["value"]
            if isinstance(value, dict):  # histogram series
                rendered = (
                    f"count={value['count']} sum={value['sum']:.6g} "
                    f"buckets={value['counts']}"
                )
            else:
                rendered = str(value)
            rows.append((
                name,
                body["type"],
                ",".join(f"{k}={labels[k]}" for k in sorted(labels)),
                rendered,
            ))
    return rows


def metric_snapshot_text(snapshot: dict, title: str | None = None) -> str:
    """Aligned text table of a metrics snapshot, benchmark-style —
    embed observability captures next to the paper tables."""
    return table_text(
        ("metric", "type", "labels", "value"),
        metric_snapshot_rows(snapshot),
        title=title,
    )
