"""Workload builders reconstructing the paper's worked examples.

Every builder is deterministic (seeded) and parameterized by scale, so
benchmarks can run the paper's geometry symbolically (640x480, 10
minutes) while actually encoding a laptop-scale segment that exercises
identical code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.codecs.pcm import PcmCodec
from repro.core.elements import MediaElement
from repro.core.interpretation import Interpretation
from repro.core.media_types import media_type_registry
from repro.core.quality import VIDEO_QUALITY
from repro.core.rational import Rational
from repro.core.streams import TimedStream, TimedTuple
from repro.core.composition import MultimediaObject
from repro.edit.editor import MediaEditor
from repro.engine.recorder import Recorder
from repro.media import frames, signals
from repro.media.music import demo_score
from repro.media.objects import audio_object, video_object


# -- Figure 1: one stream per category ----------------------------------------


def figure1_streams() -> dict[str, TimedStream]:
    """One synthetic timed stream per Figure 1 category.

    Keys are the paper's category labels; each stream genuinely belongs
    to (at least) its labelled category, mirroring the figure's rows:
    homogeneous, heterogeneous, continuous, non-continuous, event-based,
    constant frequency, constant data rate, uniform.
    """
    cd = media_type_registry.get("cd-audio")
    adpcm = media_type_registry.get("adpcm-audio")
    video = media_type_registry.get("pal-video")
    result: dict[str, TimedStream] = {}

    # homogeneous + uniform: CD audio, every element a 4-byte sample pair.
    result["homogeneous"] = TimedStream.from_elements(
        cd, [MediaElement(size=4) for _ in range(12)]
    )

    # heterogeneous: ADPCM blocks with varying predictor state.
    adpcm_tuples = []
    tick = 0
    rng = np.random.default_rng(7)
    for i in range(6):
        descriptor = adpcm.make_element_descriptor(
            predictor=int(rng.integers(-2000, 2000)),
            step_index=int(rng.integers(0, 89)),
        )
        block = 505
        adpcm_tuples.append(TimedTuple(
            MediaElement(size=259, descriptor=descriptor), tick, block
        ))
        tick += block
    result["heterogeneous"] = TimedStream(adpcm, adpcm_tuples)

    # continuous: compressed video — variable sizes, constant frequency.
    sizes = [900, 1100, 950, 1200, 1000, 1050]
    result["continuous"] = TimedStream.from_elements(
        video, [MediaElement(size=s) for s in sizes]
    )

    # non-continuous: music with a rest (gap) and a chord (overlap).
    result["non-continuous"] = demo_score().to_stream()

    # event-based: MIDI events, all durations zero.
    result["event-based"] = demo_score().to_event_stream()

    # constant frequency: same as continuous (variable size, fixed rate).
    result["constant frequency"] = result["continuous"]

    # constant data rate: sizes proportional to (equal) durations.
    result["constant data rate"] = TimedStream.from_elements(
        video, [MediaElement(size=1000) for _ in range(6)]
    )

    # uniform: raw (uncompressed) video — fixed size and duration.
    result["uniform"] = TimedStream.from_elements(
        video, [MediaElement(size=1536) for _ in range(6)]
    )
    return result


# -- Figure 2: interpretation of a BLOB ----------------------------------------


@dataclass
class Figure2Arithmetic:
    """The paper's §4.1 data-rate arithmetic, symbolically."""

    width: int
    height: int
    fps: int
    rgb_bits: int
    yuv_bits: float
    jpeg_bits_per_pixel: float
    audio_rate: int
    audio_sample_bits: int
    audio_channels: int
    duration_seconds: int

    @property
    def raw_video_rate(self) -> float:
        """Bytes/second before compression (the paper's ~22 MB/s)."""
        return self.width * self.height * self.rgb_bits / 8 * self.fps

    @property
    def yuv_video_rate(self) -> float:
        """Bytes/second after YUV subsampling (12 bpp in the paper)."""
        return self.width * self.height * self.yuv_bits / 8 * self.fps

    @property
    def compressed_video_rate(self) -> float:
        """Bytes/second after JPEG at the target bpp (~0.5 MB/s)."""
        return self.width * self.height * self.jpeg_bits_per_pixel / 8 * self.fps

    @property
    def audio_data_rate(self) -> int:
        """Bytes/second of PCM audio (the paper's 172 kbyte/sec)."""
        return self.audio_rate * self.audio_sample_bits // 8 * self.audio_channels

    @property
    def samples_per_frame(self) -> int:
        """Audio sample pairs interleaved after each video frame (1764)."""
        return self.audio_rate // self.fps

    @property
    def total_bytes(self) -> float:
        return (self.compressed_video_rate + self.audio_data_rate) * self.duration_seconds


def figure2_paper_arithmetic() -> Figure2Arithmetic:
    """The exact parameters of the paper's §4.1 example."""
    return Figure2Arithmetic(
        width=640, height=480, fps=25, rgb_bits=24, yuv_bits=12.0,
        jpeg_bits_per_pixel=0.5, audio_rate=44100, audio_sample_bits=16,
        audio_channels=2, duration_seconds=600,
    )


@dataclass
class Figure2Capture:
    """A real captured-and-interpreted Figure 2 workload."""

    interpretation: Interpretation
    video_codec: JpegLikeCodec
    frame_count: int
    width: int
    height: int
    measured_video_bpp: float
    measured_video_rate: float
    measured_audio_rate: float


def figure2_capture(width: int = 160, height: int = 120,
                    seconds: float = 1.0, fps: int = 25,
                    quality: str = "VHS quality",
                    sample_rate: int = 44100,
                    content: str = "orbit") -> Figure2Capture:
    """Actually perform the Figure 2 pipeline at reduced scale.

    PAL-geometry video is synthesized, converted RGB->YUV 4:2:2, JPEG
    compressed at the descriptive quality factor's hidden parameters, and
    interleaved with stereo PCM audio (samples following the associated
    frame) into one BLOB, whose interpretation is built during the write.
    """
    frame_count = int(round(seconds * fps))
    footage = frames.scene(width, height, frame_count, content)
    video = video_object(footage, "video1", quality_factor=quality)

    stereo = signals.to_stereo(
        signals.mix(
            signals.sine(440, seconds, sample_rate) * 0.6,
            signals.sine(660, seconds, sample_rate) * 0.3,
        )
    )
    samples_per_frame = sample_rate // fps
    audio = audio_object(
        stereo, "audio1", sample_rate=sample_rate,
        block_samples=samples_per_frame, quality_factor="CD quality",
    )

    params = VIDEO_QUALITY.codec_params(quality)
    codec = JpegLikeCodec(quality=params["jpeg_quality"], subsampling="4:2:2")
    pcm = PcmCodec(16, 2)

    blob = MemoryBlob()
    recorder = Recorder(blob, interleave=True)
    interpretation = recorder.record(
        [video, audio],
        encoders={"video1": codec.encode, "audio1": pcm.encode},
        interpretation_name="figure2",
        encoding_labels={"video1": "YUV 8:2:2, JPEG", "audio1": "PCM"},
    )

    video_sequence = interpretation.sequence("video1")
    audio_sequence = interpretation.sequence("audio1")
    video_bytes = video_sequence.total_size()
    pixels = width * height * frame_count
    audio_bytes = audio_sequence.total_size()
    return Figure2Capture(
        interpretation=interpretation,
        video_codec=codec,
        frame_count=frame_count,
        width=width,
        height=height,
        measured_video_bpp=video_bytes * 8 / pixels,
        measured_video_rate=video_bytes / seconds,
        measured_audio_rate=audio_bytes / seconds,
    )


# -- Figure 4: the composed multimedia object ------------------------------------


@dataclass
class Figure4Production:
    """All objects of the Figure 4 instance diagram."""

    video1: object
    video2: object
    audio1: object
    audio2: object
    cut1: object
    cut2: object
    fade: object
    video3: object
    multimedia: MultimediaObject
    editor: MediaEditor


def figure4_production(width: int = 120, height: int = 90,
                       fps: int = 25, scale: float = 0.2) -> Figure4Production:
    """Rebuild the paper's Figure 4 example at ``scale`` of its timing.

    The paper's timeline: video3 = cut(video1) + 10 s fade + cut(video2)
    spanning 0:00-2:10; audio1 (music) spans the whole presentation,
    audio2 (narration) starts at 1:00. ``scale`` shrinks all durations
    (0.2 -> 26 s total) so real frames are encodable in benchmarks; the
    structure and relative proportions are exact.
    """
    # Paper timings (seconds), scaled.
    fade_seconds = 10 * scale
    cut1_seconds = 60 * scale   # video before the fade: 0:00-1:00
    cut2_seconds = 60 * scale   # video after the fade: 1:10-2:10
    fade_ticks = max(2, int(round(fade_seconds * fps)))
    cut1_ticks = int(round(cut1_seconds * fps))
    cut2_ticks = int(round(cut2_seconds * fps))

    # "The two video sequences result from a single capture operation" —
    # two shots; cut1 takes the head of shot 1, the fade bridges the
    # shots, cut2 takes the tail of shot 2.
    shot1 = frames.scene(width, height, cut1_ticks + fade_ticks, "orbit")
    shot2 = frames.scene(width, height, cut2_ticks + fade_ticks, "cut")
    video1 = video_object(shot1, "video1")
    video2 = video_object(shot2, "video2")

    total_seconds = cut1_seconds + fade_seconds + cut2_seconds
    music = signals.mix(
        signals.sine(220, total_seconds, 8000) * 0.4,
        signals.sine(330, total_seconds, 8000) * 0.2,
    )
    narration_seconds = total_seconds - cut1_seconds
    narration = signals.chirp(200, 400, narration_seconds, 8000) * 0.5
    audio1 = audio_object(music, "audio1", sample_rate=8000, block_samples=320)
    audio2 = audio_object(narration, "audio2", sample_rate=8000, block_samples=320)

    editor = MediaEditor()
    cut1 = editor.cut(video1, 0, cut1_ticks, name="videoc1")
    cut2 = editor.cut(video2, fade_ticks, fade_ticks + cut2_ticks, name="videoc2")
    fade = editor.transition(
        video1, video2, fade_ticks, kind="fade",
        a_start=cut1_ticks, b_start=0, name="videoF",
    )
    video3 = editor.concat(cut1, fade, cut2, name="video3")

    multimedia = MultimediaObject("m")
    multimedia.add_temporal(video3, at=0, label="video3")
    multimedia.add_temporal(audio1, at=0, label="audio1")
    multimedia.add_temporal(audio2, at=Rational.from_float(cut1_seconds),
                            label="audio2")

    return Figure4Production(
        video1=video1, video2=video2, audio1=audio1, audio2=audio2,
        cut1=cut1, cut2=cut2, fade=fade, video3=video3,
        multimedia=multimedia, editor=editor,
    )


# -- §1.2: the multilingual movie ---------------------------------------------------


def multilingual_movie(db=None, seconds: float = 2.0, fps: int = 25,
                       width: int = 120, height: int = 90):
    """A movie with audio tracks in several languages, cataloged.

    Returns ``(db, movie)`` where the movie's audio components carry
    ``language`` attributes — the workload for the §1.2 track-selection
    query.
    """
    from repro.query.database import MediaDatabase

    db = db or MediaDatabase("movies")
    frame_count = int(round(seconds * fps))
    video = video_object(
        frames.scene(width, height, frame_count, "pan"), "feature-video"
    )
    db.add_object(video, title="The Timed Stream", role="picture")

    movie = MultimediaObject("feature")
    movie.add_temporal(video, at=0, label="picture")
    for language, base in (("en", 440), ("fr", 330), ("de", 550)):
        track = audio_object(
            signals.sine(base, seconds, 8000) * 0.5,
            f"feature-audio-{language}", sample_rate=8000, block_samples=320,
        )
        db.add_object(track, title="The Timed Stream", role="soundtrack",
                      language=language)
        movie.add_temporal(track, at=0, label=f"audio-{language}")
    db.add_multimedia(movie)
    return db, movie
