"""Regenerate the paper's figures and tables in one command.

Usage::

    python -m repro.bench.reproduce [--fast]

Prints every reproduced artifact — Figure 1's categories, Figure 2's
arithmetic and measured pipeline, Table 1, Figure 3's derivation
economics, Figure 4's timeline, Figure 5's layer stack — without pytest.
(The benchmark suite under ``benchmarks/`` measures the same artifacts
with timing; this module is the quick, human-facing pass.)
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import format_bytes, format_rate, table_text
from repro.bench.workloads import (
    figure1_streams,
    figure2_capture,
    figure2_paper_arithmetic,
    figure4_production,
)
from repro.core.derivation import derivation_registry
from repro.edit import MediaEditor  # noqa: F401 - registers derivations
from repro.media import synthesize_score  # noqa: F401 - registers derivations


def figure1_table() -> str:
    streams = figure1_streams()
    rows = [
        (name, len(stream), stream.category_label())
        for name, stream in streams.items()
    ]
    return table_text(
        ("figure row", "elements", "classified as"), rows,
        title="Figure 1 — categories of timed streams",
    )


def figure2_tables(fast: bool) -> str:
    arithmetic = figure2_paper_arithmetic()
    rows = [
        ("raw 640x480x24 @ 25 fps", "~22 MByte/sec",
         format_rate(arithmetic.raw_video_rate)),
        ("JPEG @ 0.5 bpp", "roughly 0.5 MByte/sec",
         format_rate(arithmetic.compressed_video_rate)),
        ("CD stereo audio", "172 kbyte/sec",
         format_rate(arithmetic.audio_data_rate)),
        ("sample pairs per frame", "1764", arithmetic.samples_per_frame),
    ]
    first = table_text(
        ("quantity", "paper", "reproduced"), rows,
        title="Figure 2 / §4.1 — data-rate arithmetic",
    )

    size = (160, 120) if fast else (640, 480)
    capture = figure2_capture(width=size[0], height=size[1], seconds=0.5)
    video = capture.interpretation.sequence("video1")
    audio = capture.interpretation.sequence("audio1")
    rows = [
        ("video bits/pixel", f"{capture.measured_video_bpp:.2f}"),
        ("audio data rate", format_rate(capture.measured_audio_rate)),
        ("video table", f"video1{video.table_columns()}"),
        ("audio table", f"audio1{audio.table_columns()}"),
        ("BLOB coverage", f"{capture.interpretation.coverage():.0%}"),
    ]
    second = table_text(
        ("measured quantity", f"value ({size[0]}x{size[1]}, 0.5 s)"), rows,
        title="Figure 2 — the pipeline actually run",
    )
    return first + "\n\n" + second


def table1_table() -> str:
    wanted = ("color-separation", "audio-normalization", "video-edit",
              "video-transition", "midi-synthesis")
    rows = [
        row for row in derivation_registry.table() if row[0] in wanted
    ]
    return table_text(
        ("derivation", "argument type(s)", "result type", "category"), rows,
        title="Table 1 — examples of derivation",
    )


def figure4_tables(fast: bool) -> str:
    scale = 0.05 if fast else 0.2
    production = figure4_production(width=64, height=48, scale=scale)
    diagram = production.multimedia.timeline_diagram(width=48)
    steps = "\n".join(
        f"  {step}" for step in production.editor.steps(production.video3)
    )
    chain = production.editor.total_derivation_bytes(production.video3)
    expanded = production.video3.expand().stream().total_size()
    economics = (
        f"derivation chain {format_bytes(chain)} vs expanded "
        f"{format_bytes(expanded)} ({expanded // chain}x)"
    )
    return (
        f"Figure 4 — the composed multimedia object (scale {scale})\n\n"
        f"{diagram}\n\nproduction steps:\n{steps}\n\n{economics}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.reproduce",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("--fast", action="store_true",
                        help="smaller media (quicker, same structures)")
    args = parser.parse_args(argv)

    sections = [
        figure1_table(),
        figure2_tables(args.fast),
        table1_table(),
        figure4_tables(args.fast),
    ]
    print(("\n\n" + "=" * 70 + "\n\n").join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
