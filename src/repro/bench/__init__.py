"""Shared benchmark utilities: reporting and workload builders.

The workload builders reconstruct the paper's worked examples (Figures
1-5, Table 1) at laptop scale; benchmarks and examples share them so the
same structures appear everywhere.
"""

from repro.bench.reporting import format_bytes, format_rate, print_table, table_text
from repro.bench.workloads import (
    figure1_streams,
    figure2_capture,
    figure2_paper_arithmetic,
    figure4_production,
    multilingual_movie,
)

__all__ = [
    "format_bytes",
    "format_rate",
    "print_table",
    "table_text",
    "figure1_streams",
    "figure2_capture",
    "figure2_paper_arithmetic",
    "figure4_production",
    "multilingual_movie",
]
