"""Animation as movement specifications: non-continuous streams.

"Consider animation represented by sequences of elements specifying
movement. At times when the animated object is at rest there are no
associated media elements." (§3.3)

An :class:`AnimationScene` holds sprites and movement operations; its
timed stream has elements only where something happens, so a scene with
rests is non-continuous. Rendering the scene to video frames is a
type-changing derivation (:mod:`repro.media.renderer`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.streams import TimedStream, TimedTuple
from repro.errors import MediaModelError


@dataclass(frozen=True, slots=True)
class Sprite:
    """A colored rectangle actor."""

    name: str
    width: int
    height: int
    color: tuple[int, int, int]

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise MediaModelError("sprite dimensions must be positive")


@dataclass(frozen=True, slots=True)
class AnimationOp:
    """One animation element: an operation over a tick span.

    ``op`` is one of ``"appear"``, ``"move"``, ``"disappear"``,
    ``"recolor"``; ``start``/``duration`` are in frame ticks. ``move``
    interpolates linearly from the sprite's position at ``start`` to
    ``(x, y)`` across the span.
    """

    sprite: str
    op: str
    start: int
    duration: int
    x: int = 0
    y: int = 0
    color: tuple[int, int, int] | None = None

    def __post_init__(self) -> None:
        if self.op not in ("appear", "move", "disappear", "recolor"):
            raise MediaModelError(f"unknown animation op {self.op!r}")
        if self.start < 0 or self.duration < 0:
            raise MediaModelError("op timing must be non-negative")

    @property
    def end(self) -> int:
        return self.start + self.duration


class AnimationScene:
    """Sprites plus a time-ordered list of operations."""

    def __init__(self, width: int = 160, height: int = 120,
                 background: tuple[int, int, int] = (16, 16, 32)):
        if width < 8 or height < 8:
            raise MediaModelError("scene must be at least 8x8")
        self.width = width
        self.height = height
        self.background = background
        self.sprites: dict[str, Sprite] = {}
        self.ops: list[AnimationOp] = []

    def add_sprite(self, sprite: Sprite) -> Sprite:
        if sprite.name in self.sprites:
            raise MediaModelError(f"sprite {sprite.name!r} already exists")
        self.sprites[sprite.name] = sprite
        return sprite

    def add_op(self, op: AnimationOp) -> AnimationOp:
        if op.sprite not in self.sprites:
            raise MediaModelError(f"unknown sprite {op.sprite!r}")
        self.ops.append(op)
        self.ops.sort(key=lambda o: (o.start, o.sprite))
        return op

    def appear(self, sprite: str, at: int, x: int, y: int) -> AnimationOp:
        return self.add_op(AnimationOp(sprite, "appear", at, 0, x, y))

    def move(self, sprite: str, start: int, duration: int,
             to_x: int, to_y: int) -> AnimationOp:
        return self.add_op(AnimationOp(sprite, "move", start, duration,
                                       to_x, to_y))

    def disappear(self, sprite: str, at: int) -> AnimationOp:
        return self.add_op(AnimationOp(sprite, "disappear", at, 0))

    def recolor(self, sprite: str, at: int,
                color: tuple[int, int, int]) -> AnimationOp:
        return self.add_op(AnimationOp(sprite, "recolor", at, 0, color=color))

    def span_ticks(self) -> int:
        return max((op.end for op in self.ops), default=0)

    def to_stream(self) -> TimedStream:
        """The scene as a (generally non-continuous) timed stream.

        Instant ops (appear/disappear/recolor) have zero duration; moves
        span their interpolation. Rest periods have no elements.
        """
        media_type = media_type_registry.get("animation")
        tuples = []
        for op in self.ops:
            descriptor = media_type.make_element_descriptor(op=op.op)
            element = MediaElement(payload=op, size=24, descriptor=descriptor)
            tuples.append(TimedTuple(element, op.start, op.duration))
        return TimedStream(media_type, tuples, validate_constraints=False)

    def positions_at(self, tick: int) -> dict[str, tuple[int, int, tuple[int, int, int]]]:
        """Visible sprites at ``tick``: name -> (x, y, color).

        Replays operations up to ``tick``; mid-move positions are
        linearly interpolated.
        """
        state: dict[str, dict] = {}
        for op in self.ops:
            if op.start > tick:
                break
            sprite = self.sprites[op.sprite]
            if op.op == "appear":
                state[op.sprite] = {
                    "x": op.x, "y": op.y, "color": sprite.color, "visible": True,
                }
            elif op.op == "disappear":
                if op.sprite in state:
                    state[op.sprite]["visible"] = False
            elif op.op == "recolor":
                if op.sprite in state:
                    state[op.sprite]["color"] = op.color or sprite.color
            elif op.op == "move" and op.sprite in state:
                entry = state[op.sprite]
                if op.duration == 0 or tick >= op.end:
                    entry["x"], entry["y"] = op.x, op.y
                else:
                    progress = (tick - op.start) / op.duration
                    entry["x"] = round(entry["x"] + (op.x - entry["x"]) * progress)
                    entry["y"] = round(entry["y"] + (op.y - entry["y"]) * progress)
        return {
            name: (entry["x"], entry["y"], entry["color"])
            for name, entry in state.items() if entry["visible"]
        }

    def __repr__(self) -> str:
        return (
            f"AnimationScene({self.width}x{self.height}, "
            f"{len(self.sprites)} sprites, {len(self.ops)} ops)"
        )


def demo_scene(width: int = 160, height: int = 120) -> AnimationScene:
    """A bouncing-box scene with a rest period (for non-continuity)."""
    scene = AnimationScene(width, height)
    scene.add_sprite(Sprite("box", 20, 20, (255, 80, 80)))
    scene.add_sprite(Sprite("dot", 10, 10, (80, 255, 80)))
    scene.appear("box", 0, 10, 10)
    scene.move("box", 0, 25, width - 30, 10)
    scene.move("box", 25, 25, width - 30, height - 30)
    # rest: ticks 50-74 have no elements
    scene.appear("dot", 75, width // 2, 10)
    scene.move("dot", 75, 25, width // 2, height - 20)
    scene.disappear("dot", 100)
    scene.move("box", 100, 25, 10, 10)
    return scene
