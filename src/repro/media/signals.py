"""Audio signal generation.

Deterministic, seedable signal generators standing in for microphones and
tapes. All functions return float64 arrays in [-1, 1]; stereo signals
have shape ``(n, 2)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MediaModelError


def _sample_count(duration: float, sample_rate: int) -> int:
    if duration < 0:
        raise MediaModelError(f"duration must be non-negative, got {duration}")
    if sample_rate <= 0:
        raise MediaModelError(f"sample rate must be positive, got {sample_rate}")
    return int(round(duration * sample_rate))


def sine(frequency: float, duration: float, sample_rate: int = 44100,
         amplitude: float = 0.8, phase: float = 0.0) -> np.ndarray:
    """A sine tone."""
    n = _sample_count(duration, sample_rate)
    t = np.arange(n) / sample_rate
    return amplitude * np.sin(2 * np.pi * frequency * t + phase)


def chirp(start_hz: float, end_hz: float, duration: float,
          sample_rate: int = 44100, amplitude: float = 0.8) -> np.ndarray:
    """A linear frequency sweep."""
    n = _sample_count(duration, sample_rate)
    t = np.arange(n) / sample_rate
    sweep = start_hz * t + (end_hz - start_hz) * t * t / (2 * max(duration, 1e-9))
    return amplitude * np.sin(2 * np.pi * sweep)


def noise(duration: float, sample_rate: int = 44100, amplitude: float = 0.5,
          seed: int = 0) -> np.ndarray:
    """Seeded white noise."""
    n = _sample_count(duration, sample_rate)
    rng = np.random.default_rng(seed)
    return amplitude * rng.uniform(-1.0, 1.0, n)


def silence(duration: float, sample_rate: int = 44100) -> np.ndarray:
    """A run of zeros."""
    return np.zeros(_sample_count(duration, sample_rate))


def adsr_envelope(n: int, attack: float = 0.05, decay: float = 0.1,
                  sustain: float = 0.7, release: float = 0.2) -> np.ndarray:
    """An attack/decay/sustain/release envelope over ``n`` samples.

    ``attack``/``decay``/``release`` are fractions of ``n``; ``sustain``
    is the plateau level in [0, 1].
    """
    if n <= 0:
        return np.zeros(0)
    na = max(1, int(n * attack))
    nd = max(1, int(n * decay))
    nr = max(1, int(n * release))
    ns = max(0, n - na - nd - nr)
    env = np.concatenate([
        np.linspace(0.0, 1.0, na, endpoint=False),
        np.linspace(1.0, sustain, nd, endpoint=False),
        np.full(ns, sustain),
        np.linspace(sustain, 0.0, nr),
    ])
    return env[:n] if len(env) >= n else np.pad(env, (0, n - len(env)))


def mix(*signals: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Sum signals of possibly different lengths; optionally renormalize."""
    if not signals:
        raise MediaModelError("mix requires at least one signal")
    length = max(len(s) for s in signals)
    total = np.zeros(length)
    for s in signals:
        total[:len(s)] += s
    if normalize:
        peak = np.abs(total).max()
        if peak > 1.0:
            total /= peak
    return total


def to_stereo(signal: np.ndarray, pan: float = 0.0) -> np.ndarray:
    """Pan a mono signal into stereo; ``pan`` in [-1 (left), 1 (right)]."""
    if signal.ndim == 2:
        return signal
    if not -1.0 <= pan <= 1.0:
        raise MediaModelError(f"pan must be in [-1, 1], got {pan}")
    if pan > 0:
        left, right = signal * (1.0 - pan), signal
    elif pan < 0:
        left, right = signal, signal * (1.0 + pan)
    else:
        left = right = signal
    return np.stack([left, right], axis=-1)


def rms(signal: np.ndarray) -> float:
    """Root-mean-square level."""
    if signal.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.square(signal))))


def peak(signal: np.ndarray) -> float:
    """Peak absolute level."""
    if signal.size == 0:
        return 0.0
    return float(np.abs(signal).max())
