"""Synthetic media: the capture substrate and symbolic media models.

The paper's material came from cameras, tapes and microphones; here,
deterministic generators produce equivalent content:

* :mod:`repro.media.signals` — audio signals (tones, chirps, noise,
  envelopes);
* :mod:`repro.media.frames` — video frames (gradients, moving objects,
  test patterns);
* :mod:`repro.media.music` — a note/score model whose chords overlap and
  whose rests leave gaps (non-continuous streams);
* :mod:`repro.media.animation` — movement specifications (elements only
  while objects move);
* :mod:`repro.media.synthesizer` — music -> audio derivation;
* :mod:`repro.media.renderer` — animation -> video derivation.
"""

from repro.media import animation, frames, music, signals
from repro.media.synthesizer import synthesize_score
from repro.media.renderer import render_animation

__all__ = [
    "animation",
    "frames",
    "music",
    "signals",
    "synthesize_score",
    "render_animation",
]
