"""Note-level music: the paper's non-continuous stream example.

"Another example is a representation for music where media elements
correspond to notes being produced. A chord would then require
overlapping elements." (§3.3) — and rests leave gaps.

A :class:`Score` is a set of :class:`Note` objects with tick timing; it
converts to a timed stream (non-continuous: chords overlap, rests gap),
to MIDI events (event-based), and feeds the synthesizer derivation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.midi import MidiEvent
from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.streams import TimedStream, TimedTuple
from repro.errors import MediaModelError

#: Ticks per quarter note used by the score/MIDI time system (see
#: ``repro.core.time_system.MIDI_TIME``: 1920 ticks/s at 120 bpm = 960 PPQ).
PPQ = 960

_NOTE_NAMES = {"C": 0, "D": 2, "E": 4, "F": 5, "G": 7, "A": 9, "B": 11}


def pitch_from_name(name: str) -> int:
    """MIDI pitch from scientific pitch notation ("A4" = 69, "C#5" = 73)."""
    if not name:
        raise MediaModelError("empty pitch name")
    letter = name[0].upper()
    if letter not in _NOTE_NAMES:
        raise MediaModelError(f"unknown note letter {letter!r}")
    rest = name[1:]
    accidental = 0
    while rest and rest[0] in "#b":
        accidental += 1 if rest[0] == "#" else -1
        rest = rest[1:]
    try:
        octave = int(rest)
    except ValueError:
        raise MediaModelError(f"bad octave in pitch {name!r}") from None
    pitch = (octave + 1) * 12 + _NOTE_NAMES[letter] + accidental
    if not 0 <= pitch < 128:
        raise MediaModelError(f"pitch {name!r} out of MIDI range")
    return pitch


def frequency_of(pitch: int) -> float:
    """Equal-temperament frequency in Hz (A4 = 440)."""
    return 440.0 * 2.0 ** ((pitch - 69) / 12.0)


@dataclass(frozen=True, slots=True)
class Note:
    """One note: the media element of a score stream.

    ``start`` and ``duration`` are in ticks (:data:`PPQ` per quarter).
    """

    pitch: int
    start: int
    duration: int
    velocity: int = 80
    channel: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.pitch < 128:
            raise MediaModelError(f"pitch {self.pitch} out of range")
        if self.start < 0 or self.duration <= 0:
            raise MediaModelError("notes need start >= 0 and duration > 0")
        if not 0 < self.velocity < 128:
            raise MediaModelError(f"velocity {self.velocity} out of range")

    @property
    def end(self) -> int:
        return self.start + self.duration

    @property
    def frequency(self) -> float:
        return frequency_of(self.pitch)


class Score:
    """An ordered collection of notes."""

    def __init__(self, notes: list[Note] | None = None, tempo_bpm: int = 120):
        if tempo_bpm <= 0:
            raise MediaModelError(f"tempo must be positive, got {tempo_bpm}")
        self.tempo_bpm = tempo_bpm
        self.notes: list[Note] = sorted(
            notes or [], key=lambda n: (n.start, n.pitch)
        )

    def add(self, note: Note) -> "Score":
        self.notes.append(note)
        self.notes.sort(key=lambda n: (n.start, n.pitch))
        return self

    def add_melody(self, pitches: list[str | int], start: int = 0,
                   note_ticks: int = PPQ, gap_ticks: int = 0,
                   velocity: int = 80) -> "Score":
        """Append a melody of equal-length notes (with optional rests)."""
        tick = start
        for entry in pitches:
            if entry is None:
                tick += note_ticks + gap_ticks  # an explicit rest
                continue
            pitch = entry if isinstance(entry, int) else pitch_from_name(entry)
            self.add(Note(pitch, tick, note_ticks, velocity))
            tick += note_ticks + gap_ticks
        return self

    def add_chord(self, pitches: list[str | int], start: int,
                  duration: int = PPQ, velocity: int = 80) -> "Score":
        """Add simultaneous notes — overlapping stream elements."""
        for entry in pitches:
            pitch = entry if isinstance(entry, int) else pitch_from_name(entry)
            self.add(Note(pitch, start, duration, velocity))
        return self

    def __len__(self) -> int:
        return len(self.notes)

    def span_ticks(self) -> int:
        return max((n.end for n in self.notes), default=0)

    def seconds_per_tick(self) -> float:
        """Wall seconds per tick at this tempo."""
        return 60.0 / (self.tempo_bpm * PPQ)

    def duration_seconds(self) -> float:
        return self.span_ticks() * self.seconds_per_tick()

    # -- model conversions ------------------------------------------------------

    def to_stream(self) -> TimedStream:
        """A non-continuous timed stream of notes (score-music type)."""
        media_type = media_type_registry.get("score-music")
        tuples = []
        for note in self.notes:
            descriptor = media_type.make_element_descriptor(
                pitch=note.pitch, velocity=note.velocity
            )
            element = MediaElement(payload=note, size=8, descriptor=descriptor)
            tuples.append(TimedTuple(element, note.start, note.duration))
        return TimedStream(media_type, tuples, validate_constraints=False)

    def to_midi_events(self) -> list[MidiEvent]:
        """Note on/off event pairs, time-ordered (event-based stream)."""
        events = []
        for note in self.notes:
            events.append(MidiEvent.note_on(
                note.start, note.pitch, note.velocity, note.channel
            ))
            events.append(MidiEvent.note_off(note.end, note.pitch, note.channel))
        events.sort(key=lambda e: (e.tick, e.status, e.data1))
        return events

    def to_event_stream(self) -> TimedStream:
        """An event-based timed stream of MIDI events (midi-music type)."""
        media_type = media_type_registry.get("midi-music")
        tuples = []
        for event in self.to_midi_events():
            descriptor = media_type.make_element_descriptor(
                status=event.status | event.channel, channel=event.channel
            )
            element = MediaElement(
                payload=event, size=event.encoded_size(), descriptor=descriptor
            )
            tuples.append(TimedTuple(element, event.tick, 0))
        return TimedStream(media_type, tuples, validate_constraints=False)

    @classmethod
    def from_midi_events(cls, events: list[MidiEvent],
                         tempo_bpm: int = 120) -> "Score":
        """Pair note-on/note-off events back into notes."""
        open_notes: dict[tuple[int, int], MidiEvent] = {}
        notes = []
        for event in sorted(events, key=lambda e: e.tick):
            key = (event.channel, event.data1)
            if event.is_note_on:
                open_notes[key] = event
            elif event.is_note_off and key in open_notes:
                start_event = open_notes.pop(key)
                duration = event.tick - start_event.tick
                if duration > 0:
                    notes.append(Note(
                        start_event.data1, start_event.tick, duration,
                        start_event.data2 or 64, start_event.channel,
                    ))
        return cls(notes, tempo_bpm)

    def transpose(self, semitones: int) -> "Score":
        """A new score shifted in pitch (a content-changing derivation)."""
        return Score(
            [Note(n.pitch + semitones, n.start, n.duration, n.velocity, n.channel)
             for n in self.notes],
            self.tempo_bpm,
        )

    def __repr__(self) -> str:
        return (
            f"Score({len(self.notes)} notes, {self.tempo_bpm} bpm, "
            f"{self.duration_seconds():.2f}s)"
        )


def demo_score() -> Score:
    """A small melody + chords score used by examples and tests."""
    score = Score(tempo_bpm=120)
    score.add_melody(["C4", "E4", "G4", None, "A4", "G4"],
                     note_ticks=PPQ // 2, gap_ticks=0)
    score.add_chord(["C3", "E3", "G3"], start=3 * PPQ, duration=PPQ)
    score.add_chord(["F3", "A3", "C4"], start=4 * PPQ, duration=PPQ)
    return score
