"""Builders turning raw content into media objects.

The bridge between the synthetic capture substrate (signals, frames,
scores, scenes) and the data model: each builder packages content as a
:class:`~repro.core.media_object.StreamMediaObject` (or still object)
with a validated media descriptor — the "capture" step of the paper's
production pipeline, without the camera.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.pcm import quantize_samples
from repro.core.elements import MediaElement
from repro.core.media_object import StillMediaObject, StreamMediaObject
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.streams import TimedStream, TimedTuple
from repro.core.time_system import DiscreteTimeSystem
from repro.errors import MediaModelError
from repro.media.animation import AnimationScene
from repro.media.music import Score

#: Default block size for audio elements: 1/25 s of CD audio, the
#: paper's "1764 sample pairs" interleaving unit.
DEFAULT_BLOCK_SAMPLES = 1764


def video_object(
    frames: list[np.ndarray],
    name: str,
    media_type_name: str = "pal-video",
    quality_factor: str = "production quality",
    encoding: str = "RGB raw",
) -> StreamMediaObject:
    """Wrap raw RGB frames as a video media object.

    Elements carry the frame arrays; sizes are raw byte sizes. Encoding
    to a compressed representation is a job for the recorder
    (:mod:`repro.engine.recorder`), which re-sizes elements as it writes
    them into a BLOB.
    """
    if not frames:
        raise MediaModelError("video objects need at least one frame")
    media_type = media_type_registry.get(media_type_name)
    height, width = frames[0].shape[:2]
    for i, frame in enumerate(frames):
        if frame.shape != frames[0].shape:
            raise MediaModelError(
                f"frame {i} shape {frame.shape} differs from {frames[0].shape}"
            )
    system = media_type.time_system
    descriptor = media_type.make_media_descriptor(
        frame_rate=system.frequency,
        frame_width=width,
        frame_height=height,
        frame_depth=24,
        color_model="RGB",
        encoding=encoding,
        quality_factor=quality_factor,
        duration=system.to_continuous(len(frames)),
    )
    elements = [
        MediaElement(payload=frame, size=frame.nbytes) for frame in frames
    ]
    stream = TimedStream.from_elements(media_type, elements)
    return StreamMediaObject(media_type, descriptor, stream, name=name)


def audio_object(
    signal: np.ndarray,
    name: str,
    sample_rate: int = 44100,
    sample_size: int = 16,
    block_samples: int = DEFAULT_BLOCK_SAMPLES,
    quality_factor: str = "CD quality",
) -> StreamMediaObject:
    """Wrap a float signal as a block-audio media object.

    The signal is quantized to integer samples and split into blocks of
    ``block_samples``; each block is one stream element whose duration in
    ticks equals its sample count, so the stream is continuous and (except
    for a short final block) uniform.
    """
    samples = quantize_samples(np.asarray(signal), sample_size)
    if samples.ndim == 1:
        samples = samples[:, np.newaxis]
    channels = samples.shape[1]
    media_type = media_type_registry.get("block-audio")
    system = DiscreteTimeSystem(Rational(sample_rate), f"AUDIO-{sample_rate}")
    descriptor = media_type.make_media_descriptor(
        sample_rate=sample_rate,
        sample_size=sample_size,
        channels=channels,
        encoding="PCM",
        block_samples=block_samples,
        quality_factor=quality_factor,
        duration=system.to_continuous(len(samples)),
    )
    tuples = []
    bytes_per_sample = sample_size // 8 * channels
    for begin in range(0, len(samples), block_samples):
        block = samples[begin:begin + block_samples]
        element = MediaElement(payload=block, size=len(block) * bytes_per_sample)
        tuples.append(TimedTuple(element, begin, len(block)))
    stream = TimedStream(media_type, tuples, time_system=system)
    return StreamMediaObject(media_type, descriptor, stream, name=name)


def image_object(pixels: np.ndarray, name: str,
                 color_model: str = "RGB") -> StillMediaObject:
    """Wrap an image array as a still media object."""
    if pixels.ndim != 3:
        raise MediaModelError(f"expected (h, w, c) pixels, got {pixels.shape}")
    media_type = media_type_registry.get("image")
    height, width, channels = pixels.shape
    descriptor = media_type.make_media_descriptor(
        width=width,
        height=height,
        depth=8 * channels if channels != 3 else 24,
        color_model=color_model,
    )
    return StillMediaObject(media_type, descriptor, pixels, name=name)


def score_object(score: Score, name: str) -> StreamMediaObject:
    """Wrap a score as a music media object (non-continuous stream)."""
    media_type = media_type_registry.get("score-music")
    stream = score.to_stream()
    descriptor = media_type.make_media_descriptor(
        tempo_bpm=score.tempo_bpm,
        duration=Rational.from_float(score.duration_seconds()),
    )
    obj = StreamMediaObject(media_type, descriptor, stream, name=name)
    obj.score = score  # expose the symbolic form to derivations
    return obj


def midi_object(score: Score, name: str) -> StreamMediaObject:
    """Wrap a score's events as a MIDI media object (event-based stream)."""
    media_type = media_type_registry.get("midi-music")
    stream = score.to_event_stream()
    descriptor = media_type.make_media_descriptor(
        division=960,
        tempo_bpm=score.tempo_bpm,
        duration=Rational.from_float(score.duration_seconds()),
    )
    obj = StreamMediaObject(media_type, descriptor, stream, name=name)
    obj.score = score
    return obj


def animation_object(scene: AnimationScene, name: str) -> StreamMediaObject:
    """Wrap an animation scene as a media object (non-continuous stream)."""
    media_type = media_type_registry.get("animation")
    stream = scene.to_stream()
    system = media_type.time_system
    descriptor = media_type.make_media_descriptor(
        frame_width=scene.width,
        frame_height=scene.height,
        duration=system.to_continuous(scene.span_ticks()),
    )
    obj = StreamMediaObject(media_type, descriptor, stream, name=name)
    obj.scene = scene
    return obj


def signal_of(audio_obj) -> np.ndarray:
    """Reassemble a block-audio object's integer sample array."""
    blocks = [t.element.payload for t in audio_obj.stream()]
    if not blocks:
        return np.empty((0, 1), dtype=np.int16)
    return np.concatenate(blocks)


def frames_of(video_obj) -> list[np.ndarray]:
    """Collect a video object's frame arrays in display order."""
    return [t.element.payload for t in video_obj.stream()]
