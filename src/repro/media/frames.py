"""Synthetic video frame generation.

Deterministic frame generators standing in for cameras: gradients with
moving objects (enough temporal coherence that inter-frame codecs win),
SMPTE-ish color bars, and seeded texture. All functions return
``(height, width, 3)`` uint8 RGB arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MediaModelError


def gradient_frame(width: int = 160, height: int = 120,
                   phase: float = 0.0) -> np.ndarray:
    """A smooth two-axis gradient, rotated by ``phase`` for animation."""
    _check_size(width, height)
    x = np.linspace(0.0, 1.0, width)
    y = np.linspace(0.0, 1.0, height)
    base = np.add.outer(y, x) / 2.0
    r = (np.sin(2 * np.pi * (base + phase)) + 1.0) / 2.0
    g = base
    b = 1.0 - base
    frame = np.stack([r, g, b], axis=-1)
    return (frame * 255).astype(np.uint8)


def color_bars(width: int = 160, height: int = 120) -> np.ndarray:
    """Eight vertical color bars (a test pattern)."""
    _check_size(width, height)
    colors = np.array([
        [255, 255, 255], [255, 255, 0], [0, 255, 255], [0, 255, 0],
        [255, 0, 255], [255, 0, 0], [0, 0, 255], [0, 0, 0],
    ], dtype=np.uint8)
    frame = np.zeros((height, width, 3), dtype=np.uint8)
    bar_width = max(1, width // len(colors))
    for i, color in enumerate(colors):
        begin = i * bar_width
        end = width if i == len(colors) - 1 else (i + 1) * bar_width
        frame[:, begin:end] = color
    return frame


def texture_frame(width: int = 160, height: int = 120, seed: int = 0,
                  smoothness: int = 4) -> np.ndarray:
    """Seeded smooth texture: low-resolution noise upsampled.

    ``smoothness`` is the upsampling factor; larger is smoother (and
    compresses better).
    """
    _check_size(width, height)
    if smoothness < 1:
        raise MediaModelError("smoothness must be >= 1")
    rng = np.random.default_rng(seed)
    small = rng.integers(
        0, 256,
        ((height + smoothness - 1) // smoothness,
         (width + smoothness - 1) // smoothness, 3),
    ).astype(np.float32)
    up = np.repeat(np.repeat(small, smoothness, axis=0), smoothness, axis=1)
    return up[:height, :width].astype(np.uint8)


def moving_box_frame(width: int = 160, height: int = 120, t: float = 0.0,
                     box: int = 24, background: np.ndarray | None = None,
                     color: tuple[int, int, int] = (255, 64, 64)) -> np.ndarray:
    """A colored box orbiting over a background; ``t`` in [0, 1) is phase.

    Consecutive phases produce consecutive "shots" with small differences
    — the workload for P/B-frame coding gains.
    """
    _check_size(width, height)
    frame = (
        background.copy() if background is not None
        else gradient_frame(width, height)
    )
    cx = int((width - box) * (0.5 + 0.4 * np.cos(2 * np.pi * t)))
    cy = int((height - box) * (0.5 + 0.4 * np.sin(2 * np.pi * t)))
    frame[cy:cy + box, cx:cx + box] = np.array(color, dtype=np.uint8)
    return frame


def scene(width: int, height: int, frame_count: int, kind: str = "orbit",
          seed: int = 0) -> list[np.ndarray]:
    """A coherent sequence of frames — one "shot" of synthetic footage.

    Kinds: ``"orbit"`` (box over a gradient), ``"pan"`` (gradient phase
    drift), ``"texture"`` (static texture with an orbiting box),
    ``"cut"`` (texture, different seed space — for scene-change tests).
    """
    if frame_count < 0:
        raise MediaModelError("frame_count must be non-negative")
    if kind == "orbit":
        background = gradient_frame(width, height)
        return [
            moving_box_frame(width, height, t=i / max(frame_count, 1),
                             background=background)
            for i in range(frame_count)
        ]
    if kind == "pan":
        return [
            gradient_frame(width, height, phase=i * 0.02)
            for i in range(frame_count)
        ]
    if kind == "texture":
        background = texture_frame(width, height, seed=seed)
        return [
            moving_box_frame(width, height, t=i / max(frame_count, 1),
                             background=background, color=(64, 64, 255))
            for i in range(frame_count)
        ]
    if kind == "cut":
        background = texture_frame(width, height, seed=seed + 1000,
                                   smoothness=8)
        return [
            moving_box_frame(width, height, t=0.5 + i / max(frame_count, 1),
                             background=background, color=(64, 255, 64))
            for i in range(frame_count)
        ]
    raise MediaModelError(f"unknown scene kind {kind!r}")


def frame_bytes(width: int, height: int, depth: int = 24) -> int:
    """Raw frame size in bytes (Figure 2: 640x480x24bpp = 921600)."""
    return width * height * depth // 8


def _check_size(width: int, height: int) -> None:
    if width < 8 or height < 8:
        raise MediaModelError(
            f"frames must be at least 8x8, got {width}x{height}"
        )
