"""Animation rendering: the second type-changing derivation.

"Similarly video sequences are derived (via rendering) from
representations of animation." (§6) The renderer replays an
:class:`~repro.media.animation.AnimationScene`'s operations frame by
frame and rasterizes sprites over the background, producing RGB frames.

Registered as ``"animation-render"`` in the derivation registry.
"""

from __future__ import annotations

import numpy as np

from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    derivation_registry,
)
from repro.core.media_types import MediaKind
from repro.errors import DerivationError
from repro.media.animation import AnimationScene


def render_frame(scene: AnimationScene, tick: int) -> np.ndarray:
    """Rasterize the scene state at ``tick`` into an RGB frame."""
    frame = np.empty((scene.height, scene.width, 3), dtype=np.uint8)
    frame[:] = np.array(scene.background, dtype=np.uint8)
    for name, (x, y, color) in sorted(scene.positions_at(tick).items()):
        sprite = scene.sprites[name]
        x0 = max(0, min(scene.width, x))
        y0 = max(0, min(scene.height, y))
        x1 = max(0, min(scene.width, x + sprite.width))
        y1 = max(0, min(scene.height, y + sprite.height))
        frame[y0:y1, x0:x1] = np.array(color, dtype=np.uint8)
    return frame


def render_animation(scene: AnimationScene,
                     frame_count: int | None = None) -> list[np.ndarray]:
    """Render the whole scene to a frame sequence (one frame per tick)."""
    count = frame_count if frame_count is not None else scene.span_ticks() + 1
    if count < 0:
        raise DerivationError("frame_count must be non-negative")
    return [render_frame(scene, tick) for tick in range(count)]


def _expand_animation_render(inputs, params):
    from repro.media.objects import video_object

    source = inputs[0]
    scene = getattr(source, "scene", None)
    if scene is None:
        raise DerivationError(
            f"{source.name} carries no animation scene to render"
        )
    frames = render_animation(scene, params.get("frame_count"))
    return video_object(
        frames, f"{source.name}-video",
        media_type_name=params.get("media_type", "pal-video"),
        quality_factor=params.get("quality_factor", "production quality"),
    )


def _describe_animation_render(inputs, params):
    from repro.core.media_types import media_type_registry

    source = inputs[0]
    media_type = media_type_registry.get(params.get("media_type", "pal-video"))
    system = media_type.time_system
    frame_count = params.get("frame_count")
    if frame_count is None:
        scene = getattr(source, "scene", None)
        frame_count = (scene.span_ticks() + 1) if scene else 0
    descriptor = media_type.make_media_descriptor(
        frame_rate=system.frequency,
        frame_width=source.descriptor["frame_width"],
        frame_height=source.descriptor["frame_height"],
        frame_depth=24,
        color_model="RGB",
        encoding="RGB raw",
        quality_factor=params.get("quality_factor", "production quality"),
        duration=system.to_continuous(frame_count),
    )
    return media_type, descriptor


ANIMATION_RENDER = derivation_registry.register(Derivation(
    name="animation-render",
    category=DerivationCategory.CHANGE_OF_TYPE,
    input_kinds=(MediaKind.ANIMATION,),
    result_kind=MediaKind.VIDEO,
    expand=_expand_animation_render,
    describe=_describe_animation_render,
    optional_params=("frame_count", "media_type", "quality_factor"),
    doc="§6: video derived via rendering from representations of animation.",
))
