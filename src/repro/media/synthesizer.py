"""MIDI/score synthesis: the paper's type-changing derivation.

"Consider, for example, the synthesis of an audio object from a MIDI
object ... Here the type changes from music to audio." (§4.2) —
Table 1's "MIDI synthesis" row, with parameters "tempo, MIDI channel
mappings and instrument parameters".

The synthesizer is additive: each note becomes a waveform at its
equal-temperament frequency shaped by an ADSR envelope; simple instrument
presets differ in harmonic content. The derivation is registered as
``"midi-synthesis"`` in the global derivation registry.
"""

from __future__ import annotations

import numpy as np

from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    derivation_registry,
)
from repro.core.media_types import MediaKind
from repro.core.rational import Rational
from repro.errors import DerivationError
from repro.media.music import Score
from repro.media.signals import adsr_envelope

#: Instrument presets: relative amplitudes of the first harmonics.
INSTRUMENTS = {
    "sine": (1.0,),
    "organ": (1.0, 0.5, 0.25, 0.125),
    "piano": (1.0, 0.4, 0.2, 0.1, 0.05),
    "square": (1.0, 0.0, 0.33, 0.0, 0.2),
}


def synthesize_note(frequency: float, duration_seconds: float,
                    sample_rate: int = 44100, velocity: int = 80,
                    instrument: str = "piano") -> np.ndarray:
    """Render one note to a mono float signal."""
    try:
        harmonics = INSTRUMENTS[instrument]
    except KeyError:
        raise DerivationError(
            f"unknown instrument {instrument!r}; known: {sorted(INSTRUMENTS)}"
        ) from None
    n = int(round(duration_seconds * sample_rate))
    if n == 0:
        return np.zeros(0)
    t = np.arange(n) / sample_rate
    wave = np.zeros(n)
    for k, amplitude in enumerate(harmonics, start=1):
        if amplitude:
            wave += amplitude * np.sin(2 * np.pi * frequency * k * t)
    wave /= sum(a for a in harmonics if a)
    return wave * adsr_envelope(n) * (velocity / 127.0)


def synthesize_score(score: Score, sample_rate: int = 44100,
                     tempo_bpm: int | None = None,
                     instrument: str = "piano") -> np.ndarray:
    """Render a whole score to a mono float signal in [-1, 1]."""
    tempo = tempo_bpm or score.tempo_bpm
    seconds_per_tick = 60.0 / (tempo * 960)
    total_seconds = score.span_ticks() * seconds_per_tick
    total = np.zeros(int(round(total_seconds * sample_rate)) + 1)
    for note in score.notes:
        rendered = synthesize_note(
            note.frequency, note.duration * seconds_per_tick,
            sample_rate, note.velocity, instrument,
        )
        begin = int(round(note.start * seconds_per_tick * sample_rate))
        end = min(begin + len(rendered), len(total))
        total[begin:end] += rendered[:end - begin]
    peak_level = np.abs(total).max()
    if peak_level > 1.0:
        total /= peak_level
    return total


def _expand_midi_synthesis(inputs, params):
    from repro.media.objects import audio_object

    source = inputs[0]
    score = getattr(source, "score", None)
    if score is None:
        # Reconstruct the symbolic score from the event stream.
        events = [t.element.payload for t in source.stream()]
        score = Score.from_midi_events(events)
    sample_rate = params.get("sample_rate", 44100)
    signal = synthesize_score(
        score,
        sample_rate=sample_rate,
        tempo_bpm=params.get("tempo_bpm"),
        instrument=params.get("instrument", "piano"),
    )
    return audio_object(
        signal, f"{source.name}-audio", sample_rate=sample_rate,
        quality_factor="CD quality",
    )


def _describe_midi_synthesis(inputs, params):
    from repro.core.media_types import media_type_registry

    source = inputs[0]
    media_type = media_type_registry.get("block-audio")
    sample_rate = params.get("sample_rate", 44100)
    tempo = params.get("tempo_bpm")
    duration = source.descriptor.get("duration", Rational(0))
    if tempo:
        source_tempo = source.descriptor.get("tempo_bpm", tempo)
        duration = duration * Rational(source_tempo) / Rational(tempo)
    descriptor = media_type.make_media_descriptor(
        sample_rate=sample_rate,
        sample_size=16,
        channels=1,
        encoding="PCM",
        quality_factor="CD quality",
        duration=duration,
    )
    return media_type, descriptor


MIDI_SYNTHESIS = derivation_registry.register(Derivation(
    name="midi-synthesis",
    category=DerivationCategory.CHANGE_OF_TYPE,
    input_kinds=(MediaKind.MUSIC,),
    result_kind=MediaKind.AUDIO,
    expand=_expand_midi_synthesis,
    describe=_describe_midi_synthesis,
    optional_params=("sample_rate", "tempo_bpm", "instrument"),
    doc="Table 1: music (MIDI) -> audio; parameters are tempo and "
        "instrument mapping.",
))
