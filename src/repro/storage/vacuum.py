"""BLOB compaction: reclaim bytes no interpretation references.

§4.1's view mechanics (restricting and editing interpretations) leave
BLOB regions that no surviving placement row references — cut footage,
dropped tracks, CD-I padding. Compaction is the storage manager's answer:
copy only the referenced spans into a new BLOB and rewrite every
placement table to the new offsets.

The operation preserves the paper's safety rule: nothing is modified in
place. The original BLOB and interpretations stay intact; the caller
decides when to drop them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blob.blob import Blob, MemoryBlob
from repro.core.interpretation import (
    Interpretation,
    PlacementEntry,
)
from repro.errors import StorageError


@dataclass
class VacuumStats:
    """Outcome of one compaction."""

    original_bytes: int
    compacted_bytes: int
    referenced_bytes: int
    sequences: int

    @property
    def reclaimed_bytes(self) -> int:
        return self.original_bytes - self.compacted_bytes

    @property
    def reclaimed_fraction(self) -> float:
        if not self.original_bytes:
            return 0.0
        return self.reclaimed_bytes / self.original_bytes


def referenced_spans(
    interpretations: list[Interpretation],
) -> list[tuple[int, int]]:
    """Merged, sorted ``[begin, end)`` spans referenced by any placement."""
    spans = sorted(
        (entry.blob_offset, entry.blob_offset + entry.size)
        for interpretation in interpretations
        for name in interpretation.names()
        for entry in interpretation.sequence(name)
    )
    merged: list[tuple[int, int]] = []
    for begin, end in spans:
        if merged and begin <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((begin, end))
    return merged


def compact(
    blob: Blob,
    interpretations: list[Interpretation],
    target: Blob | None = None,
) -> tuple[Blob, list[Interpretation], VacuumStats]:
    """Copy referenced spans of ``blob`` into a fresh BLOB.

    Returns ``(new_blob, new_interpretations, stats)``. Every returned
    interpretation mirrors its source (same sequences, descriptors,
    timing, element order) with placements remapped; overlapping
    references (two views sharing bytes) are copied once.

    Raises :class:`StorageError` if an interpretation references another
    BLOB or a span outside this one.
    """
    if not interpretations:
        raise StorageError("compact needs at least one interpretation")
    for interpretation in interpretations:
        if interpretation.blob is not blob:
            raise StorageError(
                f"interpretation {interpretation.name!r} is over a "
                "different BLOB"
            )
        interpretation.validate()

    spans = referenced_spans(interpretations)
    new_blob = target if target is not None else MemoryBlob()
    offset_map: dict[int, int] = {}
    referenced = 0
    for begin, end in spans:
        new_offset = new_blob.append(blob.read(begin, end - begin))
        offset_map[begin] = new_offset
        referenced += end - begin

    span_begins = [begin for begin, _ in spans]

    def remap(old_offset: int) -> int:
        import bisect

        index = bisect.bisect_right(span_begins, old_offset) - 1
        begin, end = spans[index]
        return offset_map[begin] + (old_offset - begin)

    new_interpretations = []
    sequence_count = 0
    for interpretation in interpretations:
        rebuilt = Interpretation(new_blob, f"{interpretation.name}-compacted")
        for name in interpretation.names():
            sequence = interpretation.sequence(name)
            sequence_count += 1
            rebuilt.add(
                name, sequence.media_type, sequence.media_descriptor,
                [
                    PlacementEntry(
                        element_number=entry.element_number,
                        start=entry.start,
                        duration=entry.duration,
                        size=entry.size,
                        blob_offset=remap(entry.blob_offset),
                        element_descriptor=entry.element_descriptor,
                    )
                    for entry in sequence
                ],
                time_system=sequence.time_system,
            )
        rebuilt.validate()
        new_interpretations.append(rebuilt)

    stats = VacuumStats(
        original_bytes=len(blob),
        compacted_bytes=len(new_blob),
        referenced_bytes=referenced,
        sequences=sequence_count,
    )
    return new_blob, new_interpretations, stats
