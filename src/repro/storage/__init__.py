"""Storage layer: layout, interleaving, padding, indexes, container.

Definition 5's placement tables are "a logical view of the interpretation
mapping — existing storage systems for time-based media use multiple
index structures, allowing rapid lookup of the element occurring at a
specific time and the clustering of elements for performance reasons.
(For example, QuickTime uses up to seven indexes for a single timed
stream.)"

This package provides those seven index structures
(:mod:`repro.storage.indexes`), the physical layout policies that
produce interleaved and padded BLOBs (:mod:`repro.storage.layout`,
:mod:`repro.storage.interleave`), and a serializable container format
bundling a BLOB with its interpretation (:mod:`repro.storage.container`).
"""

from repro.storage.indexes import (
    ChunkOffsetTable,
    CompositionOffsetTable,
    EditListTable,
    MediaIndex,
    SampleSizeTable,
    SampleToChunkTable,
    SyncSampleTable,
    TimeToSampleTable,
)
from repro.storage.layout import (
    CD_SECTOR_SIZE,
    StorageWriter,
    TrackSpec,
    write_interleaved,
    write_sequential,
)
from repro.storage.container import read_container, write_container
from repro.storage.vacuum import VacuumStats, compact, referenced_spans

__all__ = [
    "ChunkOffsetTable",
    "CompositionOffsetTable",
    "EditListTable",
    "MediaIndex",
    "SampleSizeTable",
    "SampleToChunkTable",
    "SyncSampleTable",
    "TimeToSampleTable",
    "CD_SECTOR_SIZE",
    "StorageWriter",
    "TrackSpec",
    "write_interleaved",
    "write_sequential",
    "read_container",
    "write_container",
    "VacuumStats",
    "compact",
    "referenced_spans",
]
