"""Physical layout: interleaving, padding, sequential placement.

§2.2's complications, produced for real:

* **interleaving** — "in order to simplify synchronization of streams
  during playback, their elements may be interleaved in a single storage
  unit". :func:`write_interleaved` merges tracks by presentation time
  (Figure 2: "audio samples following the associated video frame").
* **padding** — "storage units may be padded with unused data to match
  storage transfer rates to media data rates. This is commonly used in
  CD-I". The writer can align every element to a sector boundary.
* **sequential** — one track after another, for the layout ablation
  (interleaved vs separate under synchronized playback).

Writers return the per-track :class:`~repro.core.interpretation.PlacementEntry`
lists, so building the Definition 5 interpretation is one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blob.blob import Blob
from repro.core.descriptors import ElementDescriptor
from repro.core.interpretation import PlacementEntry
from repro.core.rational import Rational
from repro.core.time_system import DiscreteTimeSystem
from repro.errors import StorageError

#: CD-ROM Mode 2 sector payload size, the CD-I unit.
CD_SECTOR_SIZE = 2324


@dataclass(frozen=True, slots=True)
class ElementData:
    """One element ready to be placed: bytes + timing + descriptor."""

    data: bytes
    start: int
    duration: int
    descriptor: ElementDescriptor | None = None


@dataclass
class TrackSpec:
    """A named sequence of encoded elements in one time system."""

    name: str
    time_system: DiscreteTimeSystem
    elements: list[ElementData] = field(default_factory=list)

    def add(self, data: bytes, start: int, duration: int,
            descriptor: ElementDescriptor | None = None) -> "TrackSpec":
        self.elements.append(ElementData(data, start, duration, descriptor))
        return self

    def start_seconds(self, index: int) -> Rational:
        return self.time_system.to_continuous(self.elements[index].start)

    def total_bytes(self) -> int:
        return sum(len(e.data) for e in self.elements)


class StorageWriter:
    """Append-only writer over a BLOB with optional sector alignment."""

    def __init__(self, blob: Blob, sector_size: int | None = None):
        if sector_size is not None and sector_size <= 0:
            raise StorageError(f"sector size must be positive, got {sector_size}")
        self.blob = blob
        self.sector_size = sector_size
        self.padding_bytes = 0

    def pad_to_sector(self) -> int:
        """Pad to the next sector boundary; returns bytes written."""
        if not self.sector_size:
            return 0
        remainder = len(self.blob) % self.sector_size
        if remainder == 0:
            return 0
        pad = self.sector_size - remainder
        self.blob.append(b"\x00" * pad)
        self.padding_bytes += pad
        return pad

    def write_element(self, data: bytes) -> int:
        """Place one element (sector-aligned when configured)."""
        self.pad_to_sector()
        return self.blob.append(data)


def write_interleaved(
    blob: Blob,
    tracks: list[TrackSpec],
    sector_size: int | None = None,
) -> dict[str, list[PlacementEntry]]:
    """Write all tracks into one BLOB, interleaved by presentation time.

    Elements across tracks are merged on their continuous start times;
    ties go to the earlier track in ``tracks`` (video first in Figure 2,
    so "audio samples following the associated video frame"). Element
    order within each track is preserved.

    Returns per-track placement rows ready for
    :meth:`Interpretation.add`.
    """
    _check_tracks(tracks)
    writer = StorageWriter(blob, sector_size)
    # (start_seconds, track_priority, element_index) defines the merge.
    schedule = sorted(
        (track.start_seconds(i), priority, i)
        for priority, track in enumerate(tracks)
        for i in range(len(track.elements))
    )
    placements: dict[str, list[PlacementEntry]] = {t.name: [] for t in tracks}
    for _, priority, index in schedule:
        track = tracks[priority]
        element = track.elements[index]
        offset = writer.write_element(element.data)
        placements[track.name].append(PlacementEntry(
            element_number=index,
            start=element.start,
            duration=element.duration,
            size=len(element.data),
            blob_offset=offset,
            element_descriptor=element.descriptor,
        ))
    for rows in placements.values():
        rows.sort(key=lambda e: e.element_number)
    return placements


def write_sequential(
    blob: Blob,
    tracks: list[TrackSpec],
    sector_size: int | None = None,
) -> dict[str, list[PlacementEntry]]:
    """Write each track contiguously, one after another."""
    _check_tracks(tracks)
    writer = StorageWriter(blob, sector_size)
    placements: dict[str, list[PlacementEntry]] = {}
    for track in tracks:
        rows = []
        for index, element in enumerate(track.elements):
            offset = writer.write_element(element.data)
            rows.append(PlacementEntry(
                element_number=index,
                start=element.start,
                duration=element.duration,
                size=len(element.data),
                blob_offset=offset,
                element_descriptor=element.descriptor,
            ))
        placements[track.name] = rows
    return placements


def read_cost_model(
    placements: dict[str, list[PlacementEntry]],
    schedule: list[tuple[str, int]],
    seek_penalty: int = 4096,
) -> int:
    """Cost of reading elements in presentation order.

    ``schedule`` is (track, element_number) pairs in the order playback
    needs them. Cost = bytes read + ``seek_penalty`` per non-contiguous
    jump — the locality argument for interleaving, quantified (ablation
    E9).
    """
    by_key = {
        (name, e.element_number): e
        for name, rows in placements.items() for e in rows
    }
    cost = 0
    cursor: int | None = None
    for key in schedule:
        try:
            entry = by_key[key]
        except KeyError:
            raise StorageError(f"schedule references unknown element {key}")
        if cursor is not None and entry.blob_offset != cursor:
            cost += seek_penalty
        cost += entry.size
        cursor = entry.blob_offset + entry.size
    return cost


def playback_schedule(
    tracks: list[TrackSpec],
) -> list[tuple[str, int]]:
    """The presentation-order read schedule for a set of tracks."""
    _check_tracks(tracks)
    merged = sorted(
        (track.start_seconds(i), priority, i)
        for priority, track in enumerate(tracks)
        for i in range(len(track.elements))
    )
    return [(tracks[priority].name, index) for _, priority, index in merged]


def _check_tracks(tracks: list[TrackSpec]) -> None:
    if not tracks:
        raise StorageError("need at least one track")
    names = [t.name for t in tracks]
    if len(set(names)) != len(names):
        raise StorageError(f"duplicate track names in {names}")
