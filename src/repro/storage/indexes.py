"""QuickTime-style index structures for timed streams.

"Existing storage systems for time-based media use multiple index
structures, allowing rapid lookup of the element occurring at a specific
time and the clustering of elements for performance reasons. (For
example, QuickTime uses up to seven indexes for a single timed stream.)"
(§4.1)

The seven, mirroring QuickTime's stts/stsz/stsc/stco/stss/ctts/elst
atoms:

1. :class:`TimeToSampleTable` — run-length (count, duration) pairs;
2. :class:`SampleSizeTable` — constant size or per-sample sizes;
3. :class:`SampleToChunkTable` — runs of samples-per-chunk;
4. :class:`ChunkOffsetTable` — chunk byte offsets in the BLOB;
5. :class:`SyncSampleTable` — key (I-frame) sample numbers;
6. :class:`CompositionOffsetTable` — decode-to-display offsets
   (out-of-order elements);
7. :class:`EditListTable` — segments mapping movie time to media time.

:class:`MediaIndex` composes them into the two lookups interpretation
needs: *element at time* and *element placement*. "The indexes used to
implement interpretation should not be visible to applications" — they
live here, below :class:`~repro.core.interpretation.Interpretation`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import StorageError


class TimeToSampleTable:
    """Run-length encoded per-sample durations (QuickTime ``stts``)."""

    def __init__(self, runs: list[tuple[int, int]]):
        """``runs`` is a list of (sample_count, duration_ticks) pairs."""
        self.runs = []
        for count, duration in runs:
            if count <= 0 or duration < 0:
                raise StorageError(f"bad stts run ({count}, {duration})")
            # Merge adjacent equal-duration runs for compactness.
            if self.runs and self.runs[-1][1] == duration:
                self.runs[-1] = (self.runs[-1][0] + count, duration)
            else:
                self.runs.append((count, duration))
        self._cumulative_samples = []
        self._cumulative_ticks = []
        samples = ticks = 0
        for count, duration in self.runs:
            samples += count
            ticks += count * duration
            self._cumulative_samples.append(samples)
            self._cumulative_ticks.append(ticks)

    @classmethod
    def from_durations(cls, durations: list[int]) -> "TimeToSampleTable":
        runs = [(1, d) for d in durations]
        return cls(runs)

    @property
    def sample_count(self) -> int:
        return self._cumulative_samples[-1] if self.runs else 0

    @property
    def total_ticks(self) -> int:
        return self._cumulative_ticks[-1] if self.runs else 0

    def duration_of(self, sample: int) -> int:
        self._check_sample(sample)
        run = bisect.bisect_right(self._cumulative_samples, sample)
        return self.runs[run][1]

    def time_of(self, sample: int) -> int:
        """Start tick of ``sample`` (samples are laid out back to back)."""
        self._check_sample(sample)
        run = bisect.bisect_right(self._cumulative_samples, sample)
        prior_samples = self._cumulative_samples[run - 1] if run else 0
        prior_ticks = self._cumulative_ticks[run - 1] if run else 0
        return prior_ticks + (sample - prior_samples) * self.runs[run][1]

    def sample_at(self, tick: int) -> int:
        """Sample number covering ``tick``.

        Raises :class:`StorageError` for ticks outside the stream.
        """
        if tick < 0 or tick >= self.total_ticks:
            raise StorageError(
                f"tick {tick} outside stream of {self.total_ticks} ticks"
            )
        run = bisect.bisect_right(self._cumulative_ticks, tick)
        prior_samples = self._cumulative_samples[run - 1] if run else 0
        prior_ticks = self._cumulative_ticks[run - 1] if run else 0
        duration = self.runs[run][1]
        if duration == 0:
            return prior_samples
        return prior_samples + (tick - prior_ticks) // duration

    def entry_count(self) -> int:
        """Stored entries — the compaction the run-length form buys."""
        return len(self.runs)

    def _check_sample(self, sample: int) -> None:
        if not 0 <= sample < self.sample_count:
            raise StorageError(
                f"sample {sample} out of range [0, {self.sample_count})"
            )


class SampleSizeTable:
    """Per-sample byte sizes, or one constant size (QuickTime ``stsz``)."""

    def __init__(self, sizes: list[int] | None = None,
                 constant_size: int | None = None, count: int = 0):
        if (sizes is None) == (constant_size is None):
            raise StorageError("pass exactly one of sizes / constant_size")
        if constant_size is not None:
            if constant_size < 0 or count < 0:
                raise StorageError("bad constant-size table")
            self.constant_size = constant_size
            self.sizes = None
            self._count = count
        else:
            if any(s < 0 for s in sizes):
                raise StorageError("sizes must be non-negative")
            self.constant_size = None
            self.sizes = list(sizes)
            self._count = len(self.sizes)

    @classmethod
    def from_sizes(cls, sizes: list[int]) -> "SampleSizeTable":
        """Build, collapsing to constant form when possible."""
        distinct = set(sizes)
        if len(distinct) == 1:
            return cls(constant_size=next(iter(distinct)), count=len(sizes))
        return cls(sizes=sizes)

    @property
    def sample_count(self) -> int:
        return self._count

    @property
    def is_constant(self) -> bool:
        return self.constant_size is not None

    def size_of(self, sample: int) -> int:
        if not 0 <= sample < self._count:
            raise StorageError(f"sample {sample} out of range [0, {self._count})")
        if self.constant_size is not None:
            return self.constant_size
        return self.sizes[sample]

    def total_bytes(self) -> int:
        if self.constant_size is not None:
            return self.constant_size * self._count
        return sum(self.sizes)


class SampleToChunkTable:
    """Runs of samples-per-chunk (QuickTime ``stsc``).

    Entries are ``(first_chunk, samples_per_chunk)`` with ``first_chunk``
    zero-based and strictly increasing; each entry applies until the next.
    """

    def __init__(self, entries: list[tuple[int, int]], chunk_count: int):
        if not entries or entries[0][0] != 0:
            raise StorageError("stsc must start at chunk 0")
        for (a, sa), (b, sb) in zip(entries, entries[1:]):
            if b <= a:
                raise StorageError("stsc first_chunk must increase")
        for _, per in entries:
            if per <= 0:
                raise StorageError("samples per chunk must be positive")
        if chunk_count < entries[-1][0] + 1:
            raise StorageError("chunk_count smaller than last stsc entry")
        self.entries = list(entries)
        self.chunk_count = chunk_count
        # Cumulative samples before each chunk, for O(log n) lookups.
        self._first_sample_of_chunk = []
        sample = 0
        entry_index = 0
        for chunk in range(chunk_count):
            if (entry_index + 1 < len(self.entries)
                    and self.entries[entry_index + 1][0] == chunk):
                entry_index += 1
            self._first_sample_of_chunk.append(sample)
            sample += self.entries[entry_index][1]
        self._total_samples = sample

    @classmethod
    def uniform(cls, samples_per_chunk: int, chunk_count: int) -> "SampleToChunkTable":
        return cls([(0, samples_per_chunk)], chunk_count)

    @property
    def sample_count(self) -> int:
        return self._total_samples

    def samples_in_chunk(self, chunk: int) -> int:
        self._check_chunk(chunk)
        if chunk + 1 < self.chunk_count:
            return self._first_sample_of_chunk[chunk + 1] - self._first_sample_of_chunk[chunk]
        return self._total_samples - self._first_sample_of_chunk[chunk]

    def chunk_of(self, sample: int) -> tuple[int, int]:
        """(chunk, index_within_chunk) of ``sample``."""
        if not 0 <= sample < self._total_samples:
            raise StorageError(
                f"sample {sample} out of range [0, {self._total_samples})"
            )
        chunk = bisect.bisect_right(self._first_sample_of_chunk, sample) - 1
        return chunk, sample - self._first_sample_of_chunk[chunk]

    def first_sample_of(self, chunk: int) -> int:
        self._check_chunk(chunk)
        return self._first_sample_of_chunk[chunk]

    def _check_chunk(self, chunk: int) -> None:
        if not 0 <= chunk < self.chunk_count:
            raise StorageError(
                f"chunk {chunk} out of range [0, {self.chunk_count})"
            )


class ChunkOffsetTable:
    """Byte offset of each chunk in the BLOB (QuickTime ``stco``)."""

    def __init__(self, offsets: list[int]):
        if any(o < 0 for o in offsets):
            raise StorageError("chunk offsets must be non-negative")
        self.offsets = list(offsets)

    @property
    def chunk_count(self) -> int:
        return len(self.offsets)

    def offset_of(self, chunk: int) -> int:
        if not 0 <= chunk < len(self.offsets):
            raise StorageError(
                f"chunk {chunk} out of range [0, {len(self.offsets)})"
            )
        return self.offsets[chunk]


class SyncSampleTable:
    """Key (sync) sample numbers (QuickTime ``stss``).

    Random access must start decoding at a key element; intermediate
    (P/B) elements depend on it.
    """

    def __init__(self, sync_samples: list[int]):
        ordered = sorted(set(sync_samples))
        if ordered and ordered[0] < 0:
            raise StorageError("sync samples must be non-negative")
        self.sync_samples = ordered

    def is_sync(self, sample: int) -> bool:
        index = bisect.bisect_left(self.sync_samples, sample)
        return index < len(self.sync_samples) and self.sync_samples[index] == sample

    def sync_before(self, sample: int) -> int:
        """Latest sync sample at or before ``sample`` (for seeking)."""
        index = bisect.bisect_right(self.sync_samples, sample)
        if index == 0:
            raise StorageError(f"no sync sample at or before {sample}")
        return self.sync_samples[index - 1]

    def decode_span(self, sample: int) -> tuple[int, int]:
        """Samples ``[sync, sample]`` that a seek to ``sample`` must decode."""
        sync = self.sync_before(sample)
        return sync, sample


class CompositionOffsetTable:
    """Decode-order to display-order mapping (QuickTime ``ctts``-like).

    Stored as the display index of each sample in decode (storage)
    order; exposes both directions. This is the paper's "placement order
    could be 1, 4, 2, 3" made queryable.
    """

    def __init__(self, display_of_decode: list[int]):
        count = len(display_of_decode)
        if sorted(display_of_decode) != list(range(count)):
            raise StorageError(
                "composition table must be a permutation of 0..n-1"
            )
        self.display_of_decode = list(display_of_decode)
        self._decode_of_display = [0] * count
        for decode_index, display_index in enumerate(display_of_decode):
            self._decode_of_display[display_index] = decode_index

    @property
    def sample_count(self) -> int:
        return len(self.display_of_decode)

    def display_index(self, decode_index: int) -> int:
        self._check(decode_index)
        return self.display_of_decode[decode_index]

    def decode_index(self, display_index: int) -> int:
        self._check(display_index)
        return self._decode_of_display[display_index]

    def is_identity(self) -> bool:
        return all(i == d for i, d in enumerate(self.display_of_decode))

    def max_reorder_distance(self) -> int:
        """Largest |decode - display| gap — bounds the reorder buffer."""
        return max(
            (abs(i - d) for i, d in enumerate(self.display_of_decode)),
            default=0,
        )

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self.display_of_decode):
            raise StorageError(
                f"index {index} out of range [0, {len(self.display_of_decode)})"
            )


@dataclass(frozen=True, slots=True)
class EditSegment:
    """One edit-list segment: ``duration`` ticks of movie time taken from
    media time starting at ``media_start`` (-1 = empty/black segment)."""

    duration: int
    media_start: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise StorageError("edit segment duration must be positive")
        if self.media_start < -1:
            raise StorageError("media_start must be >= -1")


class EditListTable:
    """Movie-time to media-time mapping (QuickTime ``elst``)."""

    def __init__(self, segments: list[EditSegment]):
        self.segments = list(segments)
        self._cumulative = []
        total = 0
        for segment in self.segments:
            total += segment.duration
            self._cumulative.append(total)

    @classmethod
    def identity(cls, total_ticks: int) -> "EditListTable":
        return cls([EditSegment(total_ticks, 0)] if total_ticks else [])

    @property
    def total_ticks(self) -> int:
        return self._cumulative[-1] if self.segments else 0

    def media_time(self, movie_tick: int) -> int | None:
        """Media tick for ``movie_tick`` (None inside an empty segment)."""
        if movie_tick < 0 or movie_tick >= self.total_ticks:
            raise StorageError(
                f"movie tick {movie_tick} outside edit list of "
                f"{self.total_ticks} ticks"
            )
        index = bisect.bisect_right(self._cumulative, movie_tick)
        segment = self.segments[index]
        prior = self._cumulative[index - 1] if index else 0
        if segment.media_start < 0:
            return None
        return segment.media_start + (movie_tick - prior)


def index_for_sequence(sequence, sync_samples=None,
                       composition=None) -> "MediaIndex":
    """Build a :class:`MediaIndex` from an interpreted sequence.

    The placement table is the logical view (§4.1); this derives the
    physical index structures from it: run-length durations, sample
    sizes, and chunks discovered from BLOB adjacency (elements placed
    back-to-back share a chunk — interleaving breaks chunks exactly at
    the points another stream's elements intervene).
    """
    entries = list(sequence.entries)
    if not entries:
        raise StorageError(f"sequence {sequence.name!r} is empty")
    # stts lays samples back-to-back from time zero; only continuous,
    # zero-based sequences fit that shape (gapped/overlapping media keep
    # the explicit table).
    if entries[0].start != 0 or any(
        b.start != a.end for a, b in zip(entries, entries[1:])
    ):
        raise StorageError(
            f"sequence {sequence.name!r} is not continuous from 0; "
            "MediaIndex covers continuous streams only"
        )
    time_to_sample = TimeToSampleTable.from_durations(
        [e.duration for e in entries]
    )
    sample_sizes = SampleSizeTable.from_sizes([e.size for e in entries])

    # Chunk discovery: a new chunk starts wherever placement is not
    # contiguous with the previous element.
    chunk_offsets: list[int] = []
    chunk_counts: list[int] = []
    expected_offset: int | None = None
    for entry in entries:
        if entry.blob_offset != expected_offset:
            chunk_offsets.append(entry.blob_offset)
            chunk_counts.append(1)
        else:
            chunk_counts[-1] += 1
        expected_offset = entry.blob_offset + entry.size

    stsc_entries: list[tuple[int, int]] = []
    for chunk_number, count in enumerate(chunk_counts):
        if not stsc_entries or stsc_entries[-1][1] != count:
            stsc_entries.append((chunk_number, count))
    return MediaIndex(
        time_to_sample=time_to_sample,
        sample_sizes=sample_sizes,
        sample_to_chunk=SampleToChunkTable(stsc_entries, len(chunk_offsets)),
        chunk_offsets=ChunkOffsetTable(chunk_offsets),
        sync_samples=sync_samples,
        composition=composition,
    )


class MediaIndex:
    """The composite index an interpretation uses internally.

    Answers the two questions of §4.1 in O(log n): *which element occurs
    at time t* and *where is element n in the BLOB*.
    """

    def __init__(
        self,
        time_to_sample: TimeToSampleTable,
        sample_sizes: SampleSizeTable,
        sample_to_chunk: SampleToChunkTable,
        chunk_offsets: ChunkOffsetTable,
        sync_samples: SyncSampleTable | None = None,
        composition: CompositionOffsetTable | None = None,
        edit_list: EditListTable | None = None,
    ):
        count = time_to_sample.sample_count
        for table, label in ((sample_sizes, "stsz"), (sample_to_chunk, "stsc")):
            if table.sample_count != count:
                raise StorageError(
                    f"{label} covers {table.sample_count} samples, "
                    f"stts covers {count}"
                )
        if sample_to_chunk.chunk_count != chunk_offsets.chunk_count:
            raise StorageError("stsc and stco disagree on chunk count")
        if composition is not None and composition.sample_count != count:
            raise StorageError("ctts covers a different sample count")
        self.time_to_sample = time_to_sample
        self.sample_sizes = sample_sizes
        self.sample_to_chunk = sample_to_chunk
        self.chunk_offsets = chunk_offsets
        self.sync_samples = sync_samples
        self.composition = composition
        self.edit_list = edit_list or EditListTable.identity(
            time_to_sample.total_ticks
        )

    @property
    def sample_count(self) -> int:
        return self.time_to_sample.sample_count

    def placement(self, sample: int) -> tuple[int, int]:
        """(blob_offset, size) of ``sample`` — in *decode/storage* order.

        The chunk's base offset plus the sizes of the samples preceding
        it within the chunk.
        """
        chunk, within = self.sample_to_chunk.chunk_of(sample)
        offset = self.chunk_offsets.offset_of(chunk)
        first = self.sample_to_chunk.first_sample_of(chunk)
        for prior in range(first, first + within):
            offset += self.sample_sizes.size_of(prior)
        return offset, self.sample_sizes.size_of(sample)

    def sample_at_time(self, movie_tick: int) -> int | None:
        """Display sample at ``movie_tick`` (through the edit list)."""
        media_tick = self.edit_list.media_time(movie_tick)
        if media_tick is None:
            return None
        return self.time_to_sample.sample_at(media_tick)

    def placement_at_time(self, movie_tick: int) -> tuple[int, int] | None:
        """BLOB placement of the element presented at ``movie_tick``.

        Composition reordering is applied: the display sample's bytes sit
        at its *decode* position.
        """
        display = self.sample_at_time(movie_tick)
        if display is None:
            return None
        if self.composition is not None:
            return self.placement(self.composition.decode_index(display))
        return self.placement(display)

    def seek_decode_work(self, movie_tick: int) -> int:
        """Elements that must be decoded to present ``movie_tick``.

        1 for all-key streams; up to the sync distance for inter-coded
        streams. Drives the random-access ablation.
        """
        display = self.sample_at_time(movie_tick)
        if display is None:
            return 0
        if self.sync_samples is None:
            return 1
        sync, target = self.sync_samples.decode_span(display)
        return target - sync + 1
