"""RMF: a serializable container bundling a BLOB with its interpretation.

The paper recommends that a BLOB have "a single, complete, interpretation
which is built up as the BLOB is captured or created and then permanently
associated with the BLOB" (§4.1). A container file is that permanent
association: one header describing every sequence (media descriptor, time
system, placement table) followed by the raw BLOB bytes — a movie file in
the QuickTime sense, reduced to essentials.

Format (version 2)::

    magic 'RMF2' | header_length u32 BE | header_crc u32 BE
                 | header JSON (UTF-8) | blob bytes

The header carries ``blob_crc32``, so together with ``header_crc`` every
byte of the file is covered by a checksum — a single flipped bit anywhere
surfaces as a typed :class:`~repro.errors.ContainerFormatError`, never as
a silently wrong interpretation. Version-1 files (no checksums) still
read. Descriptor values that JSON cannot express directly (rationals,
tuples) are wrapped in tagged objects.

:func:`write_container` commits atomically — shadow write, fsync,
rename (:func:`repro.durability.atomic.atomic_write_bytes`) — so a crash
mid-write leaves either the old complete file or the new one, never a
truncated hybrid.

The decoder trusts nothing: header lengths are bounded, placement
entries are shape- and bounds-checked against the actual blob, and any
structural surprise in hostile JSON is wrapped into
:class:`~repro.errors.ContainerFormatError` rather than escaping as
``KeyError`` or friends.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any

from repro.blob.blob import MemoryBlob
from repro.core.descriptors import ElementDescriptor, MediaDescriptor
from repro.core.interpretation import (
    Interpretation,
    InterpretedSequence,
    PlacementEntry,
)
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.time_system import DiscreteTimeSystem
from repro.durability.atomic import atomic_write_bytes, read_bytes
from repro.errors import ContainerFormatError, MediaModelError

_MAGIC = b"RMF2"
_MAGIC_V1 = b"RMF1"


def _encode_value(value: Any) -> Any:
    if isinstance(value, Rational):
        return {"$rational": [value.numerator, value.denominator]}
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ContainerFormatError(
        f"cannot serialize descriptor value of type {type(value).__name__}"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "$rational" in value:
            pair = value["$rational"]
            if (not isinstance(pair, list) or len(pair) != 2
                    or not all(_is_int(v) for v in pair)):
                raise ContainerFormatError(
                    f"malformed $rational value: {pair!r}"
                )
            if pair[1] == 0:
                raise ContainerFormatError("$rational with zero denominator")
            return Rational(pair[0], pair[1])
        if "$tuple" in value:
            items = value["$tuple"]
            if not isinstance(items, list):
                raise ContainerFormatError(
                    f"malformed $tuple value: {items!r}"
                )
            return tuple(_decode_value(v) for v in items)
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def _is_int(value: Any) -> bool:
    """A real integer — booleans masquerade as ints and are rejected."""
    return isinstance(value, int) and not isinstance(value, bool)


def _encode_sequence(sequence: InterpretedSequence) -> dict:
    return {
        "name": sequence.name,
        "media_type": sequence.media_type.name,
        "time_system": {
            "frequency": [
                sequence.time_system.frequency.numerator,
                sequence.time_system.frequency.denominator,
            ],
            "name": sequence.time_system.name,
        },
        "descriptor": {
            k: _encode_value(v) for k, v in sequence.media_descriptor.items()
        },
        "entries": [
            [
                e.element_number, e.start, e.duration, e.size, e.blob_offset,
                None if e.element_descriptor is None
                else {k: _encode_value(v) for k, v in e.element_descriptor.items()},
            ]
            for e in sequence.entries
        ],
    }


def _decode_entry(row: Any, index: int, blob_length: int) -> PlacementEntry:
    """One placement row, fully distrusted."""
    if not isinstance(row, list) or len(row) != 6:
        raise ContainerFormatError(
            f"placement entry {index} is not a 6-field row: {row!r}"
        )
    number, start, duration, size, offset, element_descriptor = row
    for label, value in (("element_number", number), ("start", start),
                         ("duration", duration), ("size", size),
                         ("blob_offset", offset)):
        if not _is_int(value):
            raise ContainerFormatError(
                f"placement entry {index}: {label} must be an integer, "
                f"got {value!r}"
            )
    if size < 0 or offset < 0:
        raise ContainerFormatError(
            f"placement entry {index}: negative size or offset "
            f"({size}, {offset})"
        )
    if offset + size > blob_length:
        raise ContainerFormatError(
            f"placement entry {index}: [{offset}, {offset + size}) "
            f"overflows BLOB of {blob_length} bytes"
        )
    if element_descriptor is not None \
            and not isinstance(element_descriptor, dict):
        raise ContainerFormatError(
            f"placement entry {index}: element descriptor must be an "
            f"object or null"
        )
    descriptor_obj = (
        None if element_descriptor is None
        else ElementDescriptor({
            k: _decode_value(v) for k, v in element_descriptor.items()
        })
    )
    return PlacementEntry(
        element_number=number, start=start, duration=duration,
        size=size, blob_offset=offset, element_descriptor=descriptor_obj,
    )


def _decode_sequence(payload: Any, blob_length: int) -> InterpretedSequence:
    if not isinstance(payload, dict):
        raise ContainerFormatError(
            f"sequence payload is not an object: {payload!r}"
        )
    try:
        name = payload["name"]
        media_type = media_type_registry.get(payload["media_type"])
        ts = payload["time_system"]
        frequency = ts["frequency"]
        if (not isinstance(frequency, list) or len(frequency) != 2
                or not all(_is_int(v) for v in frequency)
                or frequency[1] == 0):
            raise ContainerFormatError(
                f"malformed time system frequency: {frequency!r}"
            )
        time_system = DiscreteTimeSystem(
            Rational(frequency[0], frequency[1]), ts.get("name", "")
        )
        descriptor_payload = payload["descriptor"]
        if not isinstance(descriptor_payload, dict):
            raise ContainerFormatError(
                f"media descriptor is not an object: {descriptor_payload!r}"
            )
        descriptor = MediaDescriptor({
            k: _decode_value(v) for k, v in descriptor_payload.items()
        })
        rows = payload["entries"]
        if not isinstance(rows, list):
            raise ContainerFormatError(
                f"placement table is not a list: {rows!r}"
            )
        entries = [
            _decode_entry(row, i, blob_length) for i, row in enumerate(rows)
        ]
        return InterpretedSequence(
            name, media_type, descriptor, entries, time_system
        )
    except MediaModelError:
        raise
    except (KeyError, IndexError, TypeError, ValueError,
            AttributeError) as exc:
        raise ContainerFormatError(
            f"malformed sequence payload: {type(exc).__name__}: {exc}"
        ) from exc


def serialize_container(interpretation: Interpretation) -> bytes:
    """Serialize an interpretation and its BLOB to container bytes."""
    interpretation.validate()
    blob_bytes = interpretation.blob.read_all()
    header = {
        "name": interpretation.name,
        "blob_length": len(blob_bytes),
        "blob_crc32": zlib.crc32(blob_bytes),
        "sequences": [
            _encode_sequence(interpretation.sequence(name))
            for name in interpretation.names()
        ],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join([
        _MAGIC,
        struct.pack(">II", len(header_bytes), zlib.crc32(header_bytes)),
        header_bytes,
        blob_bytes,
    ])


def deserialize_container(data: bytes) -> Interpretation:
    """Invert :func:`serialize_container` (BLOB loads into memory).

    Accepts version 1 and 2; raises
    :class:`~repro.errors.ContainerFormatError` for any corruption,
    truncation or structurally hostile header."""
    if len(data) < 8:
        raise ContainerFormatError(
            f"not an RMF container ({len(data)} bytes is too short)"
        )
    magic = data[:4]
    if magic == _MAGIC:
        if len(data) < 12:
            raise ContainerFormatError("truncated container preamble")
        header_length, header_crc = struct.unpack_from(">II", data, 4)
        preamble = 12
    elif magic == _MAGIC_V1:
        (header_length,) = struct.unpack_from(">I", data, 4)
        header_crc = None
        preamble = 8
    else:
        raise ContainerFormatError("not an RMF container (bad magic)")
    if header_length > len(data) - preamble:
        raise ContainerFormatError(
            f"truncated container header (declares {header_length} bytes, "
            f"{len(data) - preamble} available)"
        )
    header_end = preamble + header_length
    header_bytes = data[preamble:header_end]
    if header_crc is not None and zlib.crc32(header_bytes) != header_crc:
        raise ContainerFormatError(
            "container header failed checksum verification"
        )
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ContainerFormatError(f"bad container header: {exc}") from exc
    if not isinstance(header, dict):
        raise ContainerFormatError(
            f"container header is not an object: {header!r}"
        )
    blob_bytes = data[header_end:]
    declared = header.get("blob_length")
    if not _is_int(declared) or declared < 0:
        raise ContainerFormatError(
            f"bad declared BLOB length: {declared!r}"
        )
    if len(blob_bytes) != declared:
        raise ContainerFormatError(
            f"BLOB length mismatch: header says {declared}, "
            f"file holds {len(blob_bytes)}"
        )
    blob_crc = header.get("blob_crc32")
    if blob_crc is not None:
        if not _is_int(blob_crc):
            raise ContainerFormatError(
                f"bad declared BLOB checksum: {blob_crc!r}"
            )
        if zlib.crc32(blob_bytes) != blob_crc:
            raise ContainerFormatError(
                "BLOB failed checksum verification"
            )
    interpretation = Interpretation(
        MemoryBlob(blob_bytes), header.get("name", "container")
    )
    sequences = header.get("sequences", [])
    if not isinstance(sequences, list):
        raise ContainerFormatError(
            f"sequence table is not a list: {sequences!r}"
        )
    for sequence_payload in sequences:
        interpretation.add_sequence(
            _decode_sequence(sequence_payload, len(blob_bytes))
        )
    interpretation.validate()
    return interpretation


def write_container(interpretation: Interpretation, path: str | os.PathLike,
                    fs=None, crash=None) -> int:
    """Atomically write a container file; returns bytes written.

    The commit is shadow-write + fsync + rename + directory fsync: a
    crash at any instruction leaves either the previous container or
    the complete new one on disk."""
    data = serialize_container(interpretation)
    atomic_write_bytes(os.fspath(path), data, fs=fs, crash=crash)
    return len(data)


def read_container(path: str | os.PathLike, fs=None) -> Interpretation:
    """Read a container file back into an in-memory interpretation."""
    return deserialize_container(read_bytes(os.fspath(path), fs=fs))
