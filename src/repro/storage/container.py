"""RMF: a serializable container bundling a BLOB with its interpretation.

The paper recommends that a BLOB have "a single, complete, interpretation
which is built up as the BLOB is captured or created and then permanently
associated with the BLOB" (§4.1). A container file is that permanent
association: one header describing every sequence (media descriptor, time
system, placement table) followed by the raw BLOB bytes — a movie file in
the QuickTime sense, reduced to essentials.

Format::

    magic 'RMF1' | header_length u32 BE | header JSON (UTF-8) | blob bytes

Descriptor values that JSON cannot express directly (rationals, tuples)
are wrapped in tagged objects.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any

from repro.blob.blob import MemoryBlob
from repro.core.descriptors import ElementDescriptor, MediaDescriptor
from repro.core.interpretation import (
    Interpretation,
    InterpretedSequence,
    PlacementEntry,
)
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.time_system import DiscreteTimeSystem
from repro.errors import ContainerFormatError

_MAGIC = b"RMF1"


def _encode_value(value: Any) -> Any:
    if isinstance(value, Rational):
        return {"$rational": [value.numerator, value.denominator]}
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ContainerFormatError(
        f"cannot serialize descriptor value of type {type(value).__name__}"
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "$rational" in value:
            numerator, denominator = value["$rational"]
            return Rational(numerator, denominator)
        if "$tuple" in value:
            return tuple(_decode_value(v) for v in value["$tuple"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def _encode_sequence(sequence: InterpretedSequence) -> dict:
    return {
        "name": sequence.name,
        "media_type": sequence.media_type.name,
        "time_system": {
            "frequency": [
                sequence.time_system.frequency.numerator,
                sequence.time_system.frequency.denominator,
            ],
            "name": sequence.time_system.name,
        },
        "descriptor": {
            k: _encode_value(v) for k, v in sequence.media_descriptor.items()
        },
        "entries": [
            [
                e.element_number, e.start, e.duration, e.size, e.blob_offset,
                None if e.element_descriptor is None
                else {k: _encode_value(v) for k, v in e.element_descriptor.items()},
            ]
            for e in sequence.entries
        ],
    }


def _decode_sequence(payload: dict) -> InterpretedSequence:
    media_type = media_type_registry.get(payload["media_type"])
    ts = payload["time_system"]
    time_system = DiscreteTimeSystem(
        Rational(ts["frequency"][0], ts["frequency"][1]), ts.get("name", "")
    )
    descriptor = MediaDescriptor({
        k: _decode_value(v) for k, v in payload["descriptor"].items()
    })
    entries = []
    for number, start, duration, size, offset, element_descriptor in payload["entries"]:
        descriptor_obj = (
            None if element_descriptor is None
            else ElementDescriptor({
                k: _decode_value(v) for k, v in element_descriptor.items()
            })
        )
        entries.append(PlacementEntry(
            element_number=number, start=start, duration=duration,
            size=size, blob_offset=offset, element_descriptor=descriptor_obj,
        ))
    return InterpretedSequence(
        payload["name"], media_type, descriptor, entries, time_system
    )


def serialize_container(interpretation: Interpretation) -> bytes:
    """Serialize an interpretation and its BLOB to container bytes."""
    interpretation.validate()
    header = {
        "name": interpretation.name,
        "blob_length": len(interpretation.blob),
        "sequences": [
            _encode_sequence(interpretation.sequence(name))
            for name in interpretation.names()
        ],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join([
        _MAGIC,
        struct.pack(">I", len(header_bytes)),
        header_bytes,
        interpretation.blob.read_all(),
    ])


def deserialize_container(data: bytes) -> Interpretation:
    """Invert :func:`serialize_container` (BLOB loads into memory)."""
    if len(data) < 8 or data[:4] != _MAGIC:
        raise ContainerFormatError("not an RMF container (bad magic)")
    (header_length,) = struct.unpack_from(">I", data, 4)
    header_end = 8 + header_length
    if header_end > len(data):
        raise ContainerFormatError("truncated container header")
    try:
        header = json.loads(data[8:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ContainerFormatError(f"bad container header: {exc}") from exc
    blob_bytes = data[header_end:]
    if len(blob_bytes) != header.get("blob_length"):
        raise ContainerFormatError(
            f"BLOB length mismatch: header says {header.get('blob_length')}, "
            f"file holds {len(blob_bytes)}"
        )
    interpretation = Interpretation(
        MemoryBlob(blob_bytes), header.get("name", "container")
    )
    for sequence_payload in header.get("sequences", []):
        interpretation.add_sequence(_decode_sequence(sequence_payload))
    interpretation.validate()
    return interpretation


def write_container(interpretation: Interpretation, path: str | os.PathLike) -> int:
    """Write a container file; returns bytes written."""
    data = serialize_container(interpretation)
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def read_container(path: str | os.PathLike) -> Interpretation:
    """Read a container file back into an in-memory interpretation."""
    with open(path, "rb") as handle:
        return deserialize_container(handle.read())
