"""Control-flow graphs over pure ``ast`` for the dataflow engine.

:func:`build_cfg` lowers one function body to a statement-level CFG:
every simple statement, branch test and loop head becomes a
:class:`CFGNode`; edges carry a *kind* so the fixpoint solver can tell
normal fall-through from exceptional transfer. Three synthetic nodes
frame every graph — ``entry``, ``exit`` (normal return) and
``raise-exit`` (an exception leaving the function) — so typestate
checkers can ask "what is still held on *any* way out?".

Modeling decisions, chosen for may-analysis soundness at low noise:

* Every statement that can plausibly raise (anything containing a
  call, attribute access, subscript or operator) gets an ``exc`` edge
  to the innermost active exception targets: the handler heads of an
  enclosing ``try``, a copy of its ``finally`` suite, or ``raise-exit``.
  Trivial statements (``pass``, a constant assigned to a bare name)
  get none, so bookkeeping between acquire and release does not fork
  spurious leak paths.
* ``finally`` suites are *duplicated per continuation*, the way the
  CPython compiler lowers them: the copy reached by normal completion
  flows onward, the copy reached by an exception re-joins exception
  propagation, and ``return``/``break``/``continue`` that cross the
  ``try`` each route through their own copy. Duplication keeps every
  path through a ``finally`` explicit, which is exactly what a
  release-on-every-path check needs.
* A ``try`` whose handlers include a catch-all (bare ``except``,
  ``except Exception``/``BaseException``) does not add the "unmatched
  exception" edge past the handlers; otherwise it does.
* ``with`` does not suppress exceptions (none of the repo's context
  managers do): body statements keep their ``exc`` edges outward.
* Statements after an abrupt exit (``return``/``raise``/...) in the
  same suite are dead code and get no nodes, so every node in a built
  graph — except possibly the two synthetic exits, when the body
  cannot reach one of them — is reachable from ``entry``, a property
  the hypothesis suite pins down.

Nothing is imported or executed; the builder only reads the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import AnalysisError

#: Edge kinds. ``exc`` edges carry the *pre*-statement state in the
#: solver (the statement may not have completed); everything else
#: carries the post-state.
EDGE_KINDS = ("normal", "true", "false", "iter", "exhaust", "back", "exc")

#: Handler type names treated as catching everything.
CATCH_ALL_NAMES = frozenset({"Exception", "BaseException"})


@dataclass
class CFGNode:
    """One CFG vertex: a statement, a test, or a synthetic frame node."""

    node_id: int
    label: str  # "entry" | "exit" | "raise-exit" | "stmt" | "test" | ...
    stmt: ast.AST | None = None
    line: int | None = None

    def describe(self) -> str:
        if self.stmt is None:
            return self.label
        text = ast.unparse(self.stmt) if not isinstance(
            self.stmt, (ast.If, ast.While, ast.For, ast.Try, ast.With,
                        ast.Match)
        ) else ast.unparse(self.stmt).splitlines()[0]
        if len(text) > 60:
            text = text[:57] + "..."
        return f"{self.label} L{self.line}: {text}"


@dataclass
class HandlerRegion:
    """An ``except`` clause: its head node and its body's node ids."""

    handler: ast.ExceptHandler
    head: int
    body_ids: frozenset[int]

    def names_exception(self, name: str) -> bool:
        """True when the handler's type expression mentions ``name``."""
        type_expr = self.handler.type
        if type_expr is None:
            return False
        for node in ast.walk(type_expr):
            if isinstance(node, ast.Name) and node.id == name:
                return True
            if isinstance(node, ast.Attribute) and node.attr == name:
                return True
        return False


class CFG:
    """A built control-flow graph; nodes and kind-tagged edges."""

    def __init__(self, name: str, qualname: str):
        self.name = name
        self.qualname = qualname
        self.nodes: dict[int, CFGNode] = {}
        self.succs: dict[int, list[tuple[int, str]]] = {}
        self.preds: dict[int, list[tuple[int, str]]] = {}
        self.handler_regions: list[HandlerRegion] = []
        self.entry = self._new("entry").node_id
        self.exit = self._new("exit").node_id
        self.raise_exit = self._new("raise-exit").node_id

    # -- construction --------------------------------------------------------

    def _new(self, label: str, stmt: ast.AST | None = None) -> CFGNode:
        node = CFGNode(len(self.nodes), label, stmt,
                       getattr(stmt, "lineno", None))
        self.nodes[node.node_id] = node
        self.succs[node.node_id] = []
        self.preds[node.node_id] = []
        return node

    def add_edge(self, src: int, dst: int, kind: str = "normal") -> None:
        if kind not in EDGE_KINDS:
            raise AnalysisError(f"unknown CFG edge kind {kind!r}")
        if (dst, kind) not in self.succs[src]:
            self.succs[src].append((dst, kind))
            self.preds[dst].append((src, kind))

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return sum(len(out) for out in self.succs.values())

    def exits(self) -> tuple[int, int]:
        """(normal exit, exceptional exit) node ids."""
        return self.exit, self.raise_exit

    def reachable_from_entry(self) -> set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for succ, _ in self.succs[node]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def statement_nodes(self) -> list[CFGNode]:
        """Non-synthetic nodes in id (construction) order."""
        return [n for n in self.nodes.values() if n.stmt is not None]

    def dump(self) -> str:
        """Deterministic text rendering (``inspect --cfg`` output)."""
        lines = [
            f"cfg {self.name}::{self.qualname} — "
            f"{len(self.nodes)} nodes, {self.edge_count()} edges"
        ]
        for node_id in sorted(self.nodes):
            lines.append(f"  [{node_id}] {self.nodes[node_id].describe()}")
            for dst, kind in self.succs[node_id]:
                lines.append(f"      -> {dst} ({kind})")
        return "\n".join(lines)


#: Statements with no failure mode of their own.
_NEVER_RAISES = (ast.Pass, ast.Break, ast.Continue, ast.Global,
                 ast.Nonlocal)


def _expr_is_trivial(expr: ast.AST | None) -> bool:
    """Constants, bare names and containers of those cannot raise."""
    if expr is None:
        return True
    if isinstance(expr, (ast.Constant, ast.Name)):
        return True
    if isinstance(expr, (ast.Tuple, ast.List)):
        return all(_expr_is_trivial(el) for el in expr.elts)
    return False


def may_raise(stmt: ast.AST) -> bool:
    """Whether a statement can transfer control to an exception edge."""
    if isinstance(stmt, _NEVER_RAISES):
        return False
    if isinstance(stmt, ast.expr):  # a branch/loop test or match subject
        return not _expr_is_trivial(stmt)
    if isinstance(stmt, ast.Assign):
        return not (all(isinstance(t, ast.Name) for t in stmt.targets)
                    and _expr_is_trivial(stmt.value))
    if isinstance(stmt, ast.AnnAssign):
        return not (isinstance(stmt.target, ast.Name)
                    and _expr_is_trivial(stmt.value))
    if isinstance(stmt, ast.Return):
        return not _expr_is_trivial(stmt.value)
    if isinstance(stmt, ast.Expr):
        return not _expr_is_trivial(stmt.value)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False  # defining (not calling) a nested function
    return True


@dataclass
class _Context:
    """Where control transfers to from the suite being built.

    ``exc`` yields the current exception targets (handler heads and/or
    a finally copy and/or ``raise-exit``); ``ret`` the return target
    (``exit`` or a finally copy); ``brk``/``cont`` the loop targets
    when inside a loop. All are thunks because ``finally`` copies are
    materialized lazily, once per distinct continuation.
    """

    exc: Callable[[], list[int]]
    ret: Callable[[], int]
    brk: Callable[[], int] | None = None
    cont: Callable[[], int] | None = None


@dataclass
class _Frontier:
    """Dangling edges awaiting the next statement's head node."""

    edges: list[tuple[int, str]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.edges)


class _Builder:
    """Lowers one function body; one instance per :func:`build_cfg`."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 name: str, qualname: str):
        self.func = func
        self.cfg = CFG(name, qualname)

    def build(self) -> CFG:
        ctx = _Context(
            exc=lambda: [self.cfg.raise_exit],
            ret=lambda: self.cfg.exit,
        )
        head, frontier = self.block(self.func.body, ctx)
        if head is not None:
            self.cfg.add_edge(self.cfg.entry, head, "normal")
        else:  # syntactically impossible (bodies are non-empty), but safe
            self.cfg.add_edge(self.cfg.entry, self.cfg.exit, "normal")
        self.connect(frontier, self.cfg.exit)
        return self.cfg

    # -- plumbing ------------------------------------------------------------

    def connect(self, frontier: _Frontier, target: int) -> None:
        for src, kind in frontier.edges:
            self.cfg.add_edge(src, target, kind)

    def block(self, stmts: Iterable[ast.stmt],
              ctx: _Context) -> tuple[int | None, _Frontier]:
        """Build a suite; returns (head node id, normal-exit frontier).

        Building stops at the first statement whose frontier is empty
        (abrupt exit): the suite's remaining statements are dead code
        and deliberately get no nodes.
        """
        head: int | None = None
        frontier: _Frontier | None = None
        for stmt in stmts:
            stmt_head, stmt_frontier = self.statement(stmt, ctx)
            if head is None:
                head = stmt_head
            if frontier is not None:
                self.connect(frontier, stmt_head)
            frontier = stmt_frontier
            if not frontier:
                break
        return head, frontier if frontier is not None else _Frontier()

    def simple(self, stmt: ast.AST, ctx: _Context,
               label: str = "stmt") -> tuple[int, _Frontier]:
        node = self.cfg._new(label, stmt)
        if may_raise(stmt):
            for target in ctx.exc():
                self.cfg.add_edge(node.node_id, target, "exc")
        return node.node_id, _Frontier([(node.node_id, "normal")])

    # -- statement dispatch --------------------------------------------------

    def statement(self, stmt: ast.stmt,
                  ctx: _Context) -> tuple[int, _Frontier]:
        if isinstance(stmt, ast.If):
            return self.build_if(stmt, ctx)
        if isinstance(stmt, ast.While):
            return self.build_while(stmt, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self.build_for(stmt, ctx)
        if isinstance(stmt, ast.Try):
            return self.build_try(stmt, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.build_with(stmt, ctx)
        if isinstance(stmt, ast.Match):
            return self.build_match(stmt, ctx)
        if isinstance(stmt, ast.Return):
            node_id, _ = self.simple(stmt, ctx, "return")
            self.cfg.add_edge(node_id, ctx.ret(), "normal")
            return node_id, _Frontier()
        if isinstance(stmt, ast.Raise):
            node = self.cfg._new("raise", stmt)
            for target in ctx.exc():
                self.cfg.add_edge(node.node_id, target, "exc")
            return node.node_id, _Frontier()
        if isinstance(stmt, ast.Break):
            node = self.cfg._new("break", stmt)
            if ctx.brk is not None:
                self.cfg.add_edge(node.node_id, ctx.brk(), "normal")
            return node.node_id, _Frontier()
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new("continue", stmt)
            if ctx.cont is not None:
                self.cfg.add_edge(node.node_id, ctx.cont(), "back")
            return node.node_id, _Frontier()
        return self.simple(stmt, ctx)

    def build_if(self, stmt: ast.If, ctx: _Context) -> tuple[int, _Frontier]:
        test_id, _ = self.simple(stmt.test, ctx, "test")
        body_head, body_frontier = self.block(stmt.body, ctx)
        self.cfg.add_edge(test_id, body_head, "true")
        merged = _Frontier(list(body_frontier.edges))
        if stmt.orelse:
            else_head, else_frontier = self.block(stmt.orelse, ctx)
            self.cfg.add_edge(test_id, else_head, "false")
            merged.edges.extend(else_frontier.edges)
        else:
            merged.edges.append((test_id, "false"))
        return test_id, merged

    def build_while(self, stmt: ast.While,
                    ctx: _Context) -> tuple[int, _Frontier]:
        test_id, _ = self.simple(stmt.test, ctx, "loop-test")
        join = self.cfg._new("loop-exit")
        loop_ctx = _Context(exc=ctx.exc, ret=ctx.ret,
                            brk=lambda: join.node_id,
                            cont=lambda: test_id)
        body_head, body_frontier = self.block(stmt.body, loop_ctx)
        self.cfg.add_edge(test_id, body_head, "true")
        for src, _kind in body_frontier.edges:
            self.cfg.add_edge(src, test_id, "back")
        if stmt.orelse:
            else_head, else_frontier = self.block(stmt.orelse, ctx)
            self.cfg.add_edge(test_id, else_head, "false")
            self.connect(else_frontier, join.node_id)
        else:
            self.cfg.add_edge(test_id, join.node_id, "false")
        return test_id, _Frontier([(join.node_id, "normal")])

    def build_for(self, stmt: ast.For | ast.AsyncFor,
                  ctx: _Context) -> tuple[int, _Frontier]:
        head = self.cfg._new("loop-head", stmt)
        for target in ctx.exc():  # iterator setup/next can raise
            self.cfg.add_edge(head.node_id, target, "exc")
        join = self.cfg._new("loop-exit")
        loop_ctx = _Context(exc=ctx.exc, ret=ctx.ret,
                            brk=lambda: join.node_id,
                            cont=lambda: head.node_id)
        body_head, body_frontier = self.block(stmt.body, loop_ctx)
        self.cfg.add_edge(head.node_id, body_head, "iter")
        for src, _kind in body_frontier.edges:
            self.cfg.add_edge(src, head.node_id, "back")
        if stmt.orelse:
            else_head, else_frontier = self.block(stmt.orelse, ctx)
            self.cfg.add_edge(head.node_id, else_head, "exhaust")
            self.connect(else_frontier, join.node_id)
        else:
            self.cfg.add_edge(head.node_id, join.node_id, "exhaust")
        return head.node_id, _Frontier([(join.node_id, "normal")])

    def build_with(self, stmt: ast.With | ast.AsyncWith,
                   ctx: _Context) -> tuple[int, _Frontier]:
        enter_id, _ = self.simple(stmt, ctx, "with")
        body_head, body_frontier = self.block(stmt.body, ctx)
        if body_head is not None:
            self.cfg.add_edge(enter_id, body_head, "normal")
        return enter_id, body_frontier

    def build_match(self, stmt: ast.Match,
                    ctx: _Context) -> tuple[int, _Frontier]:
        subject_id, _ = self.simple(stmt.subject, ctx, "match")
        merged = _Frontier([(subject_id, "false")])  # no case matched
        for case in stmt.cases:
            case_head, case_frontier = self.block(case.body, ctx)
            self.cfg.add_edge(subject_id, case_head, "true")
            merged.edges.extend(case_frontier.edges)
        return subject_id, merged

    def build_try(self, stmt: ast.Try,
                  ctx: _Context) -> tuple[int, _Frontier]:
        # -- finally: wrap every continuation in a lazily-built copy --
        if stmt.finalbody:
            copies: dict[tuple[int, ...], int] = {}

            def finally_copy(targets: list[int]) -> int:
                key = tuple(sorted(targets))
                if key not in copies:
                    head, frontier = self.block(stmt.finalbody, ctx)
                    for target in targets:
                        # exception propagation resumes / control
                        # continues after the copy completes
                        self.connect(frontier, target)
                    copies[key] = head if head is not None else targets[0]
                return copies[key]

            exc_t = lambda: [finally_copy(ctx.exc())]        # noqa: E731
            ret_t = lambda: finally_copy([ctx.ret()])        # noqa: E731
            brk_t = (lambda: finally_copy([ctx.brk()])) \
                if ctx.brk is not None else None
            cont_t = (lambda: finally_copy([ctx.cont()])) \
                if ctx.cont is not None else None
        else:
            exc_t, ret_t, brk_t, cont_t = ctx.exc, ctx.ret, ctx.brk, ctx.cont

        # -- handlers ---------------------------------------------------------
        handler_ctx = _Context(exc=exc_t, ret=ret_t, brk=brk_t, cont=cont_t)
        handler_heads: list[int] = []
        out = _Frontier()
        catch_all = False
        for handler in stmt.handlers:
            if handler.type is None:
                catch_all = True
            else:
                for node in ast.walk(handler.type):
                    if isinstance(node, ast.Name) \
                            and node.id in CATCH_ALL_NAMES:
                        catch_all = True
            head = self.cfg._new("except", handler)
            before = len(self.cfg.nodes)
            body_head, body_frontier = self.block(handler.body, handler_ctx)
            body_ids = frozenset(range(before, len(self.cfg.nodes)))
            if body_head is not None:
                self.cfg.add_edge(head.node_id, body_head, "normal")
            handler_heads.append(head.node_id)
            out.edges.extend(body_frontier.edges)
            self.cfg.handler_regions.append(
                HandlerRegion(handler, head.node_id, body_ids))

        def body_exc() -> list[int]:
            targets = list(handler_heads)
            if not handler_heads or not catch_all:
                targets.extend(exc_t())
            return targets

        body_ctx = _Context(exc=body_exc, ret=ret_t, brk=brk_t, cont=cont_t)
        body_head, body_frontier = self.block(stmt.body, body_ctx)

        # a body of never-raising statements must still reach its
        # handlers (asynchronous exceptions exist); anchor on the head
        for head_id in handler_heads:
            if not self.cfg.preds[head_id] and body_head is not None:
                self.cfg.add_edge(body_head, head_id, "exc")

        if stmt.orelse and body_frontier:
            else_head, else_frontier = self.block(stmt.orelse, handler_ctx)
            if else_head is not None:
                self.connect(body_frontier, else_head)
            normal_exit = else_frontier
        else:
            normal_exit = body_frontier

        if stmt.finalbody:
            # normal completion (and handler fall-through) runs the
            # finally suite too — a fresh copy flowing onward
            combined = _Frontier(normal_exit.edges + out.edges)
            if combined:
                fin_head, fin_frontier = self.block(stmt.finalbody, ctx)
                if fin_head is not None:
                    self.connect(combined, fin_head)
                    result = fin_frontier
                else:
                    result = combined
            else:
                result = _Frontier()
        else:
            result = _Frontier(normal_exit.edges + out.edges)

        head = body_head if body_head is not None else (
            handler_heads[0] if handler_heads else self.cfg._new(
                "stmt", stmt).node_id)
        return head, result


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef,
              name: str = "<module>", qualname: str | None = None) -> CFG:
    """Build the CFG of one function definition."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise AnalysisError(
            f"build_cfg wants a function definition, got "
            f"{type(func).__name__}")
    return _Builder(func, name, qualname or func.name).build()


def function_defs(tree: ast.Module) -> list[tuple[str, ast.AST | None,
                                                  ast.FunctionDef]]:
    """Every function in a module: (qualname, enclosing class, def).

    Nested functions and methods are yielded separately, each analyzed
    against its own body (the framework is intraprocedural).
    """
    found: list[tuple[str, ast.AST | None, ast.FunctionDef]] = []

    def walk(body: Iterable[ast.stmt], prefix: str,
             enclosing_class: ast.ClassDef | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                found.append((qualname, enclosing_class, node))
                walk(node.body, f"{qualname}.", enclosing_class)
            elif isinstance(node, ast.ClassDef):
                walk(node.body, f"{prefix}{node.name}.", node)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                # defs behind guards (TYPE_CHECKING, fallbacks) count too
                for child_body in (getattr(node, "body", []),
                                   getattr(node, "orelse", []),
                                   getattr(node, "finalbody", [])):
                    walk(child_body, prefix, enclosing_class)
                for handler in getattr(node, "handlers", []):
                    walk(handler.body, prefix, enclosing_class)
    walk(tree.body, "", None)
    return found


__all__ = [
    "CATCH_ALL_NAMES",
    "CFG",
    "CFGNode",
    "EDGE_KINDS",
    "HandlerRegion",
    "build_cfg",
    "function_defs",
    "may_raise",
]
