"""Temporal-composition and quality rules.

MG004 — non-commensurate time systems composed or derived together;
MG005 — same-kind components overlapping with no spatial disambiguation;
MG006 — dead air: gaps in a temporal composition's timeline;
MG007 — a derivation silently downgrading the descriptive quality factor.
"""

from __future__ import annotations

import itertools

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.graph import GraphContext, Placement, static_time_system
from repro.analysis.rules import graph_rule
from repro.core.media_types import MediaKind
from repro.core.quality import AUDIO_QUALITY, VIDEO_QUALITY, QualityLadder
from repro.errors import QualityError
from repro.obs.events import Severity


def _time_based(placement: Placement) -> bool:
    return placement.obj.media_type.kind.is_time_based


@graph_rule(
    "MG004", "time-system mismatch", Severity.WARNING,
    doc="Components or derivation inputs run on non-commensurate discrete "
        "time systems (D_f); synchronized presentation needs resampling.",
)
def check_time_systems(context: GraphContext) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    seen: set[tuple[str, str]] = set()

    def note(location: str, a, b, what: str) -> None:
        key = (location, f"{a.frequency}/{b.frequency}")
        if key in seen:
            return
        seen.add(key)
        findings.append(Diagnostic(
            rule="MG004", severity=Severity.WARNING, location=location,
            message=(
                f"{what} on non-commensurate time systems "
                f"{a} and {b}; synchronization requires resampling"
            ),
            hint="resample one side (change-of-timing derivation) or pick "
                 "commensurate frequencies",
        ))

    timed = [
        (p, static_time_system(p.obj))
        for p in context.placements
        if _time_based(p) and p.interval is not None
    ]
    for (pa, tsa), (pb, tsb) in itertools.combinations(timed, 2):
        if tsa is None or tsb is None or tsa.is_commensurate(tsb):
            continue
        if not pa.interval.intersects(pb.interval):
            continue
        note(pa.path, tsa, tsb, f"components {pa.path!r} and {pb.path!r}")

    for derived in context.derived:
        inputs = derived.derivation_object.inputs
        systems = [
            (inp, static_time_system(inp)) for inp in inputs
            if inp.media_type.kind.is_time_based
        ]
        for (ia, tsa), (ib, tsb) in itertools.combinations(systems, 2):
            if tsa is None or tsb is None or tsa.is_commensurate(tsb):
                continue
            note(f"derived:{derived.name}", tsa, tsb,
                 f"derivation inputs {ia.name!r} and {ib.name!r}")
    return findings


@graph_rule(
    "MG005", "overlap conflict", Severity.ERROR,
    doc="Two same-kind components overlap in time with no spatial "
        "placement to disambiguate; only one can be presented.",
)
def check_overlaps(context: GraphContext) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    timed = [
        p for p in context.placements
        if _time_based(p) and p.interval is not None
        and not p.interval.is_instant
    ]
    for pa, pb in itertools.combinations(timed, 2):
        if pa.obj.kind is not pb.obj.kind:
            continue
        if pa.has_spatial or pb.has_spatial:
            continue
        if not pa.interval.intersects(pb.interval):
            continue
        # Overlapping audio is mixing — plausible intent; overlapping
        # video with no spatial layout cannot both be shown.
        visual = pa.obj.kind in (MediaKind.VIDEO, MediaKind.ANIMATION)
        severity = Severity.ERROR if visual else Severity.WARNING
        overlap = pa.interval.intersection(pb.interval)
        findings.append(Diagnostic(
            rule="MG005", severity=severity, location=pa.path,
            message=(
                f"{pa.obj.kind.value} components {pa.path!r} and "
                f"{pb.path!r} overlap during {overlap}"
            ),
            hint="give one a spatial placement, shift its start offset, "
                 "or merge them with a transition derivation",
        ))
    return findings


@graph_rule(
    "MG006", "timeline gap", Severity.WARNING,
    doc="Dead air: an interior span of the composed timeline where no "
        "time-based component is presented.",
)
def check_gaps(context: GraphContext) -> list[Diagnostic]:
    intervals = sorted(
        (p.interval for p in context.placements
         if _time_based(p) and p.interval is not None
         and not p.interval.is_instant),
        key=lambda iv: (iv.start, iv.end),
    )
    if len(intervals) < 2:
        return []
    findings: list[Diagnostic] = []
    cursor = intervals[0].end
    for interval in intervals[1:]:
        if interval.start > cursor:
            findings.append(Diagnostic(
                rule="MG006", severity=Severity.WARNING,
                location=context.subject,
                message=(
                    f"nothing is presented during "
                    f"[{cursor.to_timestamp()}, "
                    f"{interval.start.to_timestamp()})"
                ),
                hint="close the gap with a start-offset change or fill it "
                     "with a component",
            ))
        if interval.end > cursor:
            cursor = interval.end
    return findings


def _ladder_for(kind: MediaKind) -> QualityLadder | None:
    if kind in (MediaKind.VIDEO, MediaKind.ANIMATION, MediaKind.IMAGE):
        return VIDEO_QUALITY
    if kind in (MediaKind.AUDIO, MediaKind.MUSIC):
        return AUDIO_QUALITY
    return None


def _rank(obj) -> int | None:
    ladder = _ladder_for(obj.media_type.kind)
    name = obj.descriptor.get("quality_factor")
    if ladder is None or name is None:
        return None
    try:
        return ladder.get(name).rank
    # repro: suppress DF006 — unknown ladder name means "unrankable", not a failure
    except QualityError:
        return None


@graph_rule(
    "MG007", "silent quality downgrade", Severity.WARNING,
    doc="A derived object's quality factor is below its inputs' without "
        "the derivation being asked for it (no quality parameter).",
)
def check_quality(context: GraphContext) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    floor = context.quality_floor
    for derived in context.derived:
        if "quality_factor" in derived.derivation_object.params:
            continue  # requested, not silent
        out_rank = _rank(derived)
        if out_rank is None:
            continue
        in_ranks = [
            r for r in (
                _rank(inp) for inp in derived.derivation_object.inputs
            ) if r is not None
        ]
        if not in_ranks:
            continue
        best_in = max(in_ranks)
        if out_rank >= best_in:
            continue
        if floor is not None and (out_rank >= floor or best_in < floor):
            continue  # the drop does not cross the configured threshold
        findings.append(Diagnostic(
            rule="MG007", severity=Severity.WARNING,
            location=f"derived:{derived.name}",
            message=(
                f"derivation {derived.derivation_object.derivation.name!r} "
                f"silently downgrades quality rank {best_in} -> {out_rank} "
                f"({derived.descriptor.get('quality_factor')!r})"
            ),
            hint="pass quality_factor explicitly to the derivation, or "
                 "raise the derived descriptor's quality",
        ))
    return findings
