"""Media-graph rule registry.

Each rule is a function ``(GraphContext) -> list[Diagnostic]`` registered
under a stable ``MG###`` id via :func:`graph_rule`. The decorator also
records the rule's metadata in the shared
:data:`~repro.analysis.diagnostics.rule_registry`, so ``--list-rules``
and the DESIGN.md table stay in sync with the code.

Importing this package pulls in the rule modules, which register
themselves as a side effect — the same pattern the derivation registry
uses.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.diagnostics import Diagnostic, rule_registry
from repro.obs.events import Severity

#: rule id -> rule function. Execution order is sorted id order.
GRAPH_RULES: dict[str, Callable] = {}


def graph_rule(rule_id: str, title: str, severity: Severity, doc: str = ""):
    """Register a media-graph rule under ``rule_id``."""

    def decorate(func: Callable) -> Callable:
        rule_registry.register(rule_id, title, severity, engine="graph",
                               doc=doc or (func.__doc__ or "").strip())
        GRAPH_RULES[rule_id] = func
        func.rule_id = rule_id
        func.default_severity = severity
        return func

    return decorate


# Rule modules register on import (order fixes nothing; ids sort at run).
from repro.analysis.rules import composition as _composition  # noqa: E402,F401
from repro.analysis.rules import derivation as _derivation  # noqa: E402,F401
from repro.analysis.rules import feasibility as _feasibility  # noqa: E402,F401

__all__ = ["Diagnostic", "GRAPH_RULES", "graph_rule"]
