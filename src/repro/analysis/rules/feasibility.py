"""Static §4.2 feasibility: store-or-expand and sustained data rate.

"If the expansion can be done in real-time, then the derived object is
all that needs be stored. Otherwise ... it may be necessary to store the
expansion." The dynamic side of this decision lives in
:mod:`repro.engine.resources`; these rules answer it *before* running
anything, from the :class:`~repro.engine.player.CostModel` alone:

MG008 — a derived component whose worst-case expansion cost exceeds the
time available before its first element is due: it must be materialized
ahead of playback (expand-on-demand is unsafe);
MG009 — the composed plan demands a sustained data rate beyond the
available bandwidth at some point of the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.graph import (
    GraphContext,
    Placement,
    static_bytes,
    static_rate,
)
from repro.analysis.rules import graph_rule
from repro.core.rational import Rational
from repro.obs.events import Severity


@dataclass(frozen=True)
class DerivationVerdict:
    """§4.2 classification of one placed derived component."""

    path: str
    name: str
    cost: Rational       # worst-case expansion seconds (CostModel-priced)
    budget: Rational     # seconds available before its first element
    must_materialize: bool


def classify_derivations(context: GraphContext) -> list[DerivationVerdict]:
    """Classify every placed, unexpanded derived component.

    The worst-case expansion cost is one non-contiguous pass over the
    inputs' bytes plus the (conservatively equal) output bytes — the
    same shape :meth:`Player._expand_cost_estimate` charges, but priced
    from static sizes so nothing expands. The budget is the component's
    start time on the composed timeline plus the checker's startup
    budget: everything due later than that leaves time to expand.
    """
    cost_model = context.cost_model
    verdicts: list[DerivationVerdict] = []
    if cost_model is None:
        return verdicts
    for placement in context.placements:
        obj = placement.obj
        if not obj.is_derived or obj.is_materialized:
            continue
        input_bytes = static_bytes(obj)
        cost = cost_model.element_cost(2 * input_bytes, contiguous=False)
        budget = context.startup_budget + placement.start
        verdicts.append(DerivationVerdict(
            path=placement.path,
            name=obj.name,
            cost=cost,
            budget=budget,
            must_materialize=cost > budget,
        ))
    return verdicts


@graph_rule(
    "MG008", "must materialize before playback", Severity.WARNING,
    doc="A derived component's worst-case expansion cost exceeds the "
        "time available before its first element is due; expand-on-"
        "demand would miss the deadline (§4.2: store the expansion).",
)
def check_expansion_cost(context: GraphContext) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for verdict in classify_derivations(context):
        if not verdict.must_materialize:
            continue
        findings.append(Diagnostic(
            rule="MG008", severity=Severity.WARNING, location=verdict.path,
            message=(
                f"expanding {verdict.name!r} costs "
                f"{float(verdict.cost):.3f}s but only "
                f"{float(verdict.budget):.3f}s is available before its "
                f"first element; expand-on-demand is unsafe"
            ),
            hint="materialize() the derived object before playback, "
                 "attach a DerivationCache, or raise startup_budget",
        ))
    return findings


def _active_rate(placements: list[Placement], at: Rational) -> tuple[Rational, list[str]]:
    total = Rational(0)
    names: list[str] = []
    for p in placements:
        if p.interval is None or not p.interval.contains_time(at):
            continue
        rate = static_rate(p.obj)
        if rate is None:
            continue
        total += rate
        names.append(p.path)
    return total, names


@graph_rule(
    "MG009", "data rate infeasible", Severity.ERROR,
    doc="The plan requires a sustained data rate beyond the available "
        "bandwidth somewhere on the timeline; playback must underrun.",
)
def check_rate(context: GraphContext) -> list[Diagnostic]:
    bandwidth = context.bandwidth
    if bandwidth is None:
        return []
    timed = [
        p for p in context.placements
        if p.interval is not None and not p.interval.is_instant
        and p.obj.media_type.kind.is_time_based
    ]
    findings: list[Diagnostic] = []
    reported: set[str] = set()
    for start in sorted({p.interval.start for p in timed}):
        required, names = _active_rate(timed, start)
        if required <= bandwidth:
            continue
        key = ",".join(sorted(names))
        if key in reported:
            continue  # same component set: one finding per overload group
        reported.add(key)
        findings.append(Diagnostic(
            rule="MG009", severity=Severity.ERROR,
            location=context.subject,
            message=(
                f"from {start.to_timestamp()} the plan needs "
                f"{float(required) / 1024:.0f} KiB/s but only "
                f"{float(bandwidth) / 1024:.0f} KiB/s is available "
                f"({', '.join(sorted(names))})"
            ),
            hint="stagger the overlapping components, lower their "
                 "quality factor, or provision more bandwidth",
        ))
    return findings
