"""Structural rules over derivation and composition graphs.

MG001 — derivation/composition cycles (a graph that can never expand);
MG002 — dangling inputs (placement rows beyond the BLOB, or a sequence
reference its interpretation no longer maps);
MG003 — media-kind mismatches a derived object's declaration hides.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.graph import GraphContext
from repro.analysis.rules import graph_rule
from repro.core.media_object import InterpretedMediaObject
from repro.errors import InterpretationError
from repro.obs.events import Severity


@graph_rule(
    "MG001", "derivation/composition cycle", Severity.ERROR,
    doc="A multimedia object or derivation transitively contains itself; "
        "expansion would never terminate.",
)
def check_cycles(context: GraphContext) -> list[Diagnostic]:
    return [
        Diagnostic(
            rule="MG001", severity=Severity.ERROR, location=path,
            message="object graph contains itself; expansion would not "
                    "terminate",
            hint="break the cycle: a component or derivation input must "
                 "not reach its own ancestor",
        )
        for path in context.cycles
    ]


def _dangling_interpreted(obj: InterpretedMediaObject) -> str | None:
    """Why ``obj``'s placement cannot be honoured, or None if it can."""
    interp = obj.interpretation
    if obj.sequence_name not in interp:
        return (
            f"sequence {obj.sequence_name!r} is no longer mapped by "
            f"interpretation {interp.name!r}"
        )
    length = len(interp.blob)
    for e in interp.sequence(obj.sequence_name):
        if e.blob_offset + e.size > length:
            return (
                f"element {e.element_number} spans "
                f"[{e.blob_offset}, {e.blob_offset + e.size}) beyond "
                f"BLOB length {length}"
            )
    return None


@graph_rule(
    "MG002", "dangling input", Severity.ERROR,
    doc="A placement or derivation input references bytes that are not "
        "there: a sequence missing from its interpretation, or placement "
        "rows beyond the BLOB.",
)
def check_dangling(context: GraphContext) -> list[Diagnostic]:
    findings: list[Diagnostic] = []

    def note(location: str, reason: str) -> None:
        findings.append(Diagnostic(
            rule="MG002", severity=Severity.ERROR, location=location,
            message=f"dangling input: {reason}",
            hint="re-run Interpretation.validate() after editing BLOBs; "
                 "rebuild the interpretation before playback",
        ))

    seen: set[int] = set()
    for placement in context.placements:
        if isinstance(placement.obj, InterpretedMediaObject):
            seen.add(id(placement.obj))
            reason = _dangling_interpreted(placement.obj)
            if reason:
                note(placement.path, reason)
    for derived in context.derived:
        for inp in derived.derivation_object.inputs:
            if isinstance(inp, InterpretedMediaObject) and id(inp) not in seen:
                seen.add(id(inp))
                reason = _dangling_interpreted(inp)
                if reason:
                    note(f"{derived.name}<-{inp.name}", reason)
    for interp in context.interpretations:
        try:
            interp.validate()
        except InterpretationError as exc:
            note(f"interpretation:{interp.name}", str(exc))
    return findings


@graph_rule(
    "MG003", "media-kind mismatch", Severity.ERROR,
    doc="A derived object declares a kind other than its derivation "
        "produces, or a kind-generic derivation mixes input kinds.",
)
def check_kinds(context: GraphContext) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for derived in context.derived:
        derivation = derived.derivation_object.derivation
        if not derivation.any_kind and derived.kind is not derivation.result_kind:
            findings.append(Diagnostic(
                rule="MG003", severity=Severity.ERROR,
                location=f"derived:{derived.name}",
                message=(
                    f"declared kind {derived.kind.value!r} but derivation "
                    f"{derivation.name!r} produces "
                    f"{derivation.result_kind.value!r}"
                ),
                hint="pass a descriptor of the result kind to derive(), "
                     "or fix the derivation's result_kind",
            ))
        if derivation.any_kind and len(derived.derivation_object.inputs) > 1:
            kinds = {
                inp.kind for inp in derived.derivation_object.inputs
            }
            if len(kinds) > 1:
                listed = ", ".join(sorted(k.value for k in kinds))
                findings.append(Diagnostic(
                    rule="MG003", severity=Severity.ERROR,
                    location=f"derived:{derived.name}",
                    message=(
                        f"kind-generic derivation {derivation.name!r} "
                        f"mixes input kinds ({listed})"
                    ),
                    hint="a timing derivation applies to streams of one "
                         "kind at a time; derive each kind separately",
                ))
    return findings
