"""Monotone lattices for the dataflow fixpoint solver.

A lattice here is the small protocol the worklist solver needs:
``bottom()``, ``join(a, b)`` and ``leq(a, b)``. Elements must be
hashable/immutable values (frozensets, tuples, mapping proxies frozen
as tuples) so states compare by value and the solver's convergence
test is exact.

The concrete lattices the checkers use:

* :class:`PowersetLattice` — finite sets of facts under union. The
  workhorse: typestate facts ("pin taken at line 41"), taint marks
  ("variable t carries a float"), type marks ("variable s is a set").
  May-analysis falls out of the union join: a fact present at a node
  means *some* path establishes it.
* :class:`MapLattice` — pointwise lift of a value lattice over a
  finite key space, represented as a frozenset of (key, value) pairs
  joined per key.

Both are finite-height when the fact universe is finite (it is: facts
are drawn from the statements of one function), which with monotone
transfer functions is the classical termination argument the property
suite re-derives on random CFGs.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Tuple

from repro.errors import AnalysisError


class PowersetLattice:
    """Finite subsets under union; bottom is the empty set."""

    def bottom(self) -> FrozenSet:
        return frozenset()

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b

    def leq(self, a: FrozenSet, b: FrozenSet) -> bool:
        return a <= b


class MapLattice:
    """Pointwise lift: states are frozensets of ``(key, value)`` pairs.

    ``join`` merges per key with the value lattice's join; a key absent
    from a state is at the value lattice's bottom.
    """

    def __init__(self, values) -> None:
        if not all(hasattr(values, attr)
                   for attr in ("bottom", "join", "leq")):
            raise AnalysisError(
                "MapLattice needs a value lattice with "
                "bottom/join/leq")
        self.values = values

    def bottom(self) -> FrozenSet[Tuple[Hashable, Hashable]]:
        return frozenset()

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        merged: dict = {}
        for key, value in list(a) + list(b):
            if key in merged:
                merged[key] = self.values.join(merged[key], value)
            else:
                merged[key] = value
        bottom = self.values.bottom()
        return frozenset(
            (key, value) for key, value in merged.items() if value != bottom
        )

    def leq(self, a: FrozenSet, b: FrozenSet) -> bool:
        other = dict(b)
        bottom = self.values.bottom()
        return all(
            self.values.leq(value, other.get(key, bottom))
            for key, value in a
        )


__all__ = ["MapLattice", "PowersetLattice"]
