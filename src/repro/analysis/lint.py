"""AST linter enforcing the library's own contracts (rules ``LN###``).

The repo promises bit-identical reruns and one error taxonomy; this
linter makes those promises checkable:

* **LN001** — no wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now`` …) outside sanctioned modules. Simulated clocks are
  the determinism contract; :mod:`repro.engine.resources` is sanctioned
  because measuring real expansion cost is its whole purpose.
* **LN002** — no unseeded randomness: the stateful global ``random``
  module is banned outside the allowlist, and ``default_rng()`` /
  ``Random()`` without a seed argument are banned everywhere.
* **LN003** — every ``raise`` uses the :class:`~repro.errors.ReproError`
  taxonomy; builtin exceptions are reserved for the interpreter
  (``NotImplementedError`` stays the abstract-method idiom).
* **LN004** — no mutable default arguments.
* **LN005** — ``repro.api.__all__`` matches the facade's actual public
  bindings, both directions.
* **LN006** — flight-recorder emissions (``*.events.record(...)``)
  always pass a severity first, so the recorder's ring can be filtered
  by level without guessing.
* **LN007** — durability-critical writes route through the durability
  layer: the builtin ``open()`` with a write mode is banned outside
  :mod:`repro.durability.fs` (the single raw-IO funnel), so every
  mutation can be crash-tested through the simulated medium and the
  WAL/atomic-commit helpers.
* **LN008** — flight-recorder events carry a simulated-clock
  timestamp: an ``at=`` keyword whose value is a wall-clock call is
  banned everywhere, and modules in :data:`SIMCLOCK_EVENT_MODULES`
  (which emit outside any recorder-installed clock scope) must pass
  ``at=`` explicitly so their events never fall back to the logical
  tick counter mid-serve.

Pure ``ast`` — nothing is imported or executed, so linting the codebase
cannot perturb it.
"""

from __future__ import annotations

import ast
import builtins
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, rule_registry
from repro.errors import AnalysisError
from repro.obs.events import Severity

#: Modules (repo-relative, forward slashes) allowed to read wall clocks.
WALLCLOCK_ALLOWLIST: frozenset[str] = frozenset({
    "repro/engine/resources.py",
})

#: Modules allowed to use module-level randomness (all of them seed
#: explicitly; the allowlist records that the reviewer checked).
RNG_ALLOWLIST: frozenset[str] = frozenset({
    "repro/media/frames.py",
    "repro/media/signals.py",
    "repro/bench/workloads.py",
})

#: Modules allowed to call the builtin ``open()`` with a write mode.
#: Everything else writes through ``repro.durability`` (WAL, atomic
#: commit, or a Filesystem handle) so the crash matrix can intercept it.
RAW_WRITE_ALLOWLIST: frozenset[str] = frozenset({
    "repro/durability/fs.py",
})

#: Modules whose flight-recorder emissions must pass ``at=`` explicitly
#: (LN008): they record during a simulated run but outside any
#: recorder-installed clock scope, so an omitted timestamp would
#: silently mix logical ticks into a simulated-time series.
SIMCLOCK_EVENT_MODULES: frozenset[str] = frozenset({
    "repro/obs/telemetry.py",
})

#: Builtin raises that stay legitimate: abstract methods and iterator
#: protocol.
SANCTIONED_BUILTIN_RAISES: frozenset[str] = frozenset({
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
})

_BUILTIN_EXCEPTIONS: frozenset[str] = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

_WALLCLOCK_CALLS: frozenset[tuple[str, str]] = frozenset({
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "process_time"),
    ("time", "sleep"), ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "today"), ("date", "today"),
})

for _rule, _title, _sev, _doc in (
    ("LN001", "wall-clock read", Severity.ERROR,
     "Wall-clock or sleep call outside the sanctioned modules; the "
     "determinism contract requires simulated time."),
    ("LN002", "unseeded randomness", Severity.ERROR,
     "Global random module, or an RNG constructed without a seed."),
    ("LN003", "builtin exception raised", Severity.ERROR,
     "A raise bypasses the ReproError taxonomy."),
    ("LN004", "mutable default argument", Severity.ERROR,
     "A def uses a list/dict/set literal (or constructor) as a default."),
    ("LN005", "api.__all__ out of sync", Severity.ERROR,
     "repro.api exports and __all__ disagree."),
    ("LN006", "severity-less event emission", Severity.ERROR,
     "A flight-recorder record() call does not lead with a severity."),
    ("LN007", "raw write bypasses the durability layer", Severity.ERROR,
     "A builtin open() with a write mode outside repro.durability.fs; "
     "such writes are invisible to the crash matrix."),
    ("LN008", "wall-clock event timestamp", Severity.ERROR,
     "A flight-recorder record() stamps at= from a wall clock, or a "
     "module required to pass simulated time omits at= entirely."),
):
    rule_registry.register(_rule, _title, _sev, engine="lint", doc=_doc)


def _call_name(node: ast.Call) -> tuple[str | None, str]:
    """(receiver, method) for a call: ``time.sleep(1)`` -> ("time", "sleep")."""
    func = node.func
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id, func.attr
        if isinstance(value, ast.Attribute):
            return value.attr, func.attr
        return None, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, ""


def _has_seed_argument(node: ast.Call) -> bool:
    if any(not isinstance(a, ast.Constant) or a.value is not None
           for a in node.args):
        return True
    return any(kw.arg == "seed" and not (
        isinstance(kw.value, ast.Constant) and kw.value.value is None
    ) for kw in node.keywords)


def _is_severity_expression(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "Severity":
            return True
        return node.attr == "severity"
    if isinstance(node, ast.Name):
        return "severity" in node.id.lower()
    if isinstance(node, ast.Subscript):
        # a lookup in a severity table, e.g. _TRANSITION_SEVERITY[state]
        return _is_severity_expression(node.value)
    if isinstance(node, ast.Call):
        _, method = _call_name(node)
        return method == "coerce"
    return False


class _FileLinter(ast.NodeVisitor):
    """One file's pass for LN001-LN004 and LN006."""

    def __init__(self, location: str, report: DiagnosticReport,
                 ignore: frozenset[str]):
        self.location = location
        self.report = report
        self.ignore = ignore
        self.allow_wallclock = location in WALLCLOCK_ALLOWLIST
        self.allow_rng = location in RNG_ALLOWLIST
        self.allow_raw_write = location in RAW_WRITE_ALLOWLIST
        self.require_event_at = location in SIMCLOCK_EVENT_MODULES
        self._function_stack: list[str] = []

    def _emit(self, rule: str, line: int, message: str, hint: str) -> None:
        if rule in self.ignore:
            return
        self.report.add(Diagnostic(
            rule=rule, severity=rule_registry.get(rule).default_severity,
            location=self.location, line=line, message=message, hint=hint,
        ))

    # -- LN002: imports of the global random module --------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if not self.allow_rng:
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    self._emit(
                        "LN002", node.lineno,
                        "import of the stateful global random module",
                        "use numpy.random.default_rng(seed), or add this "
                        "module to RNG_ALLOWLIST with a review note",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.allow_rng and node.module \
                and node.module.split(".")[0] == "random":
            self._emit(
                "LN002", node.lineno,
                "import from the stateful global random module",
                "use numpy.random.default_rng(seed), or add this module "
                "to RNG_ALLOWLIST with a review note",
            )
        self.generic_visit(node)

    # -- calls: LN001, LN002, LN006 ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        receiver, method = _call_name(node)
        if (not self.allow_wallclock
                and (receiver, method) in _WALLCLOCK_CALLS):
            self._emit(
                "LN001", node.lineno,
                f"wall-clock call {receiver}.{method}()",
                "charge simulated time from the CostModel, or add the "
                "module to WALLCLOCK_ALLOWLIST with a review note",
            )
        if method in ("default_rng", "Random") \
                and not _has_seed_argument(node):
            self._emit(
                "LN002", node.lineno,
                f"{method}() constructed without a seed",
                "pass an explicit seed so reruns are bit-identical",
            )
        if not self.allow_rng and receiver == "random" \
                and method not in ("default_rng", "Random"):
            self._emit(
                "LN002", node.lineno,
                f"call into global random state: random.{method}()",
                "use a seeded numpy Generator instead",
            )
        if (not self.allow_raw_write and receiver is None
                and method == "open"):
            mode = self._open_mode(node)
            if mode is not None and any(ch in mode for ch in "wax+"):
                self._emit(
                    "LN007", node.lineno,
                    f"builtin open(..., {mode!r}) bypasses the "
                    "durability layer",
                    "write through repro.durability (atomic_write_bytes, "
                    "a WriteAheadLog, or a Filesystem handle) so the "
                    "crash matrix can intercept the write",
                )
        if method == "record" and self._is_events_receiver(node.func):
            first = node.args[0] if node.args else None
            if first is None or not _is_severity_expression(first):
                self._emit(
                    "LN006", node.lineno,
                    "flight-recorder record() without a leading severity",
                    "pass a Severity (e.g. Severity.WARNING) as the "
                    "first argument",
                )
            at = next((kw.value for kw in node.keywords
                       if kw.arg == "at"), None)
            if isinstance(at, ast.Call) \
                    and _call_name(at) in _WALLCLOCK_CALLS:
                self._emit(
                    "LN008", node.lineno,
                    "flight-recorder record() stamps at= from a wall "
                    "clock",
                    "pass the simulated clock (loop.clock.now()) or a "
                    "logical tick instead",
                )
            elif at is None and self.require_event_at:
                self._emit(
                    "LN008", node.lineno,
                    "flight-recorder record() without an explicit "
                    "simulated-clock at=",
                    "this module emits outside a recorder clock scope; "
                    "pass at=<simulated time> so events never fall "
                    "back to logical ticks",
                )
        self.generic_visit(node)

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        """The constant mode string of an ``open()`` call, if present."""
        mode: ast.AST | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    @staticmethod
    def _is_events_receiver(func: ast.AST) -> bool:
        if not isinstance(func, ast.Attribute):
            return False
        value = func.value
        if isinstance(value, ast.Name):
            return value.id == "events"
        if isinstance(value, ast.Attribute):
            return value.attr == "events"
        return False

    # -- LN003: raises ---------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        # PEP 562 module __getattr__ (and class __getattribute__) MUST
        # raise a genuine AttributeError for hasattr/import machinery
        protocol_raise = (
            name == "AttributeError"
            and self._function_stack
            and self._function_stack[-1] in ("__getattr__",
                                             "__getattribute__")
        )
        if name in _BUILTIN_EXCEPTIONS \
                and name not in SANCTIONED_BUILTIN_RAISES \
                and not protocol_raise:
            self._emit(
                "LN003", node.lineno,
                f"raises builtin {name}; library errors use the "
                "ReproError taxonomy",
                "raise a repro.errors subclass (add one inheriting the "
                "builtin if callers catch it)",
            )
        self.generic_visit(node)

    # -- LN004: mutable defaults ----------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            )
            if isinstance(default, ast.Call):
                _, method = _call_name(default)
                mutable = method in ("list", "dict", "set", "bytearray")
            if mutable:
                self._emit(
                    "LN004", default.lineno,
                    f"mutable default argument in {node.name}()",
                    "default to None (or a tuple/frozenset) and build "
                    "the mutable value inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()


def _public_bindings(tree: ast.Module) -> set[str]:
    """Top-level names a module binds, underscore- and dunder-free."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return {n for n in names if not n.startswith("_")}


def _declared_all(tree: ast.Module) -> list[str] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return [
                            el.value for el in node.value.elts
                            if isinstance(el, ast.Constant)
                            and isinstance(el.value, str)
                        ]
    return None


def _check_api_all(location: str, tree: ast.Module,
                   report: DiagnosticReport,
                   ignore: frozenset[str]) -> None:
    if "LN005" in ignore:
        return
    declared = _declared_all(tree)
    severity = rule_registry.get("LN005").default_severity

    def emit(message: str) -> None:
        report.add(Diagnostic(
            rule="LN005", severity=severity, location=location, line=1,
            message=message,
            hint="keep repro.api.__all__ and the facade's imports in "
                 "lockstep",
        ))

    if declared is None:
        emit("facade module declares no __all__")
        return
    bindings = _public_bindings(tree)
    for name in sorted(set(declared) - bindings):
        emit(f"__all__ exports {name!r} but the module never binds it")
    for name in sorted(bindings - set(declared)):
        emit(f"public binding {name!r} is missing from __all__")


class LintEngine:
    """Lints a tree of Python sources against the ``LN###`` rules.

    ``root`` is the directory whose files are linted; locations are
    reported relative to its parent (so linting ``src/repro`` reports
    ``repro/engine/player.py``). ``facade`` names the module checked by
    LN005 (relative to ``root``).
    """

    def __init__(self, root: Path | str | None = None,
                 ignore: Iterable[str] = (),
                 facade: str = "api.py"):
        if root is None:
            import repro

            root = Path(repro.__file__).parent
        self.root = Path(root)
        if not self.root.is_dir():
            raise AnalysisError(f"lint root {self.root} is not a directory")
        self.ignore = frozenset(ignore)
        self.facade = facade

    def files(self) -> list[Path]:
        return sorted(self.root.rglob("*.py"))

    def run(self) -> DiagnosticReport:
        report = DiagnosticReport(subject=f"lint:{self.root.name}")
        for path in self.files():
            self.lint_file(path, report)
        return report

    def lint_file(self, path: Path,
                  report: DiagnosticReport | None = None) -> DiagnosticReport:
        if report is None:
            report = DiagnosticReport(subject=f"lint:{path.name}")
        location = path.relative_to(self.root.parent).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            report.add(Diagnostic(
                rule="LN003", severity=Severity.CRITICAL,
                location=location, line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
            ))
            return report
        _FileLinter(location, report, self.ignore).visit(tree)
        if path.relative_to(self.root).as_posix() == self.facade:
            _check_api_all(location, tree, report, self.ignore)
        return report


def lint_repo(ignore: Iterable[str] = ()) -> DiagnosticReport:
    """Lint the installed ``repro`` package sources."""
    return LintEngine(ignore=ignore).run()


def lint_paths(paths: Iterable[Path | str],
               ignore: Iterable[str] = ()) -> DiagnosticReport:
    """Lint loose files/directories (fixtures, scripts)."""
    report = DiagnosticReport(subject="lint:paths")
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            report.merge(LintEngine(entry, ignore=ignore).run())
        else:
            engine = LintEngine(entry.parent, ignore=ignore)
            engine.lint_file(entry, report)
    return report


__all__ = [
    "LintEngine",
    "RAW_WRITE_ALLOWLIST",
    "RNG_ALLOWLIST",
    "SANCTIONED_BUILTIN_RAISES",
    "SIMCLOCK_EVENT_MODULES",
    "WALLCLOCK_ALLOWLIST",
    "lint_paths",
    "lint_repo",
]
