"""Static verification layer: graph checker, linter and dataflow engine.

Three engines share one diagnostic vocabulary
(:mod:`repro.analysis.diagnostics`):

* the **media-graph checker** (:mod:`repro.analysis.graph`) verifies
  interpretation/derivation/composition graphs without expanding them —
  cycles, dangling inputs, time-system and kind mismatches, timeline
  conflicts, and the §4.2 store-or-expand decision priced statically;
* the **codebase linter** (:mod:`repro.analysis.lint`) walks the
  library's own sources enforcing the repo's determinism and
  error-taxonomy contracts, one statement at a time;
* the **dataflow engine** (:mod:`repro.analysis.dataflow`) builds
  per-function CFGs (:mod:`repro.analysis.cfg`), runs a monotone
  fixpoint solver over them (:mod:`repro.analysis.lattice`) and checks
  *path* properties the flat linter cannot: pin/unpin and WAL
  commit protocols, float taint into exact-rational time, unordered
  iteration, swallowed crashes.

``python -m repro.tools.check --all`` runs all three; it is the CI gate.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    RuleInfo,
    RuleRegistry,
    rule_registry,
)
from repro.analysis.graph import (
    PLAN_POLICIES,
    STRUCTURAL_RULES,
    GraphChecker,
    GraphContext,
    GraphWalker,
    Placement,
    blocking_diagnostics,
    check_media_graph,
    static_bytes,
    static_duration,
    static_rate,
    static_time_system,
)
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    Analysis,
    DataflowEngine,
    check_paths,
    check_repo,
    sarif_report,
    solve,
    validate_sarif,
)
from repro.analysis import checkers  # noqa: F401  (DF rule registration)
from repro.analysis.lint import LintEngine, lint_paths, lint_repo
from repro.analysis.rules.feasibility import (
    DerivationVerdict,
    classify_derivations,
)

__all__ = [
    "Analysis",
    "CFG",
    "DataflowEngine",
    "Diagnostic",
    "DiagnosticReport",
    "DerivationVerdict",
    "GraphChecker",
    "GraphContext",
    "GraphWalker",
    "LintEngine",
    "build_cfg",
    "check_paths",
    "check_repo",
    "sarif_report",
    "solve",
    "validate_sarif",
    "PLAN_POLICIES",
    "Placement",
    "RuleInfo",
    "RuleRegistry",
    "STRUCTURAL_RULES",
    "blocking_diagnostics",
    "check_media_graph",
    "classify_derivations",
    "lint_paths",
    "lint_repo",
    "rule_registry",
    "static_bytes",
    "static_duration",
    "static_rate",
    "static_time_system",
]
