"""Static media-graph checking: verify plans from the model alone.

The paper's three structuring mechanisms — interpretation (Def. 5),
derivation (Def. 6) and composition (Def. 7) — form graphs whose errors
otherwise surface only at expansion or playback time. This module walks
those graphs *without expanding them*: no derivation is run, no BLOB
payload is read. Durations come from descriptors and placement tables,
sizes from :func:`static_bytes`, and the §4.2 real-time feasibility
question ("if expansion can be done in real time then the derived object
is all that needs be stored") is answered from the
:class:`~repro.engine.player.CostModel` budget instead of a measured run
(the dynamic counterpart lives in :mod:`repro.engine.resources`).

The walker is cycle-safe where :meth:`MultimediaObject.flatten` is not: a
multimedia object that (transitively) contains itself is reported as a
diagnostic instead of a ``RecursionError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.core.composition import MultimediaObject
from repro.core.interpretation import Interpretation
from repro.core.intervals import Interval
from repro.core.media_object import (
    DerivedMediaObject,
    InterpretedMediaObject,
    MediaObject,
    StreamMediaObject,
)
from repro.core.rational import Rational, as_rational
from repro.errors import AnalysisError


def static_duration(obj: MediaObject) -> Rational | None:
    """Presentation duration of ``obj`` without expanding or reading.

    Sources, in order: the ``duration`` descriptor attribute; the
    placement table span (interpreted objects); the in-memory stream
    span (stream-backed objects). Derived objects that declare no
    duration return None — statically unknowable without expansion.
    """
    declared = obj.descriptor.get("duration")
    if declared is not None:
        return as_rational(declared)
    if isinstance(obj, InterpretedMediaObject):
        sequence = obj.interpretation.sequence(obj.sequence_name)
        entries = list(sequence)
        if not entries:
            return Rational(0)
        end = max(e.end for e in entries)
        start = min(e.start for e in entries)
        return sequence.time_system.to_continuous(end - start)
    if isinstance(obj, StreamMediaObject):
        return obj.stream().duration_seconds()
    return None


def static_bytes(obj: MediaObject,
                 _visiting: frozenset[str] = frozenset()) -> int:
    """Worst-case byte estimate of ``obj``'s expanded content, statically.

    Interpreted objects are sized from their placement tables; stream-
    and value-backed objects from the data they hold; derived objects
    from the sum of their inputs (recursively, cycle-safe) — a derivation
    cannot statically be assumed to shrink its inputs, so the input sum
    is the conservative bound §4.2 budgeting needs. (Contrast
    :func:`repro.cache.derivations.object_bytes`, which sizes a derived
    object by its *specification* — the storage question, not the
    expansion-cost question.)
    """
    if obj.object_id in _visiting:
        return 0  # cycle: reported separately by the cycle rule
    if isinstance(obj, InterpretedMediaObject):
        return obj.interpretation.sequence(obj.sequence_name).total_size()
    if isinstance(obj, DerivedMediaObject):
        visiting = _visiting | {obj.object_id}
        return sum(
            static_bytes(inp, visiting)
            for inp in obj.derivation_object.inputs
        )
    if isinstance(obj, StreamMediaObject):
        return obj.stream().total_size()
    try:
        value = obj.value()
    # repro: suppress DF006 — static estimation is total by design: 0 is the answer
    except Exception:  # noqa: BLE001 - still objects without values
        return 0
    try:
        return len(value)
    except TypeError:
        return len(repr(value))


def static_rate(obj: MediaObject) -> Rational | None:
    """Mean data rate (bytes/second) of ``obj``, statically.

    Prefers the ``average_data_rate`` descriptor; falls back to
    bytes/duration when both are statically known.
    """
    declared = obj.descriptor.get("average_data_rate")
    if declared is not None:
        return as_rational(declared)
    duration = static_duration(obj)
    if duration is None or duration <= 0:
        return None
    return Rational(static_bytes(obj)) / duration


def static_time_system(obj: MediaObject):
    """The discrete time system governing ``obj``, without expanding.

    Interpreted objects answer from their placement table's sequence
    (which may override the type default); everything else answers from
    the media type. Returns None for still kinds.
    """
    if isinstance(obj, InterpretedMediaObject):
        try:
            return obj.interpretation.sequence(obj.sequence_name).time_system
        # repro: suppress DF006 — falling back to the type default is the contract
        except Exception:  # noqa: BLE001 - dangling sequence: MG002's job
            return obj.media_type.time_system
    return obj.media_type.time_system


@dataclass(frozen=True)
class Placement:
    """One leaf media object placed on the root object's timeline."""

    path: str
    obj: MediaObject
    interval: Interval | None  # None when the duration is unknowable
    has_spatial: bool
    start: Rational


@dataclass
class GraphContext:
    """Everything the rules need, gathered in one cycle-safe walk."""

    subject: str
    placements: list[Placement] = field(default_factory=list)
    derived: list[DerivedMediaObject] = field(default_factory=list)
    interpretations: list[Interpretation] = field(default_factory=list)
    cycles: list[str] = field(default_factory=list)
    #: cost/budget knobs, set by the checker
    cost_model: object | None = None
    bandwidth: Rational | None = None
    startup_budget: Rational = Rational(1)
    quality_floor: int | None = None


class GraphWalker:
    """Collects a :class:`GraphContext` without expanding anything."""

    def __init__(self, subject: str):
        self.context = GraphContext(subject=subject)
        self._seen_derived: set[str] = set()
        self._seen_interp: set[int] = set()

    # -- entry points -------------------------------------------------------

    def walk_multimedia(self, multimedia: MultimediaObject) -> GraphContext:
        self._walk_composition(multimedia, multimedia.name,
                               Rational(0), stack=())
        return self.context

    def walk_object(self, obj: MediaObject) -> GraphContext:
        self._walk_media_object(obj, obj.name, Rational(0),
                                spatial=False, explicit=None)
        return self.context

    def walk_interpretation(self, interpretation: Interpretation) -> GraphContext:
        # A tape's sequences share storage, not a presentation timeline:
        # place them without intervals so only structural rules apply.
        self._note_interpretation(interpretation)
        for name in interpretation.names():
            obj = InterpretedMediaObject(interpretation, name)
            self.context.placements.append(Placement(
                path=f"{interpretation.name}/{name}", obj=obj,
                interval=None, has_spatial=False, start=Rational(0),
            ))
        return self.context

    # -- traversal ----------------------------------------------------------

    def _walk_composition(self, multimedia: MultimediaObject, path: str,
                          offset: Rational, stack: tuple) -> None:
        if any(node is multimedia for node in stack):
            self.context.cycles.append(path)
            return
        stack = stack + (multimedia,)
        for rel in multimedia.relationships:
            label = f"{path}/{rel.label}"
            start = offset + (rel.start_offset if rel.is_temporal
                              else Rational(0))
            if isinstance(rel.component, MultimediaObject):
                self._walk_composition(rel.component, label, start, stack)
            else:
                self._walk_media_object(
                    rel.component, label, start,
                    spatial=rel.is_spatial,
                    explicit=rel.explicit_duration,
                )

    def _walk_media_object(self, obj: MediaObject, path: str,
                           start: Rational, spatial: bool,
                           explicit: Rational | None) -> None:
        self._place(path, obj, start, spatial, explicit)
        self._walk_derivation_inputs(obj, path, visiting=())

    def _walk_derivation_inputs(self, obj: MediaObject, path: str,
                                visiting: tuple) -> None:
        if isinstance(obj, InterpretedMediaObject):
            self._note_interpretation(obj.interpretation)
            return
        if not isinstance(obj, DerivedMediaObject):
            return
        if any(node is obj for node in visiting):
            self.context.cycles.append(path)
            return
        if obj.object_id not in self._seen_derived:
            self._seen_derived.add(obj.object_id)
            self.context.derived.append(obj)
        visiting = visiting + (obj,)
        for inp in obj.derivation_object.inputs:
            self._walk_derivation_inputs(inp, f"{path}<-{inp.name}", visiting)

    def _place(self, path: str, obj: MediaObject, start: Rational,
               spatial: bool, explicit: Rational | None) -> None:
        duration = explicit if explicit is not None else static_duration(obj)
        interval = None if duration is None else Interval.of(start, duration)
        self.context.placements.append(
            Placement(path=path, obj=obj, interval=interval,
                      has_spatial=spatial, start=start)
        )

    def _note_interpretation(self, interpretation: Interpretation) -> None:
        if id(interpretation) not in self._seen_interp:
            self._seen_interp.add(id(interpretation))
            self.context.interpretations.append(interpretation)


class GraphChecker:
    """Runs the registered media-graph rules over a model graph.

    Parameters
    ----------
    cost_model:
        The :class:`~repro.engine.player.CostModel` pricing the §4.2
        feasibility rules; default :class:`CostModel()`.
    bandwidth:
        Available sustained bandwidth (bytes/second) for the rate rule;
        defaults to the cost model's bandwidth.
    startup_budget:
        Seconds of startup delay a plan may spend expanding derivations
        before its first element is due (default 1 s).
    quality_floor:
        Minimum acceptable quality *rank* for the downgrade rule; None
        flags any silent downgrade across a derivation.
    ignore:
        Rule ids to suppress.
    """

    def __init__(self, cost_model=None, bandwidth=None,
                 startup_budget=1, quality_floor: int | None = None,
                 ignore: Iterable[str] = ()):
        from repro.engine.player import CostModel

        self.cost_model = cost_model or CostModel()
        self.bandwidth = (
            as_rational(bandwidth) if bandwidth is not None
            else self.cost_model.bandwidth
        )
        self.startup_budget = as_rational(startup_budget)
        if self.startup_budget < 0:
            raise AnalysisError("startup_budget must be non-negative")
        self.quality_floor = quality_floor
        self.ignore = frozenset(ignore)

    # -- public API ---------------------------------------------------------

    def check(self, target) -> DiagnosticReport:
        """Check a multimedia object, media object or interpretation."""
        if isinstance(target, MultimediaObject):
            return self.check_multimedia(target)
        if isinstance(target, Interpretation):
            return self.check_interpretation(target)
        if isinstance(target, MediaObject):
            return self.check_object(target)
        raise AnalysisError(
            f"cannot check {type(target).__name__}; expected a "
            "MultimediaObject, MediaObject or Interpretation"
        )

    def check_multimedia(self, multimedia: MultimediaObject) -> DiagnosticReport:
        walker = GraphWalker(f"multimedia:{multimedia.name}")
        return self._run(walker.walk_multimedia(multimedia))

    def check_object(self, obj: MediaObject) -> DiagnosticReport:
        walker = GraphWalker(f"object:{obj.name}")
        return self._run(walker.walk_object(obj))

    def check_interpretation(self, interpretation: Interpretation) -> DiagnosticReport:
        walker = GraphWalker(f"interpretation:{interpretation.name}")
        return self._run(walker.walk_interpretation(interpretation))

    # -- rule execution -----------------------------------------------------

    def _run(self, context: GraphContext) -> DiagnosticReport:
        from repro.analysis.rules import GRAPH_RULES

        context.cost_model = self.cost_model
        context.bandwidth = self.bandwidth
        context.startup_budget = self.startup_budget
        context.quality_floor = self.quality_floor
        report = DiagnosticReport(subject=context.subject)
        for rule_id in sorted(GRAPH_RULES):
            if rule_id in self.ignore:
                continue
            report.extend(GRAPH_RULES[rule_id](context))
        return report


def check_media_graph(target, cost_model=None, bandwidth=None,
                      ignore: Iterable[str] = ()) -> DiagnosticReport:
    """One-shot convenience: check ``target`` with default settings."""
    return GraphChecker(
        cost_model=cost_model, bandwidth=bandwidth, ignore=ignore
    ).check(target)


#: Rules whose violations make a plan structurally unexecutable: cycles
#: hang expansion, dangling inputs raise mid-read, kind mismatches make
#: the expansion's output unusable. Feasibility findings (MG008/MG009)
#: degrade quality rather than crash, so the default gate only flags
#: them.
STRUCTURAL_RULES: frozenset[str] = frozenset({"MG001", "MG002", "MG003"})

#: Valid plan-gate policies, in increasing strictness.
PLAN_POLICIES: tuple[str, ...] = ("off", "check", "strict")


def blocking_diagnostics(report: DiagnosticReport,
                         policy: str = "check") -> list[Diagnostic]:
    """The diagnostics that reject a plan under ``policy``.

    ``"off"`` gates nothing; ``"check"`` (the default) rejects only
    structurally unexecutable plans; ``"strict"`` rejects on every
    error-severity finding, including static infeasibility.
    """
    if policy == "off":
        return []
    if policy == "strict":
        return report.errors()
    if policy == "check":
        return [d for d in report.errors() if d.rule in STRUCTURAL_RULES]
    raise AnalysisError(
        f"unknown plan policy {policy!r}; expected one of {PLAN_POLICIES}"
    )


__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "GraphChecker",
    "PLAN_POLICIES",
    "STRUCTURAL_RULES",
    "blocking_diagnostics",
    "GraphContext",
    "GraphWalker",
    "Placement",
    "check_media_graph",
    "static_bytes",
    "static_duration",
    "static_rate",
    "static_time_system",
]
