"""The shared diagnostic core of the static verification layer.

Both analysis engines — the media-graph checker (:mod:`repro.analysis.graph`)
and the codebase linter (:mod:`repro.analysis.lint`) — report through one
vocabulary: a :class:`Diagnostic` carries a stable rule id, a severity from
the same ladder the flight recorder uses, a location (an object path for
graph findings, ``file:line`` for lint findings), a message and a fix
hint. A :class:`DiagnosticReport` aggregates them and renders text or
JSON deterministically, so same-input runs export byte-identically —
the repo-wide determinism contract extends to its own tooling.

Rule id convention: ``MG###`` for media-graph rules, ``LN###`` for lint
rules. Suppression: every renderer prints the rule id, and both engines
accept an ``ignore=`` set of rule ids, so a finding is silenced by id,
never by editing the checker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import AnalysisError
from repro.obs.events import Severity


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a location.

    ``location`` is a stable path — ``multimedia:trailer/video1`` for a
    graph finding, ``src/repro/engine/player.py`` (with ``line``) for a
    lint finding. ``hint`` says how to fix or suppress.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str | None = None
    line: int | None = None

    def __post_init__(self) -> None:
        if not self.rule:
            raise AnalysisError("diagnostic needs a rule id")
        if not isinstance(self.severity, Severity):
            object.__setattr__(self, "severity", Severity.coerce(self.severity))

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def where(self) -> str:
        """``location`` or ``location:line`` when a line is known."""
        if self.line is None:
            return self.location
        return f"{self.location}:{self.line}"

    def export(self) -> dict:
        """A JSON-safe dict with deterministically ordered keys."""
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "location": self.location,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        text = (
            f"{self.where()}: {self.severity.name.lower()} "
            f"[{self.rule}] {self.message}"
        )
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


class DiagnosticReport:
    """An ordered collection of diagnostics with reporters.

    Ordering is deterministic: rows sort by (location, line, rule,
    message) regardless of rule execution order, so two runs over the
    same input render byte-identically.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = (),
                 subject: str = ""):
        self.subject = subject
        self._diagnostics: list[Diagnostic] = list(diagnostics)

    # -- collection ---------------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    def merge(self, other: "DiagnosticReport") -> "DiagnosticReport":
        self._diagnostics.extend(other._diagnostics)
        return self

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        """All findings in deterministic order."""
        return sorted(
            self._diagnostics,
            key=lambda d: (d.location, d.line or 0, d.rule, d.message),
        )

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    def warnings(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics
            if Severity.WARNING <= d.severity < Severity.ERROR
        ]

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def rules(self) -> list[str]:
        """Distinct rule ids that fired, sorted."""
        return sorted({d.rule for d in self._diagnostics})

    @property
    def ok(self) -> bool:
        """True when no ERROR-or-worse diagnostic is present."""
        return not any(d.is_error for d in self._diagnostics)

    # -- reporters ----------------------------------------------------------

    def render_text(self) -> str:
        """Human-readable listing, one line per finding, plus a footer."""
        lines = [str(d) for d in self.diagnostics]
        errors = len(self.errors())
        warnings = len(self.warnings())
        subject = f"{self.subject}: " if self.subject else ""
        lines.append(
            f"{subject}{len(self._diagnostics)} finding(s), "
            f"{errors} error(s), {warnings} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Deterministic JSON export (sorted keys, stable row order)."""
        return json.dumps(
            {
                "subject": self.subject,
                "ok": self.ok,
                "findings": [d.export() for d in self.diagnostics],
                "counts": {
                    "total": len(self._diagnostics),
                    "errors": len(self.errors()),
                    "warnings": len(self.warnings()),
                },
            },
            sort_keys=True,
            indent=2,
        )

    def __repr__(self) -> str:
        return (
            f"DiagnosticReport({self.subject or 'unnamed'}: "
            f"{len(self._diagnostics)} findings, "
            f"{len(self.errors())} errors)"
        )


@dataclass(frozen=True)
class RuleInfo:
    """Registry row describing one rule (for docs and ``--list-rules``)."""

    rule_id: str
    title: str
    default_severity: Severity
    engine: str  # "graph" or "lint"
    doc: str = ""


class RuleRegistry:
    """Rule metadata registry, keyed by rule id.

    The engines register their rules here at import time; the CLI's
    ``--list-rules`` and the DESIGN.md table render from it, so rule
    ids, severities and one-line docs live in exactly one place.
    """

    def __init__(self) -> None:
        self._rules: dict[str, RuleInfo] = {}

    def register(self, rule_id: str, title: str,
                 default_severity: Severity, engine: str,
                 doc: str = "") -> RuleInfo:
        if rule_id in self._rules:
            raise AnalysisError(f"rule {rule_id!r} already registered")
        info = RuleInfo(rule_id, title, default_severity, engine, doc)
        self._rules[rule_id] = info
        return info

    def get(self, rule_id: str) -> RuleInfo:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise AnalysisError(
                f"unknown rule {rule_id!r}; registered: "
                f"{', '.join(sorted(self._rules)) or '(none)'}"
            ) from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def ids(self, engine: str | None = None) -> list[str]:
        return sorted(
            rule_id for rule_id, info in self._rules.items()
            if engine is None or info.engine == engine
        )

    def table(self) -> list[tuple[str, str, str, str]]:
        """(id, engine, severity, title) rows for rendering."""
        return [
            (info.rule_id, info.engine, info.default_severity.name,
             info.title)
            for info in (self._rules[i] for i in self.ids())
        ]


#: Process-wide registry of analysis rules.
rule_registry = RuleRegistry()
