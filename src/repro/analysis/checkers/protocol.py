"""Exception-protocol and ownership checkers (DF006/DF007/DF008).

These rules are path queries over handler regions rather than lattice
fixpoints: the CFG builder records each ``except`` clause's head node
and body nodes, and the checkers ask whether *every* path through the
region satisfies the protocol.

* **DF006** — a handler swallows silently when some path through it
  performs no call at all and never raises: no flight-recorder
  emission, no fallback computation, just quiet degradation. Any call
  counts as observable (conservatively — helpers may record), so the
  rule only fires on genuinely dark paths (``pass``, bare ``return``,
  counter bumps).
* **DF007** — inside a shard-owning class (one that holds
  ``self._shards``), shared caches and telemetry stores may only be
  mutated through the owning shard's scoped namespace; direct
  ``self.<shared>.put(...)`` from fleet code races the shard's own
  bookkeeping on replay.
* **DF008** — ``SimulatedCrash`` models process death; a handler
  naming it must re-raise on every path (leaving via a *different*
  exception still propagates abnormality and is allowed). Deliberate
  absorption points (the crash matrix, checkpoint failover) carry
  ``# repro: suppress DF008 — ...`` with the reason in the comment.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import CFG, HandlerRegion
from repro.analysis.checkers import call_method, receiver_text, scan_roots
from repro.analysis.dataflow import FunctionContext, dataflow_rule
from repro.obs.events import Severity

#: Method names that mutate shared caches/stores (DF007).
SHARED_STATE_MUTATORS = frozenset({
    "put", "admit", "insert", "store", "clear", "invalidate", "record",
    "record_scrape", "record_alert", "observe", "inc", "set", "reset",
    "prune", "drain", "append",
})

#: ``self.<attr>`` roots counted as shard-shared state when the class
#: owns a shard table.
SHARED_STATE_MARKERS = ("cache", "telemetry", "derivation")


def _region_paths_escape(cfg: CFG, region: HandlerRegion,
                         stops) -> bool:
    """True when some path from the handler head leaves the region
    without passing a node ``stops()`` accepts.

    Escapes along ``exc`` edges do not count: an exception leaving the
    handler is propagation, the opposite of silent swallowing.
    """
    members = region.body_ids | {region.head}
    stack = [region.head]
    seen = set()
    while stack:
        node_id = stack.pop()
        if node_id in seen:
            continue
        seen.add(node_id)
        if node_id != region.head and stops(cfg.nodes[node_id]):
            continue
        for succ, kind in cfg.succs[node_id]:
            if succ in members:
                stack.append(succ)
            elif kind != "exc":
                return True
    return False


# ---------------------------------------------------------------------------
# DF006 — silently swallowed exception
# ---------------------------------------------------------------------------

def _observable(node) -> bool:
    if node.label == "raise":
        return True
    return any(
        isinstance(inner, ast.Call)
        for root in scan_roots(node)
        for inner in ast.walk(root)
    )


#: Handler types DF006 never judges: catching these is the iterator
#: protocol (generator return values ride StopIteration), the same
#: carve-out LN003 makes for raising them.
_PROTOCOL_EXCEPTIONS = frozenset({"StopIteration", "StopAsyncIteration"})


@dataflow_rule(
    "DF006", "exception swallowed with no emission on some path",
    Severity.ERROR,
    "An except handler has a path that neither raises nor performs any "
    "call — no flight-recorder event, no fallback work — so the "
    "failure degrades silently and the replay record goes dark.")
def check_silent_swallow(ctx: FunctionContext):
    diagnostics = []
    for region in ctx.cfg.handler_regions:
        if any(region.names_exception(name)
               for name in _PROTOCOL_EXCEPTIONS):
            continue
        if _region_paths_escape(ctx.cfg, region, _observable):
            caught = (ast.unparse(region.handler.type)
                      if region.handler.type is not None else "everything")
            diagnostics.append(ctx.diagnostic(
                "DF006", region.handler.lineno,
                f"handler for {caught} swallows the exception with no "
                "emission on some path",
                "record a flight-recorder event (events.record(...)) "
                "on every handler path, or re-raise",
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# DF007 — shard-shared state mutated outside the owning namespace
# ---------------------------------------------------------------------------

def _scoped_ranges(func: ast.AST) -> list[tuple[int, int]]:
    """Line spans of ``with ...scoped(...):`` blocks — the sanctioned
    per-shard namespaces."""
    spans = []
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) \
                        and call_method(expr) == "scoped":
                    spans.append((node.lineno,
                                  node.end_lineno or node.lineno))
    return spans


@dataflow_rule(
    "DF007", "shard-shared state mutated outside its shard scope",
    Severity.ERROR,
    "Fleet-level code (a class owning self._shards) mutates a shared "
    "DerivationCache/TelemetryStore directly instead of through the "
    "owning shard's scoped namespace; on replay the fleet and the "
    "shard disagree about who wrote what.")
def check_shard_ownership(ctx: FunctionContext):
    info = ctx.class_info
    if info is None or not info.shard_owner:
        return []
    scoped = _scoped_ranges(ctx.func)
    diagnostics = []
    for node in ctx.cfg.statement_nodes():
        for root in scan_roots(node):
            for call in ast.walk(root):
                if not isinstance(call, ast.Call):
                    continue
                recv = receiver_text(call)
                if not recv.startswith("self."):
                    continue
                attr_root = recv[5:].split(".", 1)[0].lower()
                if not any(marker in attr_root
                           for marker in SHARED_STATE_MARKERS):
                    continue
                if call_method(call) not in SHARED_STATE_MUTATORS:
                    continue
                if any(lo <= call.lineno <= hi for lo, hi in scoped):
                    continue
                diagnostics.append(ctx.diagnostic(
                    "DF007", call.lineno,
                    f"{recv}.{call_method(call)}(...) mutates "
                    "shard-shared state from fleet code outside a "
                    "scoped namespace",
                    "route the mutation through the owning shard (or "
                    "inside `with obs.scoped(shard):`)",
                ))
    return diagnostics


# ---------------------------------------------------------------------------
# DF008 — SimulatedCrash caught without re-raise
# ---------------------------------------------------------------------------

def _is_raise(node) -> bool:
    return node.label == "raise"


@dataflow_rule(
    "DF008", "SimulatedCrash caught without re-raise", Severity.ERROR,
    "SimulatedCrash models process death for the crash matrix; a "
    "handler naming it must re-raise on every path, else the 'dead' "
    "process keeps running and recovery is never exercised.")
def check_crash_reraise(ctx: FunctionContext):
    diagnostics = []
    for region in ctx.cfg.handler_regions:
        if not region.names_exception("SimulatedCrash"):
            continue
        if _region_paths_escape(ctx.cfg, region, _is_raise):
            diagnostics.append(ctx.diagnostic(
                "DF008", region.handler.lineno,
                "SimulatedCrash handler has a path that does not "
                "re-raise",
                "re-raise the crash (bare `raise`); if this is a "
                "deliberate absorption point, suppress with a reasoned "
                "`# repro: suppress DF008 — ...` comment",
            ))
    return diagnostics
