"""Determinism-contamination checkers (DF003/DF004).

DF003 is a forward taint analysis: float literals, wall-clock reads,
``float()`` conversions and ``to_seconds()`` displays are sources;
exact-rational clock arithmetic — ``Rational(...)``, ``advance_to``,
``loop.at/after``, ``arrival_time=`` — are sinks. ``as_rational`` and
``Rational.from_float`` are the *sanctioned* conversion points (the
repo's one explicit float→exact boundary), so flowing through them
cleanses the taint. Unknown calls are assumed clean — the documented
intraprocedural under-approximation that keeps the rule quiet enough
to gate on.

DF004 is the single-process race detector for deterministic replay:
iterating a ``set``/``frozenset`` (or ``os.listdir``'s arbitrary-order
list) leaks ``PYTHONHASHSEED`` into any order-sensitive consumer, so
the rule flags iteration and materialization of unordered collections
unless the consumer is order-insensitive (``sorted``, ``min``, ``sum``,
membership folds) — the ``sorted(...)`` wrapper is both the fix and
the suppression.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers import (
    call_method,
    calls_at,
    receiver_text,
    scan_roots,
)
from repro.analysis.dataflow import (
    Analysis,
    FunctionContext,
    dataflow_rule,
)
from repro.obs.events import Severity

#: (receiver, method) pairs that read wall clocks (mirrors the LN001
#: vocabulary; duplicated literally so the two engines stay decoupled).
WALLCLOCK_SOURCES = frozenset({
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: Calls whose result is exact by construction: taint stops here.
SANCTIONED_CONVERSIONS = frozenset({"as_rational", "from_float"})

#: Consumers for which iteration order cannot matter.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "min", "max", "sum", "any", "all", "len", "set",
    "frozenset",
})


# ---------------------------------------------------------------------------
# DF003 — float taint reaching exact-rational arithmetic
# ---------------------------------------------------------------------------

def _taint_reason(expr: ast.AST, facts: frozenset) -> str | None:
    """Why this expression carries a float, or None if it is clean."""
    if isinstance(expr, ast.Constant):
        return "float literal" if isinstance(expr.value, float) else None
    if isinstance(expr, ast.Name):
        for name, reason in facts:
            if name == expr.id:
                return reason
        return None
    if isinstance(expr, ast.Call):
        method = call_method(expr)
        recv = receiver_text(expr)
        if method in SANCTIONED_CONVERSIONS:
            return None  # the explicit float→Rational boundary
        if method == "float" and not recv:
            return "float() conversion"
        if (recv, method) in WALLCLOCK_SOURCES or (
                recv == "time" and method.startswith("clock")):
            return f"wall-clock {recv}.{method}()"
        if method == "to_seconds":
            return "to_seconds() display float"
        return None  # unknown calls assumed clean (intraprocedural)
    if isinstance(expr, ast.BinOp):
        return (_taint_reason(expr.left, facts)
                or _taint_reason(expr.right, facts))
    if isinstance(expr, ast.UnaryOp):
        return _taint_reason(expr.operand, facts)
    if isinstance(expr, ast.IfExp):
        return (_taint_reason(expr.body, facts)
                or _taint_reason(expr.orelse, facts))
    return None


class TaintAnalysis(Analysis):
    """Facts: ``(variable, reason)`` — the variable may hold a float."""

    def transfer(self, node, state):
        stmt = node.stmt
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None:
            target, value = stmt.target.id, stmt.value
        elif isinstance(stmt, ast.AugAssign) \
                and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        if target is None:
            return state
        reason = _taint_reason(value, state)
        facts = {fact for fact in state if fact[0] != target}
        if isinstance(stmt, ast.AugAssign):
            facts |= {fact for fact in state if fact[0] == target}
        if reason is not None:
            facts.add((target, reason))
        return frozenset(facts)


def _sink_args(call: ast.Call) -> tuple[str, list[ast.AST]] | None:
    """(sink description, argument expressions) for sink calls."""
    method = call_method(call)
    recv = receiver_text(call)
    checked: list[ast.AST] = []
    label = None
    if method == "Rational" and not recv:
        label, checked = "Rational(...)", list(call.args)
    elif method == "advance_to":
        label, checked = f"{recv}.advance_to(...)", list(call.args)
    elif method in ("at", "after") and "loop" in recv.lower():
        label, checked = f"{recv}.{method}(...)", list(call.args[:1])
    arrival = [kw.value for kw in call.keywords
               if kw.arg == "arrival_time"]
    if arrival:
        label = label or f"{method}(arrival_time=...)"
        checked = checked + arrival
    if label is None:
        return None
    return label, checked


@dataflow_rule(
    "DF003", "float taint reaches exact-rational arithmetic",
    Severity.ERROR,
    "A float literal, wall-clock read, float() conversion or "
    "to_seconds() display value flows into Rational(), clock "
    "advance_to(), loop.at()/after() or arrival_time=; exact-rational "
    "time is the determinism contract and floats drift it.")
def check_float_taint(ctx: FunctionContext):
    diagnostics = []
    states = ctx.solved(TaintAnalysis())
    for node in ctx.cfg.statement_nodes():
        facts = states[node.node_id]
        for call in calls_at(node):
            sink = _sink_args(call)
            if sink is None:
                continue
            label, checked = sink
            for arg in checked:
                reason = _taint_reason(arg, facts)
                if reason is not None:
                    diagnostics.append(ctx.diagnostic(
                        "DF003", call.lineno,
                        f"{reason} reaches exact-rational sink {label}",
                        "convert explicitly at the boundary with "
                        "as_rational()/Rational.from_float(), or keep "
                        "the value exact end to end",
                    ))
                    break
    return diagnostics


# ---------------------------------------------------------------------------
# DF004 — iteration over unordered collections
# ---------------------------------------------------------------------------

def _unordered_reason(expr: ast.AST, facts: frozenset,
                      class_set_attrs: frozenset[str]) -> str | None:
    """Why iterating this expression has nondeterministic order."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(expr, ast.Name):
        for name, reason in facts:
            if name == expr.id:
                return reason
        return None
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self" \
                and expr.attr in class_set_attrs:
            return f"set attribute self.{expr.attr}"
        return None
    if isinstance(expr, ast.Call):
        method = call_method(expr)
        recv = receiver_text(expr)
        if method in ("set", "frozenset") and not recv:
            return f"{method}()"
        if (recv, method) == ("os", "listdir"):
            return "os.listdir() (arbitrary order)"
        if method in ("union", "difference", "intersection",
                      "symmetric_difference"):
            inner = _unordered_reason(expr.func.value, facts,
                                      class_set_attrs)
            if inner is not None:
                return inner
        return None
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_unordered_reason(expr.left, facts, class_set_attrs)
                or _unordered_reason(expr.right, facts, class_set_attrs))
    return None


class SetAnalysis(Analysis):
    """Facts: ``(variable, reason)`` — the variable may be unordered."""

    def __init__(self, class_set_attrs: frozenset[str] = frozenset()):
        self.class_set_attrs = class_set_attrs

    def transfer(self, node, state):
        stmt = node.stmt
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is not None:
            target, value = stmt.target.id, stmt.value
        if target is None:
            return state
        reason = _unordered_reason(value, state, self.class_set_attrs)
        facts = {fact for fact in state if fact[0] != target}
        if reason is not None:
            facts.add((target, reason))
        return frozenset(facts)


def _consumed_order_insensitively(comp: ast.AST,
                                  parents: dict) -> bool:
    parent = parents.get(comp)
    if isinstance(parent, ast.Call) and comp in parent.args:
        if call_method(parent) in ORDER_INSENSITIVE_CONSUMERS:
            return True
    return False


@dataflow_rule(
    "DF004", "iteration over an unordered collection", Severity.ERROR,
    "A for-loop, comprehension or list()/tuple()/join() materializes "
    "the order of a set/frozenset or os.listdir(); that order leaks "
    "PYTHONHASHSEED (or the filesystem) into replay-sensitive state. "
    "The single-process race detector for deterministic replay.")
def check_unordered_iteration(ctx: FunctionContext):
    class_set_attrs = (ctx.class_info.set_attrs
                       if ctx.class_info is not None else frozenset())
    diagnostics = []
    states = ctx.solved(SetAnalysis(class_set_attrs))

    def emit(line: int, construct: str, reason: str) -> None:
        diagnostics.append(ctx.diagnostic(
            "DF004", line,
            f"{construct} iterates {reason}, whose order is "
            "nondeterministic across processes",
            "wrap the iterable in sorted(...) — or consume it "
            "order-insensitively",
        ))

    for node in ctx.cfg.statement_nodes():
        facts = states[node.node_id]

        def reason_of(expr: ast.AST) -> str | None:
            return _unordered_reason(expr, facts, class_set_attrs)

        if isinstance(node.stmt, (ast.For, ast.AsyncFor)) \
                and node.label == "loop-head":
            reason = reason_of(node.stmt.iter)
            if reason is not None:
                emit(node.stmt.iter.lineno, "for-loop", reason)
        for root in scan_roots(node):
            parents = {
                child: parent
                for parent in ast.walk(root)
                for child in ast.iter_child_nodes(parent)
            }
            for inner in ast.walk(root):
                if isinstance(inner, (ast.ListComp, ast.DictComp,
                                      ast.GeneratorExp)):
                    for generator in inner.generators:
                        reason = reason_of(generator.iter)
                        if reason is not None and \
                                not _consumed_order_insensitively(
                                    inner, parents):
                            emit(generator.iter.lineno, "comprehension",
                                 reason)
                elif isinstance(inner, ast.Call):
                    method = call_method(inner)
                    if method in ("list", "tuple") \
                            and not receiver_text(inner) \
                            and inner.args:
                        reason = reason_of(inner.args[0])
                        if reason is not None:
                            emit(inner.lineno, f"{method}()", reason)
                    elif method == "join" and inner.args:
                        reason = reason_of(inner.args[0])
                        if reason is not None:
                            emit(inner.lineno, "str.join()", reason)
    return diagnostics
