"""Typestate checkers for acquire/release protocols (DF001/DF002/DF005).

All three rules are instances of one scheme: an *acquire* operation
generates a fact, a *release* kills it, and any fact still live at the
function's normal or exceptional exit is a leak on some path. The
facts ride the powerset lattice; the exception-edge transfer keeps
kills but drops gens — an acquire that raised never took effect, a
release is modeled as succeeding (otherwise every ``finally: unpin()``
would "leak" through its own release call).

Keys are textual (``ast.unparse`` of receiver and argument), which is
the honest intraprocedural compromise: ``pool.pin(p)`` matched by
``pool.unpin(p)``, not by aliasing proofs. The fixtures pin down both
the fire and the stay-silent side of each rule.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers import call_method, calls_at, receiver_text
from repro.analysis.dataflow import (
    Analysis,
    FunctionContext,
    dataflow_rule,
)
from repro.obs.events import Severity

#: Constructors whose result is a closeable resource (DF005). Matched
#: by bare callable name; ``sqlite3.connect`` by (receiver, method).
RESOURCE_CONSTRUCTORS = frozenset({"open_tuned", "WriteAheadLog",
                                   "TelemetryStore"})


class _ProtocolAnalysis(Analysis):
    """Shared gen/kill scheme; subclasses classify the calls."""

    def gen_key(self, call: ast.Call, node) -> object | None:
        raise NotImplementedError

    def kill_keys(self, call: ast.Call, node, facts) -> set:
        raise NotImplementedError

    def _apply(self, node, state, include_gens: bool):
        facts = set(state)
        for call in calls_at(node):
            facts -= {
                fact for fact in facts
                if fact[0] in self.kill_keys(call, node, facts)
            }
            if include_gens:
                key = self.gen_key(call, node)
                if key is not None:
                    facts.add((key, call.lineno))
        return frozenset(facts)

    def transfer(self, node, state):
        return self._apply(node, state, include_gens=True)

    def transfer_exc(self, node, state):
        # kills survive (a release succeeded-or-moot), gens do not
        # (an acquire that raised never happened)
        return self._apply(node, state, include_gens=False)


def _leaks(ctx: FunctionContext, analysis: _ProtocolAnalysis):
    """Facts live at either exit, reported once per key at the
    earliest acquire line."""
    states = ctx.solved(analysis)
    live = set(states[ctx.cfg.exit]) | set(states[ctx.cfg.raise_exit])
    earliest: dict[object, int] = {}
    for key, line in sorted(live, key=repr):  # the engine's own DF004
        earliest[key] = min(line, earliest.get(key, line))
    return sorted(earliest.items(), key=lambda item: (item[1], str(item[0])))


# ---------------------------------------------------------------------------
# DF001 — BufferPool pin leaks
# ---------------------------------------------------------------------------

class PinAnalysis(_ProtocolAnalysis):
    """Facts: ``(receiver, argument)`` pairs pinned and not yet
    unpinned."""

    def gen_key(self, call, node):
        if call_method(call) == "pin" and len(call.args) == 1:
            return (receiver_text(call), ast.unparse(call.args[0]))
        return None

    def kill_keys(self, call, node, facts):
        method = call_method(call)
        recv = receiver_text(call)
        if method == "unpin" and len(call.args) == 1:
            return {(recv, ast.unparse(call.args[0]))}
        if method in ("clear", "close"):  # teardown releases everything
            return {key for key, _ in facts if key[0] == recv}
        return set()


@dataflow_rule(
    "DF001", "pin without unpin on some path", Severity.ERROR,
    "A BufferPool pin is not released on every path out of the "
    "function (exception edges included); pinned pages are never "
    "eviction victims, so a leaked pin shrinks the pool forever.")
def check_pin_release(ctx: FunctionContext):
    return [
        ctx.diagnostic(
            "DF001", line,
            f"{key[0]}.pin({key[1]}) is not unpinned on every path "
            "out of the function",
            "release in a finally: block (or a context manager) so "
            "exception paths unpin too",
        )
        for key, line in _leaks(ctx, PinAnalysis())
    ]


# ---------------------------------------------------------------------------
# DF002 — WAL transaction left open
# ---------------------------------------------------------------------------

class WalAnalysis(_ProtocolAnalysis):
    """Facts: WAL receivers with a begun-or-written, uncommitted
    transaction."""

    def gen_key(self, call, node):
        method = call_method(call)
        recv = receiver_text(call)
        if method == "begin" and "wal" in recv.lower():
            return recv
        if method in ("log_write", "log_grow"):
            return recv
        return None

    def kill_keys(self, call, node, facts):
        if call_method(call) in ("commit", "rollback"):
            return {receiver_text(call)}
        return set()


@dataflow_rule(
    "DF002", "WAL write without commit-or-rollback", Severity.ERROR,
    "A WAL begin/log_write/log_grow is not followed by commit() or "
    "rollback() on every path before scope exit; recovery semantics "
    "then depend on whoever runs next.")
def check_wal_commit(ctx: FunctionContext):
    return [
        ctx.diagnostic(
            "DF002", line,
            f"WAL transaction on {key} reaches scope exit without "
            "commit() or rollback() on some path",
            "commit on success, rollback on failure — or suppress "
            "with a reason if recovery-by-scan is the intended "
            "contract here",
        )
        for key, line in _leaks(ctx, WalAnalysis())
    ]


# ---------------------------------------------------------------------------
# DF005 — resource opened but neither closed nor handed off
# ---------------------------------------------------------------------------

def _escaping_names(stmt: ast.AST) -> set[str]:
    """Names whose value leaves the function's hands in this statement:
    passed as a call argument, returned/yielded, aliased, stored into
    an attribute/subscript or container. An escaped resource is the
    new owner's to close, so its fact dies (conservatively quiet)."""
    escaped: set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                escaped |= {n.id for n in ast.walk(arg)
                            if isinstance(n, ast.Name)}
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                escaped |= {n.id for n in ast.walk(node.value)
                            if isinstance(n, ast.Name)}
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            value = node.value
            if value is None:
                continue
            if isinstance(value, ast.Name):
                escaped.add(value.id)  # aliasing: x = conn
            elif isinstance(value, (ast.Tuple, ast.List, ast.Dict,
                                    ast.Set)):
                escaped |= {n.id for n in ast.walk(value)
                            if isinstance(n, ast.Name)}
            if any(isinstance(t, (ast.Attribute, ast.Subscript))
                   for t in targets):
                escaped |= {n.id for n in ast.walk(value)
                            if isinstance(n, ast.Name)}
    return escaped


def _opened_resource(stmt: ast.AST) -> tuple[str, int] | None:
    """``name = <resource constructor>(...)`` -> (name, line)."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return None
    if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)):
        return None
    method = call_method(value)
    recv = receiver_text(value)
    if (recv, method) == ("sqlite3", "connect") \
            or (not recv and method in RESOURCE_CONSTRUCTORS):
        return target.id, value.lineno
    return None


class ResourceAnalysis(_ProtocolAnalysis):
    """Facts: local variable names holding an unreleased resource."""

    def gen_key(self, call, node):
        opened = _opened_resource(node.stmt)
        if opened is not None and isinstance(node.stmt, (ast.Assign,
                                                         ast.AnnAssign)):
            # gen only for the constructor call itself, not calls in args
            value = (node.stmt.value if isinstance(node.stmt, ast.Assign)
                     else node.stmt.value)
            if call is value:
                return opened[0]
        return None

    def kill_keys(self, call, node, facts):
        if call_method(call) == "close":
            return {receiver_text(call)}
        return set()

    def _apply(self, node, state, include_gens):
        facts = super()._apply(node, state, include_gens)
        if node.stmt is not None:
            escaped = _escaping_names(node.stmt)
            opened = _opened_resource(node.stmt)
            if opened is not None and include_gens:
                escaped.discard(opened[0])  # its own constructor args
            facts = frozenset(f for f in facts if f[0] not in escaped)
        return facts


@dataflow_rule(
    "DF005", "resource opened but never closed or handed off",
    Severity.ERROR,
    "A store/connection/WAL opened into a local variable reaches scope "
    "exit on some path without close() and without escaping to a new "
    "owner; in the simulated universe that handle never dies.")
def check_resource_close(ctx: FunctionContext):
    return [
        ctx.diagnostic(
            "DF005", line,
            f"resource {key!r} opened here is neither closed nor "
            "handed off on every path",
            "close() in a finally: block, use a with-statement, or "
            "store/return the handle so an owner takes over",
        )
        for key, line in _leaks(ctx, ResourceAnalysis())
    ]
