"""Dataflow checker registry (rules ``DF###``).

Each checker is a function ``(FunctionContext) -> list[Diagnostic]``
registered via :func:`~repro.analysis.dataflow.dataflow_rule`; this
package pulls in the rule modules for the registration side effect,
the same pattern the media-graph rules use.

The helpers below answer the one question every checker asks of a CFG
node: *which expressions does this node actually evaluate?* Compound
statements are stored whole on their head node (a ``with`` node holds
the ``With``, a loop head holds the ``For``), so naive ``ast.walk``
over ``node.stmt`` would double-count the body that the CFG already
expanded into separate nodes. :func:`scan_roots` returns only the
sub-expressions the node itself evaluates.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import CFGNode


def scan_roots(node: CFGNode) -> list[ast.AST]:
    """The expressions evaluated *at* this node (bodies excluded)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.If, ast.While)):  # defensive; heads store tests
        return [stmt.test]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def calls_at(node: CFGNode) -> list[ast.Call]:
    """Every call the node evaluates, in source order."""
    calls = [
        inner
        for root in scan_roots(node)
        for inner in ast.walk(root)
        if isinstance(inner, ast.Call)
    ]
    return sorted(calls, key=lambda c: (c.lineno, c.col_offset))


def call_method(call: ast.Call) -> str:
    """``self.wal.begin()`` -> ``"begin"``; ``set()`` -> ``"set"``."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def receiver_text(call: ast.Call) -> str:
    """``self.wal.begin()`` -> ``"self.wal"``; plain calls -> ``""``."""
    if isinstance(call.func, ast.Attribute):
        return ast.unparse(call.func.value)
    return ""


def names_in(tree: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(tree) if isinstance(n, ast.Name)}


# Rule modules register on import (ids sort at run time).
from repro.analysis.checkers import resource as _resource  # noqa: E402,F401
from repro.analysis.checkers import taint as _taint  # noqa: E402,F401
from repro.analysis.checkers import protocol as _protocol  # noqa: E402,F401

__all__ = [
    "call_method",
    "calls_at",
    "names_in",
    "receiver_text",
    "scan_roots",
]
