"""Intraprocedural dataflow engine: fixpoint solver and ``DF###`` rules.

The third analysis engine, beside the media-graph checker and the flat
linter. Where LN rules judge single statements, DF rules judge *paths*:
a pin must meet its unpin on every way out of the function, a WAL
transaction must reach commit-or-rollback, a float must not flow into
exact-rational clock arithmetic. The pipeline per function is

    ast.FunctionDef --build_cfg--> CFG --solve--> per-node states
                                     |--checkers--> Diagnostics

* :func:`solve` is a classic worklist fixpoint over a monotone
  lattice (:mod:`repro.analysis.lattice`). Edges tagged ``exc`` carry
  the *pre*-statement state through :meth:`Analysis.transfer_exc` (a
  partially-executed statement may not have taken effect); all other
  edges carry :meth:`Analysis.transfer`'s post-state.
* Checkers register with :func:`dataflow_rule`, mirroring the graph
  rules' decorator, so ``--list-rules`` and DESIGN.md render DF rules
  from the same registry.
* Findings are silenced three ways, all reviewable: ``ignore=`` by
  rule id, an inline ``# repro: suppress DF00x — reason`` comment on
  the flagged line (or the line above), and a committed baseline file
  that grandfathers pre-existing findings so the CI stage gates only
  on regressions.
* :func:`sarif_report` renders a report as SARIF 2.1.0 for editor and
  code-host ingestion; :func:`validate_sarif` structurally checks the
  payload (the round-trip test in the check suite keeps it honest).

Pure ``ast`` + source text: analyzing the codebase never executes it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis.cfg import CFG, build_cfg, function_defs
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    rule_registry,
)
from repro.analysis.lattice import PowersetLattice
from repro.errors import AnalysisError
from repro.obs.events import Severity

#: rule id -> checker ``(FunctionContext) -> list[Diagnostic]``.
DATAFLOW_RULES: dict[str, Callable] = {}

#: Inline suppression grammar. The reason is mandatory: a silenced
#: finding with no recorded justification is just a hidden bug.
SUPPRESS_PATTERN = re.compile(
    r"#\s*repro:\s*suppress\s+(?P<rules>[A-Z]{2}\d{3}"
    r"(?:\s*,\s*[A-Z]{2}\d{3})*)\s*(?:—|--|-)\s*(?P<reason>\S.*)"
)


def dataflow_rule(rule_id: str, title: str, severity: Severity,
                  doc: str = ""):
    """Register a dataflow rule under ``rule_id`` (engine ``dataflow``)."""

    def decorate(func: Callable) -> Callable:
        rule_registry.register(rule_id, title, severity, engine="dataflow",
                               doc=doc or (func.__doc__ or "").strip())
        DATAFLOW_RULES[rule_id] = func
        func.rule_id = rule_id
        func.default_severity = severity
        return func

    return decorate


# ---------------------------------------------------------------------------
# fixpoint solver
# ---------------------------------------------------------------------------

class Analysis:
    """A forward dataflow problem over one CFG.

    Subclasses provide the lattice and the transfer functions. States
    must be immutable values (the solver compares them for equality to
    detect convergence).
    """

    lattice = PowersetLattice()

    def initial(self):
        """State entering the function at ``entry``."""
        return self.lattice.bottom()

    def transfer(self, node, state):
        """Post-state after the node completes normally."""
        return state

    def transfer_exc(self, node, state):
        """State carried on the node's ``exc`` edges.

        Default: the pre-state — a statement that raised may not have
        taken effect. Typestate analyses override this to keep their
        *kills* (a release that raises still released) while dropping
        their *gens* (an acquire that raised never acquired).
        """
        return state

    def height_hint(self, cfg: CFG) -> int:
        """Upper bound on ascending-chain length, for the safety net."""
        return max(4 * len(cfg), 64)


def solve(cfg: CFG, analysis: Analysis) -> dict[int, object]:
    """Worklist fixpoint: the state *entering* each node, by node id.

    Deterministic: the worklist drains in node-id order and powerset
    joins are order-insensitive, so repeated runs produce identical
    maps. Raises :class:`AnalysisError` if the iteration budget —
    ``edges × (height + 1)`` node evaluations — is exhausted, which a
    monotone transfer function cannot do.
    """
    lattice = analysis.lattice
    states: dict[int, object] = {n: lattice.bottom() for n in cfg.nodes}
    states[cfg.entry] = analysis.initial()

    pending = sorted(cfg.nodes)
    in_worklist = set(pending)
    budget = (cfg.edge_count() + len(cfg)) * (analysis.height_hint(cfg) + 1)
    evaluations = 0
    while pending:
        node_id = pending.pop(0)
        in_worklist.discard(node_id)
        evaluations += 1
        if evaluations > budget:
            raise AnalysisError(
                f"dataflow fixpoint for {cfg.qualname} exceeded "
                f"{budget} evaluations; transfer function is not "
                "monotone over the lattice")
        node = cfg.nodes[node_id]
        new_state = states[node_id]
        for pred_id, kind in sorted(cfg.preds[node_id]):
            pred_state = states[pred_id]
            pred = cfg.nodes[pred_id]
            carried = (analysis.transfer_exc(pred, pred_state)
                       if kind == "exc"
                       else analysis.transfer(pred, pred_state))
            new_state = lattice.join(new_state, carried)
        if node_id == cfg.entry:
            new_state = lattice.join(new_state, analysis.initial())
        if new_state != states[node_id]:
            states[node_id] = new_state
            for succ_id, _ in cfg.succs[node_id]:
                if succ_id not in in_worklist:
                    pending.append(succ_id)
                    in_worklist.add(succ_id)
            pending.sort()
    return states


def exit_states(cfg: CFG, analysis: Analysis,
                states: dict[int, object] | None = None) -> tuple:
    """(state at normal exit, state at raise-exit) after solving."""
    if states is None:
        states = solve(cfg, analysis)
    return states[cfg.exit], states[cfg.raise_exit]


# ---------------------------------------------------------------------------
# per-function checker context
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClassInfo:
    """What one class declares, collected module-wide before checking.

    ``set_attrs`` are ``self.X`` attributes initialized to (or
    annotated as) sets; ``shard_owner`` marks classes that hold a
    ``self._shards`` table — the fleet role DF007 polices.
    """

    name: str
    set_attrs: frozenset[str] = frozenset()
    shard_owner: bool = False


@dataclass
class FunctionContext:
    """Everything a checker may ask about one function."""

    location: str  # repo-relative, forward slashes
    qualname: str
    func: ast.AST
    cfg: CFG
    class_info: ClassInfo | None = None
    _states: dict = field(default_factory=dict, repr=False)

    def solved(self, analysis: Analysis) -> dict[int, object]:
        """Solve (and memoize per analysis type) over this CFG."""
        key = type(analysis).__name__
        if key not in self._states:
            self._states[key] = solve(self.cfg, analysis)
        return self._states[key]

    def diagnostic(self, rule: str, line: int, message: str,
                   hint: str) -> Diagnostic:
        return Diagnostic(
            rule=rule, severity=rule_registry.get(rule).default_severity,
            location=self.location, line=line,
            message=f"{message} [{self.qualname}]", hint=hint,
        )


def _collect_class_info(tree: ast.Module) -> dict[str, ClassInfo]:
    """Scan class bodies for set-typed attrs and shard ownership."""

    def is_set_expr(expr: ast.AST | None) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        return False

    def is_set_annotation(annotation: ast.AST | None) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset")
        if isinstance(annotation, ast.Subscript):
            return is_set_annotation(annotation.value)
        return False

    classes: dict[str, ClassInfo] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        set_attrs: set[str] = set()
        shard_owner = False
        for inner in ast.walk(node):
            target = None
            value = None
            annotation = None
            if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                target, value = inner.targets[0], inner.value
            elif isinstance(inner, ast.AnnAssign):
                target, value = inner.target, inner.value
                annotation = inner.annotation
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if target.attr == "_shards":
                shard_owner = True
            if is_set_expr(value) or is_set_annotation(annotation):
                set_attrs.add(target.attr)
        classes[node.name] = ClassInfo(
            node.name, frozenset(set_attrs), shard_owner)
    return classes


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: suppress`` comment."""

    line: int
    rules: frozenset[str]
    reason: str


def parse_suppressions(source: str) -> list[Suppression]:
    """All suppression comments in a source file, with their reasons.

    A comment with no reason text after the dash is not a suppression
    — the grammar requires the justification.
    """
    found = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_PATTERN.search(text)
        if match:
            rules = frozenset(
                r.strip() for r in match.group("rules").split(","))
            found.append(Suppression(lineno, rules,
                                     match.group("reason").strip()))
    return found


def is_suppressed(diagnostic: Diagnostic,
                  suppressions: Iterable[Suppression]) -> bool:
    """Trailing comments cover their own line; standalone comments
    cover the line below."""
    line = diagnostic.line or 0
    return any(
        diagnostic.rule in s.rules and s.line in (line, line - 1)
        for s in suppressions
    )


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def _fingerprint(diagnostic: Diagnostic) -> tuple[str, str, str]:
    """Line-independent identity: survives unrelated edits above."""
    return diagnostic.rule, diagnostic.location, diagnostic.message


def load_baseline(path: Path | str) -> set[tuple[str, str, str]]:
    """The committed grandfather list; empty when absent."""
    path = Path(path)
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        (row["rule"], row["location"], row["message"])
        for row in payload.get("findings", [])
    }


def baseline_payload(report: DiagnosticReport) -> bytes:
    """Deterministic JSON bytes for ``--update-baseline``."""
    rows = sorted({_fingerprint(d) for d in report})
    return json.dumps(
        {
            "comment": "Grandfathered dataflow findings; the check "
                       "stage gates only on findings absent from this "
                       "list. Regenerate with "
                       "`python -m repro.tools.check --dataflow "
                       "--update-baseline`.",
            "version": 1,
            "findings": [
                {"rule": rule, "location": location, "message": message}
                for rule, location, message in rows
            ],
        },
        sort_keys=True, indent=2,
    ).encode("utf-8") + b"\n"


def split_baselined(report: DiagnosticReport,
                    baseline: set[tuple[str, str, str]]
                    ) -> tuple[DiagnosticReport, int]:
    """(report of *new* findings, count grandfathered away)."""
    fresh = DiagnosticReport(subject=report.subject)
    grandfathered = 0
    for diagnostic in report:
        if _fingerprint(diagnostic) in baseline:
            grandfathered += 1
        else:
            fresh.add(diagnostic)
    return fresh, grandfathered


#: Where the committed baseline ships (inside the package, so an
#: installed tree still gates correctly).
DEFAULT_BASELINE = Path(__file__).with_name("dataflow_baseline.json")


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

class DataflowEngine:
    """Runs every registered DF rule over a tree of Python sources.

    Mirrors :class:`~repro.analysis.lint.LintEngine`: ``root`` defaults
    to the installed ``repro`` package, locations are reported relative
    to its parent, files walk in sorted order so reports render
    byte-identically across runs.
    """

    def __init__(self, root: Path | str | None = None,
                 ignore: Iterable[str] = ()):
        if root is None:
            import repro

            root = Path(repro.__file__).parent
        self.root = Path(root)
        if not self.root.is_dir():
            raise AnalysisError(
                f"dataflow root {self.root} is not a directory")
        self.ignore = frozenset(ignore)
        # import for the registration side effect (mirrors rules/)
        from repro.analysis import checkers  # noqa: F401

    def files(self) -> list[Path]:
        return sorted(self.root.rglob("*.py"))

    def run(self) -> DiagnosticReport:
        report = DiagnosticReport(subject=f"dataflow:{self.root.name}")
        for path in self.files():
            self.check_file(path, report)
        return report

    def check_file(self, path: Path,
                   report: DiagnosticReport | None = None
                   ) -> DiagnosticReport:
        if report is None:
            report = DiagnosticReport(subject=f"dataflow:{path.name}")
        location = path.relative_to(self.root.parent).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            report.add(Diagnostic(
                rule="DF000", severity=Severity.CRITICAL,
                location=location, line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
            ))
            return report
        suppressions = parse_suppressions(source)
        classes = _collect_class_info(tree)
        for ctx in self.function_contexts(tree, location, classes):
            for rule_id in sorted(DATAFLOW_RULES):
                if rule_id in self.ignore:
                    continue
                for diagnostic in DATAFLOW_RULES[rule_id](ctx):
                    if not is_suppressed(diagnostic, suppressions):
                        report.add(diagnostic)
        return report

    def function_contexts(self, tree: ast.Module, location: str,
                          classes: dict[str, ClassInfo]
                          ) -> Iterable[FunctionContext]:
        for qualname, class_def, func in function_defs(tree):
            class_info = classes.get(class_def.name) if class_def else None
            yield FunctionContext(
                location=location, qualname=qualname, func=func,
                cfg=build_cfg(func, name=location, qualname=qualname),
                class_info=class_info,
            )


def check_repo(ignore: Iterable[str] = ()) -> DiagnosticReport:
    """Dataflow-check the installed ``repro`` package sources."""
    return DataflowEngine(ignore=ignore).run()


def check_paths(paths: Iterable[Path | str],
                ignore: Iterable[str] = ()) -> DiagnosticReport:
    """Dataflow-check loose files/directories (fixtures, scripts)."""
    report = DiagnosticReport(subject="dataflow:paths")
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            report.merge(DataflowEngine(entry, ignore=ignore).run())
        else:
            engine = DataflowEngine(entry.parent, ignore=ignore)
            engine.check_file(entry, report)
    return report


# ---------------------------------------------------------------------------
# SARIF 2.1.0
# ---------------------------------------------------------------------------

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_level(severity: Severity) -> str:
    if severity >= Severity.ERROR:
        return "error"
    if severity >= Severity.WARNING:
        return "warning"
    return "note"


def sarif_report(report: DiagnosticReport) -> dict:
    """Render a diagnostic report as a SARIF 2.1.0 log object."""
    fired = set(report.rules())
    rules = [
        {
            "id": info.rule_id,
            "shortDescription": {"text": info.title},
            "fullDescription": {"text": info.doc or info.title},
            "defaultConfiguration": {
                "level": _sarif_level(info.default_severity),
            },
        }
        for info in (rule_registry.get(rule_id)
                     for rule_id in sorted(fired)
                     if rule_id in rule_registry)
    ]
    results = [
        {
            "ruleId": diagnostic.rule,
            "level": _sarif_level(diagnostic.severity),
            "message": {"text": diagnostic.message + (
                f" (hint: {diagnostic.hint})" if diagnostic.hint else "")},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": diagnostic.location},
                    "region": {"startLine": diagnostic.line or 1},
                },
            }],
        }
        for diagnostic in report.diagnostics
    ]
    return {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-dataflow",
                    "informationUri":
                        "https://example.invalid/repro/DESIGN.md#17",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def validate_sarif(payload: dict) -> None:
    """Structural check of the SARIF fields the spec requires.

    Raises :class:`AnalysisError` on the first violation; the check
    suite round-trips every emitted payload through this.
    """
    def need(condition: bool, what: str) -> None:
        if not condition:
            raise AnalysisError(f"SARIF payload invalid: {what}")

    need(isinstance(payload, dict), "top level must be an object")
    need(payload.get("version") == "2.1.0", "version must be '2.1.0'")
    runs = payload.get("runs")
    need(isinstance(runs, list) and runs, "runs must be a non-empty list")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        need(isinstance(driver.get("name"), str) and driver["name"],
             "tool.driver.name must be a non-empty string")
        for rule in driver.get("rules", []):
            need(isinstance(rule.get("id"), str) and rule["id"],
                 "every rule needs a string id")
        need(isinstance(run.get("results"), list), "results must be a list")
        for result in run["results"]:
            need(isinstance(result.get("ruleId"), str),
                 "every result needs a ruleId")
            need(result.get("level") in ("none", "note", "warning", "error"),
                 "result.level must be a SARIF level")
            need(isinstance(result.get("message", {}).get("text"), str),
                 "every result needs message.text")
            for loc in result.get("locations", []):
                physical = loc.get("physicalLocation", {})
                need(isinstance(
                    physical.get("artifactLocation", {}).get("uri"), str),
                    "physicalLocation needs artifactLocation.uri")
                region = physical.get("region", {})
                need(isinstance(region.get("startLine"), int)
                     and region["startLine"] >= 1,
                     "region.startLine must be a positive integer")


__all__ = [
    "Analysis",
    "ClassInfo",
    "DATAFLOW_RULES",
    "DEFAULT_BASELINE",
    "DataflowEngine",
    "FunctionContext",
    "Suppression",
    "baseline_payload",
    "check_paths",
    "check_repo",
    "dataflow_rule",
    "exit_states",
    "is_suppressed",
    "load_baseline",
    "parse_suppressions",
    "sarif_report",
    "solve",
    "split_baselined",
    "validate_sarif",
]
