"""The supported public surface of :mod:`repro`.

Import from here::

    from repro.api import MediaDatabase, Player, Observability

Everything in ``__all__`` is the blessed, stable face of the library —
the data model (timed streams, interpretation, derivation,
composition), the storage substrate, the caching layer (``BufferPool``,
``DerivationCache``), the playback engine, fault injection, the
durability layer (WAL, atomic commits, recovery, the crash matrix),
observability, the static verification layer and the query catalog. Subpackage-internal
names (codecs' DCT helpers, pager internals, benchmark plumbing) are
deliberately excluded; reaching past this module into submodules is
possible but unsupported across versions.

The facade re-exports; it defines nothing, so ``repro.api.Player is
repro.engine.Player`` — instances cross the boundary freely.
"""

from __future__ import annotations

from repro import errors
from repro.analysis import (
    Diagnostic,
    DiagnosticReport,
    GraphChecker,
    LintEngine,
    blocking_diagnostics,
    check_media_graph,
    lint_repo,
    rule_registry,
)
from repro.blob import (
    PAGE_SIZE,
    Blob,
    BlobStore,
    FilePager,
    MemoryBlob,
    MemoryPager,
    PagedBlob,
    PageStore,
)
from repro.cache import BufferPool, DerivationCache
from repro.durability import (
    CrashMatrix,
    CrashMatrixReport,
    DurablePageStore,
    RecoveryReport,
    WriteAheadLog,
    atomic_write_bytes,
    default_scenarios,
    recover_page_store,
)
from repro.core import (
    DerivationObject,
    Derivation,
    DerivedMediaObject,
    DiscreteTimeSystem,
    ElementDescriptor,
    Interpretation,
    Interval,
    MediaDescriptor,
    MediaElement,
    MediaKind,
    MediaObject,
    MediaType,
    MultimediaObject,
    PlacementEntry,
    ProvenanceGraph,
    QualityFactor,
    Rational,
    StreamCategory,
    TimedStream,
    TimedTuple,
    as_rational,
    derivation_registry,
    media_type_registry,
)
from repro.engine import (
    AdaptationPolicy,
    CostModel,
    EventLoop,
    Fleet,
    FleetHealth,
    MediaClock,
    PlaybackReport,
    Player,
    PrefetchReport,
    Recorder,
    RetryPolicy,
    ServeOptions,
    ServerHealth,
    ServerReport,
    SessionRequest,
    VodServer,
    measure_sync,
)
from repro.faults import (
    CrashInjector,
    FaultPlan,
    FaultyPager,
    SimulatedMedium,
)
from repro.obs import (
    Event,
    FlightRecorder,
    Instrumented,
    LogicalClock,
    MetricsRegistry,
    NullObservability,
    Observability,
    PipelineProfile,
    Severity,
    Slo,
    SloPolicy,
    SloVerdict,
    Tracer,
    default_slo_policy,
    profile_stages,
    self_time_breakdown,
    to_chrome_trace,
    to_json_lines,
    to_table,
)
from repro.query import (
    MediaDatabase,
    TemporalIndex,
    components_during,
    components_overlapping,
    demonstrate_correctness,
    frames_at_fidelity,
    gaps_in_presentation,
    relation_matrix,
    select_duration,
    select_track,
)

__all__ = [
    # errors
    "errors",
    # static analysis
    "Diagnostic",
    "DiagnosticReport",
    "GraphChecker",
    "LintEngine",
    "blocking_diagnostics",
    "check_media_graph",
    "lint_repo",
    "rule_registry",
    # data model
    "Rational",
    "as_rational",
    "DiscreteTimeSystem",
    "Interval",
    "MediaKind",
    "MediaType",
    "media_type_registry",
    "MediaDescriptor",
    "ElementDescriptor",
    "QualityFactor",
    "MediaElement",
    "TimedStream",
    "TimedTuple",
    "StreamCategory",
    "MediaObject",
    "DerivedMediaObject",
    "Interpretation",
    "PlacementEntry",
    "Derivation",
    "DerivationObject",
    "derivation_registry",
    "MultimediaObject",
    "ProvenanceGraph",
    # storage
    "Blob",
    "MemoryBlob",
    "PagedBlob",
    "PageStore",
    "BlobStore",
    "MemoryPager",
    "FilePager",
    "PAGE_SIZE",
    # caching
    "BufferPool",
    "DerivationCache",
    # engine
    "Player",
    "CostModel",
    "RetryPolicy",
    "AdaptationPolicy",
    "PlaybackReport",
    "PrefetchReport",
    "Recorder",
    "MediaClock",
    "EventLoop",
    "VodServer",
    "SessionRequest",
    "ServeOptions",
    "ServerHealth",
    "ServerReport",
    "Fleet",
    "FleetHealth",
    "measure_sync",
    # faults
    "CrashInjector",
    "FaultPlan",
    "FaultyPager",
    "SimulatedMedium",
    # durability
    "CrashMatrix",
    "CrashMatrixReport",
    "DurablePageStore",
    "RecoveryReport",
    "WriteAheadLog",
    "atomic_write_bytes",
    "default_scenarios",
    "recover_page_store",
    # observability
    "Observability",
    "NullObservability",
    "MetricsRegistry",
    "Tracer",
    "LogicalClock",
    "Instrumented",
    "FlightRecorder",
    "Event",
    "Severity",
    "Slo",
    "SloPolicy",
    "SloVerdict",
    "default_slo_policy",
    "PipelineProfile",
    "profile_stages",
    "self_time_breakdown",
    "to_chrome_trace",
    "to_json_lines",
    "to_table",
    # query
    "MediaDatabase",
    "TemporalIndex",
    "demonstrate_correctness",
    "select_track",
    "select_duration",
    "frames_at_fidelity",
    "components_during",
    "components_overlapping",
    "gaps_in_presentation",
    "relation_matrix",
]
