"""Exception hierarchy for the repro library.

All library errors derive from :class:`MediaModelError` so applications can
catch any library failure with a single except clause while still being able
to discriminate the subsystem that raised it.
"""

from __future__ import annotations


class MediaModelError(Exception):
    """Base class for all errors raised by the repro library."""


#: Canonical alias for the taxonomy root. The static linter
#: (:mod:`repro.analysis.lint`, rule LN003) enforces that every ``raise``
#: in ``src/repro`` uses this taxonomy — builtin exceptions are reserved
#: for genuine interpreter-level failures.
ReproError = MediaModelError


class RationalConversionError(MediaModelError, TypeError):
    """A value cannot be converted to an exact :class:`Rational`.

    Doubles as a :class:`TypeError` because refusing a ``float`` where an
    exact number is required is a typing failure by Python convention;
    existing ``except TypeError`` call sites keep working.
    """


class TimeSystemError(MediaModelError):
    """Invalid discrete time system or time value (Definition 2)."""


class StreamError(MediaModelError):
    """A timed stream violates Definition 3 or a category constraint."""


class StreamConstraintError(StreamError):
    """A stream violates a constraint imposed by its media type."""


class DescriptorError(MediaModelError):
    """A media or element descriptor is malformed for its media type."""


class MediaTypeError(MediaModelError):
    """Unknown media type or a value outside the type's specification."""


class QualityError(MediaModelError):
    """Unknown quality factor or unsatisfiable quality request."""


class BlobError(MediaModelError):
    """BLOB storage failure (Definition 4)."""


class BlobBoundsError(BlobError):
    """A read or placement refers to bytes outside the BLOB."""


class TransientBlobError(BlobError):
    """A read failed for a transient reason; retrying may succeed."""


class BlobCorruptionError(BlobError):
    """Page data is unreadable or failed integrity verification.

    Unlike :class:`TransientBlobError` this is permanent: retrying the
    same read cannot recover the bytes.
    """


class InterpretationError(MediaModelError):
    """An interpretation is inconsistent with its BLOB (Definition 5)."""


class DerivationError(MediaModelError):
    """A derivation cannot be applied or expanded (Definition 6)."""


class CompositionError(MediaModelError):
    """Invalid temporal or spatial composition (Definition 7)."""


class CodecError(MediaModelError):
    """Encoding or decoding failure in a codec substrate."""


class StorageError(MediaModelError):
    """Storage layout, index, or container failure."""


class ContainerFormatError(StorageError):
    """A serialized container is malformed or has a bad magic/version."""


class EngineError(MediaModelError):
    """Playback/recording engine failure."""


class SchedulingError(EngineError):
    """The scheduler was given an infeasible or malformed task set."""


class PlaybackAbortError(EngineError):
    """Playback gave up: faults exceeded the retry policy's tolerance."""


class ResourceError(EngineError):
    """Admission control rejected a real-time task set."""


class PlanRejectedError(EngineError):
    """Static plan verification rejected a playback plan.

    Raised by :meth:`~repro.engine.player.Player.plan_multimedia` (and the
    :class:`~repro.engine.vod.VodServer` catalog) before any page reads
    occur. ``diagnostics`` holds the
    :class:`~repro.analysis.diagnostics.Diagnostic` rows that justified
    the rejection.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class DurabilityError(MediaModelError):
    """Failure in the durability layer (WAL, atomic commit, recovery)."""


class WalError(DurabilityError):
    """The write-ahead log cannot accept or replay a record."""


class WalCorruptionError(WalError):
    """A WAL segment is corrupt beyond the torn tail a crash explains.

    A crash can only tear the *end* of the newest segment; a bad record
    with valid records (or whole segments) after it means the log itself
    was damaged, and recovery refuses to guess.
    """


class CheckpointError(DurabilityError):
    """A server checkpoint cannot be written, parsed, or restored."""


class SimulatedCrash(MediaModelError):
    """An injected crash fired at a durability crash point.

    Raised by :class:`~repro.faults.crash.CrashInjector` when the armed
    crash site is reached. It deliberately models the process dying:
    recovery code must never catch and continue past it — the crash-test
    harness is the only sanctioned handler.
    """


class AnalysisError(MediaModelError):
    """Misuse of the static analysis layer (bad rule id, bad target)."""


class ObservabilityError(MediaModelError):
    """Misuse of the metrics/tracing layer (type clash, bad buckets)."""


class CacheError(MediaModelError):
    """Misuse of the caching layer (bad capacity, unbalanced pin)."""


class QueryError(MediaModelError):
    """Malformed query or unknown catalog entry."""


class CatalogError(QueryError):
    """A database catalog entry is missing or duplicated."""


class QueryIndexError(QueryError):
    """The relational temporal index is missing, stale, or unusable."""
