"""BLOBs: uninterpreted byte sequences (Definition 4).

Applications see a BLOB as "a sequence of bytes" supporting read and
append; insertion and deletion of byte spans are optional ("for
time-based media these operations are not essential since non-destructive
editing techniques are often used").

Two concrete forms:

* :class:`MemoryBlob` — a contiguous ``bytearray``; simplest and fastest.
* :class:`PagedBlob` — a chain of pages in a
  :class:`~repro.blob.pages.PageStore`; supports fragmentation, which is
  exactly the case where "a BLOB ... may be fragmented, the layout of
  BLOBs is a performance issue and not directly relevant to data
  modeling".

Both expose identical semantics so interpretations never care which one
they sit on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.blob.pages import PageStore
from repro.errors import BlobBoundsError, BlobError


class Blob(ABC):
    """The Definition 4 interface: length, read, append."""

    @abstractmethod
    def __len__(self) -> int:
        """Current length in bytes."""

    @abstractmethod
    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``offset``.

        Raises :class:`BlobBoundsError` if the span is not fully inside
        the BLOB — a short read would silently corrupt media elements.
        """

    @abstractmethod
    def append(self, data: bytes) -> int:
        """Append ``data``; return the offset at which it was placed."""

    def read_all(self) -> bytes:
        return self.read(0, len(self))

    def _check_span(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0:
            raise BlobBoundsError(f"negative span ({offset}, {size})")
        if offset + size > len(self):
            raise BlobBoundsError(
                f"span [{offset}, {offset + size}) exceeds BLOB length {len(self)}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self)} bytes)"


class MemoryBlob(Blob):
    """A contiguous in-memory BLOB."""

    def __init__(self, data: bytes = b""):
        self._data = bytearray(data)

    def __len__(self) -> int:
        return len(self._data)

    def read(self, offset: int, size: int) -> bytes:
        self._check_span(offset, size)
        return bytes(self._data[offset:offset + size])

    def append(self, data: bytes) -> int:
        offset = len(self._data)
        self._data.extend(data)
        return offset


class PagedBlob(Blob):
    """A BLOB stored as a chain of pages in a :class:`PageStore`.

    The page chain need not be contiguous; interleaved growth of several
    blobs over one store naturally fragments the chains. Reads gather
    across page boundaries transparently.
    """

    def __init__(self, store: PageStore, pages: list[int] | None = None,
                 length: int = 0):
        self.store = store
        self._pages: list[int] = list(pages or [])
        if length < 0 or length > len(self._pages) * store.page_size:
            raise BlobError(
                f"length {length} inconsistent with {len(self._pages)} pages"
            )
        self._length = length

    def __len__(self) -> int:
        return self._length

    @property
    def pages(self) -> list[int]:
        """The page chain (page numbers, in BLOB order)."""
        return list(self._pages)

    def fragmentation(self) -> float:
        """Fraction of non-adjacent page transitions (0.0 = contiguous)."""
        return self.store.fragmentation(self._pages)

    def read(self, offset: int, size: int) -> bytes:
        self._check_span(offset, size)
        page_size = self.store.page_size
        pool = getattr(self.store, "buffer_pool", None)
        chunks = []
        remaining = size
        position = offset
        while remaining > 0:
            page_index, page_offset = divmod(position, page_size)
            take = min(remaining, page_size - page_offset)
            page_no = self._pages[page_index]
            if pool is not None:
                # Hold the page against eviction for the span of the
                # gather step; the unpin must survive a torn read.
                pool.pin(page_no)
                try:
                    page = self.store.read(page_no)
                finally:
                    pool.unpin(page_no)
            else:
                page = self.store.read(page_no)
            chunks.append(page[page_offset:page_offset + take])
            position += take
            remaining -= take
        return b"".join(chunks)

    def append(self, data: bytes) -> int:
        start_offset = self._length
        page_size = self.store.page_size
        position = self._length
        view = memoryview(data)
        written = 0
        while written < len(data):
            page_index, page_offset = divmod(position, page_size)
            if page_index == len(self._pages):
                self._pages.append(self.store.allocate())
            take = min(len(data) - written, page_size - page_offset)
            self.store.write(
                self._pages[page_index],
                bytes(view[written:written + take]),
                offset=page_offset,
            )
            written += take
            position += take
        self._length = position
        return start_offset

    def release(self) -> None:
        """Return all pages to the store and empty the BLOB."""
        self.store.free_many(self._pages)
        self._pages = []
        self._length = 0
