"""BLOB substrate (Definition 4).

"A BLOB is an attribute value that appears to applications as a sequence
of bytes. The database system provides an interface by which applications
can read and append data to BLOBs."

The package provides:

* :class:`~repro.blob.blob.Blob` -- the byte-sequence interface;
* :class:`~repro.blob.blob.MemoryBlob` -- contiguous, in-memory;
* :class:`~repro.blob.pages.PageStore` -- a paged backing store
  (memory- or file-backed) with a free list, in the spirit of the
  EXODUS/Starburst long-field managers the paper cites;
* :class:`~repro.blob.blob.PagedBlob` -- a possibly fragmented BLOB over
  a page store ("a BLOB may correspond to a region of contiguous storage
  or it may be fragmented");
* :class:`~repro.blob.store.BlobStore` -- a catalog of named BLOBs over
  one page store.
"""

from repro.blob.blob import Blob, MemoryBlob, PagedBlob
from repro.blob.pages import PAGE_SIZE, FilePager, MemoryPager, PageStore
from repro.blob.store import BlobStore

__all__ = [
    "Blob",
    "MemoryBlob",
    "PagedBlob",
    "PAGE_SIZE",
    "FilePager",
    "MemoryPager",
    "PageStore",
    "BlobStore",
]
