"""Paged backing storage for BLOBs.

A :class:`PageStore` hands out fixed-size pages from a backing *pager*
(memory or file), tracks a free list, and reports fragmentation
statistics. BLOBs allocate page chains from it; freeing returns pages for
reuse, which is how interleaved capture of several growing BLOBs produces
the fragmented ("non-contiguous") layouts the paper mentions.

The layout of BLOBs "is a performance issue and not directly relevant to
data modeling" (§4.1) — but the model must tolerate it, so we build it.
"""

from __future__ import annotations

import os
import zlib
from typing import TYPE_CHECKING, Iterable

from repro.errors import BlobCorruptionError, BlobError
from repro.obs.events import Severity
from repro.obs.instrument import Instrumented, Observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.pool import BufferPool

#: Default page size (bytes). Small enough that test blobs fragment,
#: large enough to amortize per-page bookkeeping.
PAGE_SIZE = 4096


class MemoryPager:
    """Backing pager keeping pages in a list of bytearrays."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._pages: list[bytearray] = []

    def __len__(self) -> int:
        return len(self._pages)

    def grow(self) -> int:
        """Append a zeroed page; return its page number."""
        self._pages.append(bytearray(self.page_size))
        return len(self._pages) - 1

    def read_page(self, page_no: int) -> bytes:
        self._check(page_no)
        return bytes(self._pages[page_no])

    def write_page(self, page_no: int, data: bytes, offset: int = 0) -> None:
        self._check(page_no)
        if offset + len(data) > self.page_size:
            raise BlobError(
                f"write of {len(data)} bytes at offset {offset} exceeds "
                f"page size {self.page_size}"
            )
        self._pages[page_no][offset:offset + len(data)] = data

    def _check(self, page_no: int) -> None:
        if not 0 <= page_no < len(self._pages):
            raise BlobError(f"page {page_no} out of range (have {len(self._pages)})")


class FilePager:
    """Backing pager over a single file.

    The file is opened (and created if missing) in binary read/write
    mode. Pages are addressed by number; growing extends the file with a
    zeroed page.

    ``fs`` selects the filesystem the pager writes through — the real OS
    by default, or a crashable
    :class:`~repro.faults.disk.SimulatedMedium` under the crash matrix.
    :meth:`sync` is the durability barrier
    :class:`~repro.durability.store.DurablePageStore` checkpoints
    against.
    """

    def __init__(self, path: str | os.PathLike, page_size: int = PAGE_SIZE,
                 fs=None, repair: bool = False):
        # Imported lazily: repro.durability.fs is dependency-free, but
        # pulling it in at module scope would run repro.durability's
        # package init, which imports this module right back.
        from repro.durability.fs import resolve

        self.page_size = page_size
        self.path = os.fspath(path)
        self.fs = resolve(fs)
        self.repaired_bytes = 0
        mode = "r+b" if self.fs.exists(self.path) else "w+b"
        self._file = self.fs.open(self.path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            if not repair:
                raise BlobError(
                    f"{self.path} size {size} is not a multiple of page size"
                )
            # A crash can tear the file's last page mid-write. Pad it
            # back to a page boundary: WAL replay rewrites any damaged
            # committed page from its full image, and bytes past the
            # last commit were never acknowledged.
            pad = page_size - (size % page_size)
            self._file.write(b"\x00" * pad)
            self.repaired_bytes = pad
            size += pad
        self._page_count = size // page_size

    def __len__(self) -> int:
        return self._page_count

    def grow(self) -> int:
        page_no = self._page_count
        self._file.seek(page_no * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._page_count += 1
        return page_no

    def read_page(self, page_no: int) -> bytes:
        self._check(page_no)
        self._file.seek(page_no * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise BlobError(f"short read on page {page_no}")
        return data

    def write_page(self, page_no: int, data: bytes, offset: int = 0) -> None:
        self._check(page_no)
        if offset + len(data) > self.page_size:
            raise BlobError(
                f"write of {len(data)} bytes at offset {offset} exceeds "
                f"page size {self.page_size}"
            )
        self._file.seek(page_no * self.page_size + offset)
        self._file.write(data)

    def flush(self) -> None:
        self._file.flush()

    def sync(self) -> None:
        """Flush and fsync the backing file: pages are durable after this.

        Also fsyncs the parent directory — a file this pager *created*
        has no durable name until its directory entry is synced, and a
        crash would otherwise resurrect an empty namespace around a
        perfectly synced file (the crash matrix caught exactly that).
        """
        self.fs.fsync(self._file)
        fsync_dir = getattr(self.fs, "fsync_dir", None)
        if fsync_dir is not None:
            fsync_dir(os.path.dirname(self.path) or ".")

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "FilePager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check(self, page_no: int) -> None:
        if not 0 <= page_no < self._page_count:
            raise BlobError(f"page {page_no} out of range (have {self._page_count})")


class PageStore(Instrumented):
    """Page allocator with a free list over a backing pager.

    With ``checksums=True`` the store keeps a CRC-32 per page, updated
    on every write and verified on every read, so silent corruption
    beneath the pager (bad media, an injected bit flip) surfaces as
    :class:`~repro.errors.BlobCorruptionError` instead of decoding
    garbage downstream. Checksums are computed from the write path's own
    data — a fault-injecting pager may expose ``read_page_raw`` so the
    maintenance read bypasses injected read faults (the controller
    checksums bytes still in its buffer).

    With a ``buffer_pool`` (:class:`~repro.cache.pool.BufferPool`) the
    store reads through a bounded LRU page cache: hits skip the pager
    *and* checksum verification (only verified bytes are cached), and
    every write, free or reuse invalidates or refreshes the cached copy
    so the pool never serves stale data.
    """

    def __init__(self, pager: MemoryPager | FilePager | None = None,
                 checksums: bool = False,
                 buffer_pool: "BufferPool | None" = None,
                 obs: Observability | None = None):
        # Explicit None check: an empty pager is falsy (len() == 0), so
        # `pager or MemoryPager()` would silently discard it.
        self.pager = MemoryPager() if pager is None else pager
        self.buffer_pool = buffer_pool
        if obs is not None:
            self.instrument(obs)
        # Free pages: the set answers membership in O(1) (double-free
        # checks, bulk release of large blobs), the list preserves LIFO
        # reuse order. Both are updated together.
        self._free: set[int] = set()
        self._free_order: list[int] = []
        self.checksums = checksums
        self._checksums: dict[int, int] = {}
        self._zero_page = bytes(self.page_size)
        self._zero_crc = zlib.crc32(self._zero_page)

    def _instrument_children(self, obs: Observability) -> None:
        if isinstance(self.pager, Instrumented):
            self.pager.instrument(obs)
        if self.buffer_pool is not None:
            self.buffer_pool.instrument(obs)

    @property
    def page_size(self) -> int:
        return self.pager.page_size

    @property
    def allocated_pages(self) -> int:
        return len(self.pager) - len(self._free)

    @property
    def free_pages(self) -> int:
        return len(self._free)

    def allocate(self) -> int:
        """Return a zeroed page number, reusing freed pages before growing.

        A reused page is zeroed (and its checksum reset) before it is
        handed out — freshly grown pages arrive zeroed from the pager,
        and the new owner must never see the previous owner's bytes.
        """
        if self._free_order:
            page_no = self._free_order.pop()
            self._free.discard(page_no)
            self.pager.write_page(page_no, self._zero_page)
            if self.checksums:
                self._checksums[page_no] = self._zero_crc
            if self.buffer_pool is not None:
                self.buffer_pool.invalidate(page_no)
            self._obs.metrics.counter("blob.page.zeroed").inc()
            self._obs.metrics.counter("blob.page.allocations").inc(
                source="reuse"
            )
            return page_no
        page_no = self.pager.grow()
        if self.checksums:
            self._checksums[page_no] = self._zero_crc
        self._obs.metrics.counter("blob.page.allocations").inc(source="grow")
        return page_no

    def allocate_many(self, count: int) -> list[int]:
        return [self.allocate() for _ in range(count)]

    def free(self, page_no: int) -> None:
        if not 0 <= page_no < len(self.pager):
            raise BlobError(
                f"cannot free page {page_no}: out of range "
                f"(have {len(self.pager)})"
            )
        if page_no in self._free:
            raise BlobError(f"double free of page {page_no}")
        self._free.add(page_no)
        self._free_order.append(page_no)
        if self.buffer_pool is not None:
            self.buffer_pool.invalidate(page_no)
        self._obs.metrics.counter("blob.page.frees").inc()

    def free_many(self, pages: Iterable[int]) -> None:
        for page_no in pages:
            self.free(page_no)

    def read(self, page_no: int, verify: bool = True) -> bytes:
        metrics = self._obs.metrics
        metrics.counter("blob.page.reads").inc()
        pool = self.buffer_pool
        if pool is not None:
            cached = pool.get(page_no)
            if cached is not None:
                # Cached bytes were verified at fill time; serving the
                # hit skips both the pager and the CRC pass.
                metrics.counter("blob.page.cache_hits").inc()
                metrics.counter("blob.page.bytes_read").inc(len(cached))
                return cached
        data = self.pager.read_page(page_no)
        metrics.counter("blob.page.pager_reads").inc()
        metrics.counter("blob.page.bytes_read").inc(len(data))
        if verify and self.checksums:
            expected = self._checksums.get(page_no)
            if expected is not None:
                metrics.counter("blob.page.checksum_verifications").inc()
                if zlib.crc32(data) != expected:
                    metrics.counter("blob.page.checksum_failures").inc()
                    self._obs.events.record(
                        Severity.ERROR, "blob.pages", "checksum.failure",
                        page=page_no,
                    )
                    raise BlobCorruptionError(
                        f"page {page_no} failed checksum verification"
                    )
        if pool is not None and (verify or not self.checksums):
            # Only verified (or checksum-free) bytes may enter the pool;
            # a salvage read with verify=False must not poison it.
            pool.put(page_no, data)
        return data

    def write(self, page_no: int, data: bytes, offset: int = 0) -> None:
        metrics = self._obs.metrics
        metrics.counter("blob.page.writes").inc()
        metrics.counter("blob.page.bytes_written").inc(len(data))
        self.pager.write_page(page_no, data, offset)
        full_page = offset == 0 and len(data) == self.page_size
        if self.checksums:
            if full_page:
                self._checksums[page_no] = zlib.crc32(data)
            else:
                self._checksums[page_no] = zlib.crc32(self._read_raw(page_no))
        pool = self.buffer_pool
        if pool is not None and page_no in pool:
            # Write-through: refresh a cached full page in place, drop a
            # partially overwritten one (the pool never holds stale data).
            if full_page:
                pool.put(page_no, data)
            else:
                pool.invalidate(page_no)

    def verify_page(self, page_no: int) -> bool:
        """Does ``page_no`` currently match its recorded checksum?

        Pages never written through a checksumming store (e.g. from a
        reopened file) have no recorded checksum and verify trivially;
        use :meth:`rebuild_checksums` to adopt them.
        """
        expected = self._checksums.get(page_no)
        if expected is None:
            return True
        return zlib.crc32(self.pager.read_page(page_no)) == expected

    def rebuild_checksums(self) -> None:
        """Recompute checksums for every page from the raw backing data."""
        self._checksums = {
            page_no: zlib.crc32(self._read_raw(page_no))
            for page_no in range(len(self.pager))
        }

    def _read_raw(self, page_no: int) -> bytes:
        """Maintenance read for checksum upkeep, accounted separately.

        Raw re-reads (partial-write checksum refresh, rebuilds) are
        *not* logical page reads: they bump ``blob.page.raw_reads`` /
        ``raw_bytes_read``, never ``blob.page.reads`` or ``bytes_read``,
        so cache hit-ratio math over the read counters stays truthful.
        """
        raw_read = getattr(self.pager, "read_page_raw", self.pager.read_page)
        data = raw_read(page_no)
        metrics = self._obs.metrics
        metrics.counter("blob.page.raw_reads").inc()
        metrics.counter("blob.page.raw_bytes_read").inc(len(data))
        return data

    def flush(self) -> None:
        flush = getattr(self.pager, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        close = getattr(self.pager, "close", None)
        if close is not None:
            close()

    def fragmentation(self, chain: list[int]) -> float:
        """Fraction of non-adjacent successors in a page chain.

        0.0 means perfectly contiguous; approaching 1.0 means every page
        jump is a seek. Used by the layout ablation benchmark.
        """
        if len(chain) < 2:
            return 0.0
        breaks = sum(
            1 for a, b in zip(chain, chain[1:]) if b != a + 1
        )
        return breaks / (len(chain) - 1)
