"""A catalog of named BLOBs over one page store.

The :class:`BlobStore` is the storage-manager face of the database: it
creates, looks up and deletes BLOBs, and reports aggregate statistics.
It deliberately knows nothing about media — interpretation is layered on
top (Definition 5), never pushed down here.

File-backed stores own an open file handle; use the store as a context
manager (or call :meth:`BlobStore.close`) so it is flushed and released.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.blob.blob import PagedBlob
from repro.blob.pages import FilePager, MemoryPager, PageStore
from repro.errors import BlobError
from repro.obs.instrument import Instrumented, Observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.pool import BufferPool


class BlobStore(Instrumented):
    """Named BLOBs sharing a single :class:`PageStore`.

    ``buffer_pool`` attaches a :class:`~repro.cache.pool.BufferPool` to
    the page store (only when the store is built here; an explicit
    ``store`` keeps whatever pool it already has).
    """

    def __init__(self, store: PageStore | None = None,
                 buffer_pool: "BufferPool | None" = None,
                 obs: Observability | None = None):
        if store is not None and buffer_pool is not None:
            raise BlobError(
                "pass buffer_pool to the PageStore when supplying one "
                "explicitly"
            )
        self.pages = store or PageStore(MemoryPager(), buffer_pool=buffer_pool)
        self._blobs: dict[str, PagedBlob] = {}
        if obs is not None:
            self.instrument(obs)

    def _instrument_children(self, obs: Observability) -> None:
        self.pages.instrument(obs)

    @property
    def buffer_pool(self) -> "BufferPool | None":
        """The page cache the underlying store reads through, if any."""
        return self.pages.buffer_pool

    @classmethod
    def file_backed(cls, path, page_size: int | None = None,
                    checksums: bool = False,
                    buffer_pool: "BufferPool | None" = None,
                    obs: Observability | None = None) -> "BlobStore":
        """A store persisting pages in a single file at ``path``."""
        pager = (
            FilePager(path, page_size) if page_size else FilePager(path)
        )
        return cls(
            PageStore(pager, checksums=checksums, buffer_pool=buffer_pool),
            obs=obs,
        )

    def flush(self) -> None:
        """Flush a file-backed page store to disk (no-op in memory)."""
        self.pages.flush()

    def close(self) -> None:
        """Flush and close the backing store's file handle, if any.

        Safe to call more than once; a memory-backed store is a no-op.
        """
        self.pages.close()

    def __enter__(self) -> "BlobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def create(self, name: str) -> PagedBlob:
        if name in self._blobs:
            raise BlobError(f"BLOB {name!r} already exists")
        blob = PagedBlob(self.pages)
        self._blobs[name] = blob
        self._obs.metrics.counter("blob.store.creates").inc()
        self._obs.metrics.gauge("blob.store.blobs").set(len(self._blobs))
        return blob

    def get(self, name: str) -> PagedBlob:
        try:
            return self._blobs[name]
        except KeyError:
            raise BlobError(
                f"no BLOB named {name!r}; have: "
                f"{', '.join(sorted(self._blobs)) or '(none)'}"
            ) from None

    def delete(self, name: str) -> None:
        blob = self.get(name)
        blob.release()
        del self._blobs[name]
        self._obs.metrics.counter("blob.store.deletes").inc()
        self._obs.metrics.gauge("blob.store.blobs").set(len(self._blobs))

    def __contains__(self, name: str) -> bool:
        return name in self._blobs

    def names(self) -> list[str]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def stats(self) -> dict:
        """Aggregate storage statistics for reporting."""
        stats = {
            "blobs": len(self._blobs),
            "total_bytes": self.total_bytes(),
            "pages_allocated": self.pages.allocated_pages,
            "pages_free": self.pages.free_pages,
            "page_size": self.pages.page_size,
            "mean_fragmentation": (
                sum(b.fragmentation() for b in self._blobs.values())
                / len(self._blobs)
                if self._blobs else 0.0
            ),
        }
        if self.buffer_pool is not None:
            stats["cache"] = self.buffer_pool.stats()
        return stats
