"""Playback/recording engine: simulated real-time behaviour.

"The handling (retrieval, storage, and processing) of media elements is
subject to real-time constraints" (§2.2), and "playback 'jitter' can be
removed by the application just prior to presentation" (§5). The engine
makes these statements measurable without wall-clock dependence:

* :mod:`repro.engine.clock` — a simulated media clock;
* :mod:`repro.engine.scheduler` — deadline scheduling of presentation
  events with lateness/jitter accounting;
* :mod:`repro.engine.buffers` — prefetch buffering and underrun analysis;
* :mod:`repro.engine.player` — plays multimedia objects against a
  storage/decode cost model;
* :mod:`repro.engine.kernel` — the heap-scheduled discrete-event
  kernel: one shared simulated clock, sessions as event-emitting state
  machines;
* :mod:`repro.engine.fleet` — N VOD shards behind a rendezvous router
  with fleet-wide admission, failover and health rollup;
* :mod:`repro.engine.recorder` — capture: encode + interleave + build
  the interpretation as the BLOB is written;
* :mod:`repro.engine.sync` — inter-stream skew measurement;
* :mod:`repro.engine.resources` — admission control for real-time
  derivation expansion (§4.2's store-or-expand decision).
"""

from repro.engine.clock import MediaClock
from repro.engine.scheduler import PresentationEvent, ScheduleReport, schedule_events
from repro.engine.buffers import PrefetchReport, RingBuffer, simulate_prefetch
from repro.engine.player import (
    AdaptationPolicy,
    CostModel,
    PlaybackReport,
    Player,
    RetryPolicy,
)
from repro.engine.recorder import Recorder
from repro.engine.sync import SyncReport, measure_sync
from repro.engine.resources import ExpansionDecision, ResourceModel
from repro.engine.kernel import (
    BandwidthLedger,
    EventLoop,
    SessionMachine,
    SimulatedClock,
)
from repro.engine.vod import (
    ServeOptions,
    ServerHealth,
    ServerReport,
    Session,
    SessionRequest,
    VodServer,
)
from repro.engine.fleet import Fleet, FleetHealth, place
from repro.engine.activities import ActivityGraph, Consumer, Producer, Transform, pipeline

__all__ = [
    "MediaClock",
    "PresentationEvent",
    "ScheduleReport",
    "schedule_events",
    "PrefetchReport",
    "RingBuffer",
    "simulate_prefetch",
    "AdaptationPolicy",
    "CostModel",
    "PlaybackReport",
    "Player",
    "RetryPolicy",
    "Recorder",
    "SyncReport",
    "measure_sync",
    "ExpansionDecision",
    "ResourceModel",
    "BandwidthLedger",
    "EventLoop",
    "SessionMachine",
    "SimulatedClock",
    "ServeOptions",
    "ServerHealth",
    "ServerReport",
    "Session",
    "SessionRequest",
    "VodServer",
    "Fleet",
    "FleetHealth",
    "place",
    "ActivityGraph",
    "Consumer",
    "Producer",
    "Transform",
    "pipeline",
]
