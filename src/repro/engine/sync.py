"""Inter-stream synchronization measurement.

"It is often the case ... that audio elements must be synchronized with
visual elements" (§2.2). Given the per-element lateness playback induces
on two streams, the *skew* at any instant is the difference of their
presentation errors; lip-sync tolerance is conventionally ~80 ms. This
module measures skew between streams played from the same report, for
benchmark E7's interleaving comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rational import Rational, as_rational
from repro.errors import EngineError


@dataclass
class SyncReport:
    """Skew statistics between two streams."""

    max_skew: Rational
    mean_skew: Rational
    samples: int

    def within_tolerance(self, tolerance) -> bool:
        """Whether maximum skew stays inside ``tolerance`` seconds."""
        return self.max_skew <= as_rational(tolerance)


def measure_sync(
    lateness_a: list[Rational],
    deadlines_a: list[Rational],
    lateness_b: list[Rational],
    deadlines_b: list[Rational],
) -> SyncReport:
    """Skew between two streams from per-element lateness.

    For each element of stream A, the element of B presented nearest in
    ideal time is found and the lateness difference taken. Lists must be
    deadline-sorted.
    """
    if len(lateness_a) != len(deadlines_a) or len(lateness_b) != len(deadlines_b):
        raise EngineError("lateness and deadline lists must align")
    if not deadlines_a or not deadlines_b:
        return SyncReport(Rational(0), Rational(0), 0)
    skews = []
    j = 0
    for late_a, deadline_a in zip(lateness_a, deadlines_a):
        while (j + 1 < len(deadlines_b)
               and abs(deadlines_b[j + 1] - deadline_a)
               <= abs(deadlines_b[j] - deadline_a)):
            j += 1
        skews.append(abs(as_rational(late_a) - as_rational(lateness_b[j])))
    total = sum(skews, Rational(0))
    return SyncReport(
        max_skew=max(skews),
        mean_skew=total / len(skews),
        samples=len(skews),
    )
