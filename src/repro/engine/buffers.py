"""Buffering: ring buffers and prefetch underrun analysis.

"Playback 'jitter' can be removed by the application just prior to
presentation" (§5) — by buffering. :func:`simulate_prefetch` quantifies
the claim: given element arrival times (from the storage model) and
presentation deadlines, it computes underruns as a function of prefetch
depth; benchmark E7 sweeps the depth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.rational import Rational, as_rational
from repro.errors import EngineError


class RingBuffer:
    """A bounded FIFO of elements between producer and consumer."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise EngineError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def push(self, item) -> None:
        if self.is_full:
            raise EngineError("ring buffer overflow")
        self._items.append(item)

    def pop(self):
        if self.is_empty:
            raise EngineError("ring buffer underflow")
        return self._items.popleft()

    def try_push(self, item) -> bool:
        if self.is_full:
            return False
        self._items.append(item)
        return True

    def try_pop(self):
        if self.is_empty:
            return None
        return self._items.popleft()


@dataclass
class PrefetchReport:
    """Underrun analysis for one prefetch depth.

    ``high_water`` is the maximum number of elements simultaneously
    buffered (produced but not yet presented) — the actual memory the
    prefetch buffer needed, at most ``depth`` during steady state.
    """

    depth: int
    startup_delay: Rational
    underruns: int
    max_wait: Rational
    presented: int
    high_water: int = 0

    @property
    def underrun_fraction(self) -> float:
        if not self.presented:
            return 0.0
        return self.underruns / self.presented


def simulate_prefetch(
    production_times: list[Rational],
    deadlines: list[Rational],
    depth: int,
) -> PrefetchReport:
    """Simulate playback with a prefetch buffer of ``depth`` elements.

    ``production_times[i]`` is when element ``i`` finishes read+decode
    under continuous production (already cumulative); ``deadlines[i]`` is
    its ideal presentation time *relative to playback start*. Playback
    starts once ``depth`` elements (or all of them) are buffered. An
    underrun occurs when an element's production completes after its
    shifted deadline; the element is presented late rather than dropped.
    """
    if len(production_times) != len(deadlines):
        raise EngineError("production and deadline lists must align")
    count = len(deadlines)
    if count == 0:
        return PrefetchReport(depth, Rational(0), 0, Rational(0), 0)
    if depth < 1:
        raise EngineError("prefetch depth must be >= 1")
    fill = min(depth, count)
    startup = as_rational(production_times[fill - 1])
    underruns = 0
    max_wait = Rational(0)
    presentations = []
    for produced, deadline in zip(production_times, deadlines):
        produced = as_rational(produced)
        shifted_deadline = startup + as_rational(deadline)
        if produced > shifted_deadline:
            underruns += 1
            max_wait = max(max_wait, produced - shifted_deadline)
        presentations.append(max(produced, shifted_deadline))
    # Buffer occupancy high-water: both production and presentation
    # times are non-decreasing, so a single forward scan counting
    # elements produced but not yet presented at each production
    # instant finds the peak.
    high_water = 0
    presented_before = 0
    for index, produced in enumerate(production_times):
        produced = as_rational(produced)
        while (presented_before < index
               and presentations[presented_before] < produced):
            presented_before += 1
        high_water = max(high_water, index + 1 - presented_before)
    return PrefetchReport(
        depth=depth,
        startup_delay=startup,
        underruns=underruns,
        max_wait=max_wait,
        presented=count,
        high_water=high_water,
    )
