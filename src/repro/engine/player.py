"""Playback of interpreted media against a storage/decode cost model.

"Using a BLOB data type it is possible to read and write time-based media
but ... the more relevant operations of 'play' and 'record' have no
meaning." (§1.2) The player gives "play" meaning: it walks an
interpretation's placement tables in presentation order, charges each
element read/decode costs from a :class:`CostModel`, and reports whether
deadlines were met — startup delay, underruns, jitter, and the data rate
the storage system must sustain.

Everything is simulated with exact rational arithmetic; no wall-clock
time is involved, so reports are reproducible to the bit.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from collections import Counter
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.composition import MultimediaObject
from repro.core.interpretation import Interpretation
from repro.core.rational import Rational, as_rational
from repro.engine.buffers import simulate_prefetch
from repro.errors import EngineError, PlaybackAbortError
from repro.faults.plan import FaultPlan
from repro.obs.events import Severity
from repro.obs.instrument import NULL_OBS, Observability
from repro.obs.profile import STAGE_BUCKETS, STAGE_METRIC
from repro.obs.slo import SloPolicy, SloVerdict, default_slo_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.derivations import DerivationCache

#: Fixed lateness-histogram boundaries (seconds). Fixed so per-stream
#: lateness distributions are comparable across runs and workloads.
LATENESS_BUCKETS: tuple[float, ...] = (
    0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
)


@dataclass(frozen=True)
class CostModel:
    """Storage and decode cost parameters.

    ``bandwidth`` — bytes/second of sequential read;
    ``seek_time`` — seconds charged when a read is not contiguous with
    the previous one;
    ``decode_rate`` — bytes/second of decode work (None = free).

    Defaults approximate a 1994-era single-speed-ish optical drive so the
    paper's data-rate arithmetic lands in a plausible regime.
    """

    bandwidth: Rational = Rational(1_500_000)
    seek_time: Rational = Rational(1, 100)
    decode_rate: Rational | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "bandwidth", as_rational(self.bandwidth))
        object.__setattr__(self, "seek_time", as_rational(self.seek_time))
        if self.decode_rate is not None:
            object.__setattr__(self, "decode_rate", as_rational(self.decode_rate))
        if self.bandwidth <= 0:
            raise EngineError("bandwidth must be positive")
        if self.seek_time < 0:
            raise EngineError(
                f"seek_time must be non-negative, got {self.seek_time}"
            )
        if self.decode_rate is not None and self.decode_rate <= 0:
            raise EngineError(
                f"decode_rate must be positive, got {self.decode_rate}"
            )

    def element_cost(self, size: int, contiguous: bool,
                     bandwidth_factor: Rational | None = None) -> Rational:
        """Seconds to read (and decode) ``size`` bytes.

        ``bandwidth_factor`` scales only the transfer term — a degraded
        link slows the bytes, not the head movement or the decoder.
        """
        bandwidth = self.bandwidth
        if bandwidth_factor is not None and bandwidth_factor != 1:
            bandwidth = bandwidth * bandwidth_factor
        cost = Rational(size) / bandwidth
        if not contiguous:
            cost += self.seek_time
        if self.decode_rate:
            cost += Rational(size) / self.decode_rate
        return cost

    def cost_breakdown(self, size: int, contiguous: bool,
                       bandwidth_factor: Rational | None = None,
                       ) -> tuple[Rational, Rational]:
        """``element_cost`` split for stage attribution.

        Returns ``(read_seconds, decode_seconds)`` where the read term
        is seek + transfer; their sum equals :meth:`element_cost` for
        the same arguments — the profiler never invents time the engine
        didn't charge.
        """
        bandwidth = self.bandwidth
        if bandwidth_factor is not None and bandwidth_factor != 1:
            bandwidth = bandwidth * bandwidth_factor
        read = Rational(size) / bandwidth
        if not contiguous:
            read += self.seek_time
        decode = (Rational(size) / self.decode_rate if self.decode_rate
                  else Rational(0))
        return read, decode

    def replace(self, **overrides) -> "CostModel":
        """A copy with ``overrides`` applied (and re-validated)."""
        return dataclasses.replace(self, **overrides)


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """How playback responds to injected read faults.

    A failed attempt is retried up to ``max_retries`` times; each retry
    charges the re-read *plus* a backoff pause, all as simulated time,
    so recovery shows up as lateness and underruns rather than
    disappearing into a wall-clock sleep. When retries exhaust (or the
    page is permanently bad) the element is skipped with a glitch.
    ``abort_skip_fraction`` bounds tolerance: if more than that fraction
    of elements are skipped, playback raises
    :class:`~repro.errors.PlaybackAbortError` instead of presenting a
    slideshow.
    """

    max_retries: int = 3
    backoff: Rational = Rational(1, 200)
    backoff_factor: Rational = Rational(2)
    abort_skip_fraction: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backoff", as_rational(self.backoff))
        object.__setattr__(
            self, "backoff_factor", as_rational(self.backoff_factor)
        )
        if self.max_retries < 0:
            raise EngineError("max_retries must be non-negative")
        if self.backoff < 0:
            raise EngineError("backoff must be non-negative")
        if self.backoff_factor < 1:
            raise EngineError("backoff_factor must be >= 1")
        if (self.abort_skip_fraction is not None
                and not 0 < self.abort_skip_fraction <= 1):
            raise EngineError("abort_skip_fraction must be in (0, 1]")

    def backoff_cost(self, attempt: int) -> Rational:
        """Simulated pause before retrying after failed attempt ``attempt``."""
        return self.backoff * self.backoff_factor ** attempt

    def replace(self, **overrides) -> "RetryPolicy":
        """A copy with ``overrides`` applied (and re-validated)."""
        return dataclasses.replace(self, **overrides)


@dataclass(frozen=True, kw_only=True)
class AdaptationPolicy:
    """Quality degradation for scalable streams (§2.2, Definition 5).

    A scalable element is stored base-layer-first, so a player can read
    a prefix and present reduced fidelity. ``fractions[k]`` is the
    fraction of the element's bytes needed to present layer ``k``
    (defaults to a linear ramp); under a degraded bandwidth window the
    player picks the highest layer whose fraction fits the available
    factor, never dropping below ``min_level``. ``sequences`` restricts
    adaptation to the named sequences (None adapts every stream).
    """

    levels: int
    fractions: tuple[Rational, ...] | None = None
    sequences: frozenset[str] | None = None
    min_level: int = 0
    max_level: int | None = None

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise EngineError("levels must be >= 1")
        if not 0 <= self.min_level < self.levels:
            raise EngineError(
                f"min_level must be in [0, {self.levels}), got {self.min_level}"
            )
        if (self.max_level is not None
                and not self.min_level <= self.max_level < self.levels):
            raise EngineError(
                f"max_level must be in [{self.min_level}, {self.levels}), "
                f"got {self.max_level}"
            )
        if self.fractions is not None:
            fractions = tuple(as_rational(f) for f in self.fractions)
            if len(fractions) != self.levels:
                raise EngineError(
                    f"need {self.levels} fractions, got {len(fractions)}"
                )
            if any(not 0 < f <= 1 for f in fractions):
                raise EngineError("fractions must be in (0, 1]")
            if any(a > b for a, b in zip(fractions, fractions[1:])):
                raise EngineError("fractions must be non-decreasing")
            if fractions[-1] != 1:
                raise EngineError("top level must read the full element")
            object.__setattr__(self, "fractions", fractions)
        if self.sequences is not None:
            object.__setattr__(self, "sequences", frozenset(self.sequences))

    def fraction(self, level: int) -> Rational:
        if self.fractions is not None:
            return self.fractions[level]
        return Rational(level + 1, self.levels)

    def level_for(self, bandwidth_factor: Rational) -> int:
        """Highest layer whose byte fraction fits the bandwidth factor.

        ``max_level`` caps the search — a server in fallback mode pins
        quality down by lowering the cap, not by lying about bandwidth.
        """
        top = self.levels - 1 if self.max_level is None else self.max_level
        level = self.min_level
        for candidate in range(top, self.min_level - 1, -1):
            if self.fraction(candidate) <= bandwidth_factor:
                level = candidate
                break
        return level

    def applies_to(self, label: str) -> bool:
        if self.sequences is None:
            return True
        name = label.split("[", 1)[0]
        return name in self.sequences

    def replace(self, **overrides) -> "AdaptationPolicy":
        """A copy with ``overrides`` applied (and re-validated)."""
        return dataclasses.replace(self, **overrides)


@dataclass
class PlaybackReport:
    """Outcome of one simulated playback.

    ``per_read`` holds (label, deadline, lateness) per element in
    presentation order, enabling inter-stream skew analysis with
    :func:`repro.engine.sync.measure_sync`.
    """

    element_count: int
    duration: Rational
    required_rate: Rational
    startup_delay: Rational
    underruns: int
    underrun_fraction: float
    max_lateness: Rational
    jitter: Rational
    prefetch_depth: int
    seeks: int
    per_read: list[tuple[str, Rational, Rational]] = field(
        default_factory=list
    )
    retries: int = 0
    skipped_elements: int = 0
    glitches: int = 0
    delivered_quality: Rational = Rational(1)
    #: Metric snapshot captured at report time when the player ran with
    #: an observability sink (``Player(obs=...)``); None otherwise.
    metrics: dict | None = None
    #: Per-session SLO verdicts, populated when the player ran with an
    #: SLO policy (explicit ``slo_policy=`` or the default policy under
    #: an observability sink).
    slo: list[SloVerdict] = field(default_factory=list)
    #: Static plan-check findings (:class:`repro.analysis.Diagnostic`)
    #: that did not block the plan under the player's ``plan_check``
    #: policy — e.g. rate-infeasibility warnings in the default mode.
    plan_diagnostics: list = field(default_factory=list)

    def slo_ok(self) -> bool:
        """Did this session meet every evaluated SLO? (Vacuously true
        when no policy ran.)"""
        return all(v.ok for v in self.slo)

    def slo_violations(self) -> list[SloVerdict]:
        return [v for v in self.slo if not v.ok]

    def stream_lateness(self, prefix: str) -> tuple[list[Rational], list[Rational]]:
        """(lateness, deadlines) of reads of the sequence named ``prefix``.

        Labels are ``sequence[n]``; matching anchors on the ``[`` so the
        sequence ``"audio"`` never swallows ``"audio2"``'s reads. A
        prefix already containing ``[`` is matched verbatim. Both lists
        are deadline-ordered, ready for
        :func:`~repro.engine.sync.measure_sync`.
        """
        needle = prefix if "[" in prefix else f"{prefix}["
        lateness = []
        deadlines = []
        for label, deadline, late in self.per_read:
            if label.startswith(needle):
                deadlines.append(deadline)
                lateness.append(late)
        return lateness, deadlines

    def summary(self) -> str:
        text = (
            f"{self.element_count} elements over "
            f"{self.duration.to_timestamp()}; required rate "
            f"{float(self.required_rate) / 1024:.0f} KiB/s; startup "
            f"{float(self.startup_delay) * 1000:.1f} ms; "
            f"{self.underruns} underruns ({self.underrun_fraction:.1%}); "
            f"jitter {float(self.jitter) * 1000:.2f} ms; {self.seeks} seeks"
        )
        if self.retries or self.skipped_elements or self.delivered_quality != 1:
            text += (
                f"; {self.retries} retries, {self.skipped_elements} skipped "
                f"({self.glitches} glitches), delivered quality "
                f"{float(self.delivered_quality):.0%}"
            )
        if self.slo:
            violated = self.slo_violations()
            met = len(self.slo) - len(violated)
            text += f"; SLO {met}/{len(self.slo)} met"
            if violated:
                text += " (" + ", ".join(v.slo for v in violated) + " violated)"
        if self.metrics:
            text += "\n  " + self.metrics_summary()
        return text

    def metrics_summary(self) -> str:
        """Compact one-line rendering of the embedded counter snapshot."""
        if not self.metrics:
            return "metrics: (none captured)"
        parts = []
        for name in sorted(self.metrics):
            body = self.metrics[name]
            if body.get("type") != "counter":
                continue
            total = sum(entry["value"] for entry in body["series"])
            parts.append(f"{name}={total}")
        return "metrics: " + (" ".join(parts) or "(no counters)")


@dataclass(frozen=True, slots=True)
class _PlannedRead:
    label: str
    offset: int
    size: int
    deadline: Rational


class Player:
    """Simulates synchronized playback of interpreted sequences."""

    def __init__(self, cost_model: CostModel | None = None,
                 prefetch_depth: int = 4, rate=1,
                 fault_plan: FaultPlan | None = None,
                 retry_policy: RetryPolicy | None = None,
                 adaptation: AdaptationPolicy | None = None,
                 derivation_cache: "DerivationCache | None" = None,
                 obs: Observability | None = None,
                 slo_policy: SloPolicy | None = None,
                 plan_check: str = "check",
                 plan_checker=None):
        """``rate`` is the playback rate: 2 plays double speed (deadlines
        arrive twice as fast, so the storage system must sustain twice
        the data rate); rates in (0, 1) play slow motion. Reverse
        playback is a derivation (``video-reverse``), not a negative
        rate, because read order must still move forward through time.

        ``fault_plan`` makes the simulated storage path misbehave per
        the plan's schedule; ``retry_policy`` (default
        :class:`RetryPolicy`) governs recovery and ``adaptation``
        trades fidelity for feasibility on scalable streams. Without a
        fault plan the simulation is exactly the clean happy path.

        ``derivation_cache`` routes the expansion of derived components
        (when planning a multimedia object) through a shared
        :class:`~repro.cache.derivations.DerivationCache`, so replaying
        the same composition stops recomputing its derived objects.

        ``obs`` attaches an observability sink: counters and lateness
        histograms per run, retry/glitch/adaptation spans and
        flight-recorder events stamped with the *simulated* clock, and
        per-stage time attribution into ``pipeline.stage_seconds`` —
        all bit-identical for identical runs.

        ``slo_policy`` evaluates service-level objectives against every
        report; with an observability sink but no explicit policy the
        stock :func:`~repro.obs.slo.default_slo_policy` runs, and every
        non-OK verdict lands in the flight recorder.

        ``plan_check`` gates :meth:`plan_multimedia` behind the static
        graph checker (:mod:`repro.analysis.graph`) *before any page is
        read*: ``"check"`` (the default) raises
        :class:`~repro.errors.PlanRejectedError` on structurally
        unexecutable plans (cycles, dangling inputs, kind mismatches)
        and attaches everything else to the report's
        ``plan_diagnostics``; ``"strict"`` also rejects statically
        infeasible plans (MG008/MG009 at error severity); ``"off"``
        skips the check. ``plan_checker`` overrides the default
        :class:`~repro.analysis.graph.GraphChecker` (which prices
        feasibility from this player's cost model).
        """
        self.cost_model = cost_model or CostModel()
        if prefetch_depth < 1:
            raise EngineError("prefetch depth must be >= 1")
        self.prefetch_depth = prefetch_depth
        self.rate = as_rational(rate)
        if self.rate <= 0:
            raise EngineError(f"playback rate must be positive, got {self.rate}")
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        self.adaptation = adaptation
        self.derivation_cache = derivation_cache
        self.obs = NULL_OBS if obs is None else obs
        self.slo_policy = slo_policy
        from repro.analysis.graph import PLAN_POLICIES

        if plan_check not in PLAN_POLICIES:
            raise EngineError(
                f"plan_check must be one of {PLAN_POLICIES}, "
                f"got {plan_check!r}"
            )
        self.plan_check = plan_check
        self.plan_checker = plan_checker
        self._plan_findings: list = []

    # -- planning -------------------------------------------------------------

    def plan_interpretation(
        self,
        interpretation: Interpretation,
        names: list[str] | None = None,
        offsets: dict[str, Rational] | None = None,
    ) -> list[_PlannedRead]:
        """Presentation-ordered reads for the named sequences.

        ``offsets`` optionally shifts each sequence on the shared
        timeline (temporal composition of interpreted components).
        """
        names = names if names is not None else interpretation.names()
        offsets = offsets or {}
        reads: list[_PlannedRead] = []
        for name in names:
            sequence = interpretation.sequence(name)
            base = as_rational(offsets.get(name, 0))
            for entry in sequence:
                deadline = base + sequence.time_system.to_continuous(entry.start)
                reads.append(_PlannedRead(
                    label=f"{name}[{entry.element_number}]",
                    offset=entry.blob_offset,
                    size=entry.size,
                    deadline=deadline,
                ))
        reads.sort(key=lambda r: (r.deadline, r.offset))
        return reads

    def verify_plan(self, multimedia: MultimediaObject):
        """Statically verify ``multimedia`` per the ``plan_check`` policy.

        Runs the media-graph checker without expanding anything — no
        derivation runs, no BLOB page is read. Raises
        :class:`~repro.errors.PlanRejectedError` when the policy blocks
        the plan; otherwise returns the
        :class:`~repro.analysis.diagnostics.DiagnosticReport` (whose
        non-blocking findings the next :meth:`play` attaches to its
        report). Returns None when the policy is ``"off"``.
        """
        if self.plan_check == "off":
            self._plan_findings = []
            return None
        from repro.analysis.graph import GraphChecker, blocking_diagnostics
        from repro.errors import PlanRejectedError

        checker = self.plan_checker or GraphChecker(
            cost_model=self.cost_model
        )
        report = checker.check_multimedia(multimedia)
        blocking = blocking_diagnostics(report, self.plan_check)
        if self.obs.enabled:
            for diagnostic in report:
                self.obs.events.record(
                    diagnostic.severity, "engine.plan_check",
                    f"plan.{diagnostic.rule}", at=Rational(0),
                    location=diagnostic.location,
                    message=diagnostic.message,
                )
        if blocking:
            self.obs.metrics.counter("engine.plan.rejections").inc()
            raise PlanRejectedError(
                f"plan for {multimedia.name!r} rejected by static "
                f"verification ({self.plan_check} policy): "
                + "; ".join(str(d) for d in blocking),
                diagnostics=tuple(blocking),
            )
        self._plan_findings = list(report)
        return report

    def plan_multimedia(self, multimedia: MultimediaObject) -> list[_PlannedRead]:
        """Presentation-ordered reads for a composed multimedia object.

        The static plan check (:meth:`verify_plan`) runs first, before
        any expansion or page read. Components are then flattened to
        leaf media objects; each leaf's stream supplies element sizes
        and timing, shifted by its composition offset. Leaves without
        in-memory streams (derived, unexpanded) are expanded via their
        normal access path — or through the player's
        :class:`DerivationCache` when one is attached, so replanning
        the same composition is a cache hit.
        """
        self.verify_plan(multimedia)
        instrumented = self.obs.enabled
        stage_hist = self._stage_histogram() if instrumented else None
        reads: list[_PlannedRead] = []
        synthetic_offset = 0
        for label, obj, interval in multimedia.flatten():
            if not obj.media_type.kind.is_time_based:
                continue
            if self.derivation_cache is not None and obj.is_derived:
                cached = obj in self.derivation_cache
                stream = self.derivation_cache.materialize(obj).stream()
            else:
                cached = obj.is_derived and obj.is_materialized
                stream = obj.stream()
            if stage_hist is not None:
                # Composition itself is pointer arithmetic (§5): count
                # the component, charge zero simulated time.
                stage_hist.observe(0.0, stage="compose")
                if obj.is_derived:
                    estimate = 0.0 if cached else self._expand_cost_estimate(
                        obj, stream.total_size()
                    )
                    stage_hist.observe(estimate, stage="derivation_expand")
                    self.obs.tracer.event(
                        "engine.expand", component=label,
                        cached=cached, cost_seconds=estimate,
                    )
            for index, t in enumerate(stream):
                deadline = interval.start + stream.time_system.to_continuous(
                    t.start - stream.start
                )
                reads.append(_PlannedRead(
                    label=f"{label}[{index}]",
                    offset=synthetic_offset,
                    size=t.element.size,
                    deadline=deadline,
                ))
                synthetic_offset += t.element.size
        reads.sort(key=lambda r: (r.deadline, r.offset))
        return reads

    def _stage_histogram(self):
        """The shared per-stage attribution histogram (instrumented only)."""
        return self.obs.metrics.histogram(STAGE_METRIC, buckets=STAGE_BUCKETS)

    def _expand_cost_estimate(self, obj, expanded_size: int) -> float:
        """CostModel seconds to materialize a derived component: one
        non-contiguous read of the inputs' bytes plus the expanded
        bytes — the same estimate the derivation cache prices benefit
        with."""
        from repro.cache.derivations import object_bytes

        input_bytes = sum(
            object_bytes(inp) for inp in obj.derivation_object.inputs
        )
        return float(self.cost_model.element_cost(
            input_bytes + expanded_size, contiguous=False,
        ))

    # -- playback -------------------------------------------------------------

    def play(self, target, names: list[str] | None = None,
             offsets: dict[str, Rational] | None = None) -> PlaybackReport:
        """Simulate playback of ``target``.

        Polymorphic front door: ``target`` may be an
        :class:`~repro.core.interpretation.Interpretation` (optionally
        restricted to ``names`` and shifted by per-sequence
        ``offsets``), a :class:`~repro.core.composition.MultimediaObject`,
        or a pre-planned read list from :meth:`plan_interpretation` /
        :meth:`plan_multimedia`.
        """
        if isinstance(target, Interpretation):
            return self._run(self.plan_interpretation(target, names, offsets))
        if names is not None or offsets is not None:
            raise EngineError(
                "names/offsets only apply when playing an Interpretation"
            )
        if isinstance(target, MultimediaObject):
            report = self._run(self.plan_multimedia(target))
            report.plan_diagnostics = list(self._plan_findings)
            return report
        if isinstance(target, (list, tuple)):
            reads = list(target)
            if all(isinstance(r, _PlannedRead) for r in reads):
                return self._run(reads)
        raise EngineError(
            f"cannot play {type(target).__name__}; expected an "
            "Interpretation, a MultimediaObject, or a list of planned reads"
        )

    def play_reads(self, reads: list[_PlannedRead]) -> PlaybackReport:
        """Deprecated: use :meth:`play` with the read list directly."""
        warnings.warn(
            "Player.play_reads is deprecated; use Player.play(reads)",
            DeprecationWarning, stacklevel=2,
        )
        return self.play(list(reads))

    def _run(self, reads: list[_PlannedRead]) -> PlaybackReport:
        return self._drive(self.stepper(reads))

    @staticmethod
    def _drive(stepper) -> PlaybackReport:
        """Run a stepper to completion in one go (the seed behaviour)."""
        while True:
            try:
                next(stepper)
            except StopIteration as stop:
                return stop.value

    def stepper(self, reads: list[_PlannedRead], share_factor=None):
        """The playback simulation as a resumable generator.

        Yields the simulated seconds each element consumed (read +
        decode + any retries and backoff) in presentation order, and
        *returns* the finished :class:`PlaybackReport` — the event
        kernel (:mod:`repro.engine.kernel`) drives one element per
        scheduled event, while :meth:`play` drains the generator in one
        loop. Both paths execute the same arithmetic in the same order,
        so their reports are identical by construction.

        ``share_factor`` (optional) is a zero-argument callable sampled
        before each element: a bandwidth multiplier over this player's
        cost-model bandwidth, letting a shared
        :class:`~repro.engine.kernel.BandwidthLedger` re-price reads as
        concurrent sessions come and go. None (the default) keeps the
        cost model's static bandwidth — the seed contract.
        """
        if self.fault_plan is not None:
            return self._step_faulted(reads, share_factor)
        return self._step_clean(reads, share_factor)

    def _step_clean(self, reads: list[_PlannedRead], share_factor=None):
        if not reads:
            return PlaybackReport(
                element_count=0, duration=Rational(0),
                required_rate=Rational(0), startup_delay=Rational(0),
                underruns=0, underrun_fraction=0.0,
                max_lateness=Rational(0), jitter=Rational(0),
                prefetch_depth=self.prefetch_depth, seeks=0,
            )
        stage_hist = self._stage_histogram() if self.obs.enabled else None
        production = []
        clock = Rational(0)
        cursor: int | None = None
        seeks = 0
        for read in reads:
            factor = share_factor() if share_factor is not None else None
            contiguous = cursor is not None and read.offset == cursor
            if cursor is not None and not contiguous:
                seeks += 1
            if stage_hist is None:
                cost = self.cost_model.element_cost(
                    read.size, contiguous, bandwidth_factor=factor
                )
                clock += cost
            else:
                read_cost, decode_cost = self.cost_model.cost_breakdown(
                    read.size, contiguous, bandwidth_factor=factor
                )
                stage_hist.observe(float(read_cost), stage="page_read")
                if decode_cost:
                    stage_hist.observe(float(decode_cost), stage="decode")
                cost = read_cost + decode_cost
                clock += cost
            production.append(clock)
            cursor = read.offset + read.size
            yield cost
        first_deadline = reads[0].deadline
        # At rate r, media time d is presented at reference time d / r.
        deadlines = [(r.deadline - first_deadline) / self.rate for r in reads]
        prefetch = simulate_prefetch(production, deadlines, self.prefetch_depth)

        total_bytes = sum(r.size for r in reads)
        duration = max(deadlines) if deadlines else Rational(0)
        required = (
            Rational(total_bytes) / duration if duration > 0 else Rational(0)
        )
        lateness = [
            max(p - (prefetch.startup_delay + d), Rational(0))
            for p, d in zip(production, deadlines)
        ]
        jitter = (max(lateness) - min(lateness)) if lateness else Rational(0)
        report = PlaybackReport(
            element_count=len(reads),
            duration=duration,
            required_rate=required,
            startup_delay=prefetch.startup_delay,
            underruns=prefetch.underruns,
            underrun_fraction=prefetch.underrun_fraction,
            max_lateness=max(lateness) if lateness else Rational(0),
            jitter=jitter,
            prefetch_depth=self.prefetch_depth,
            seeks=seeks,
            per_read=[
                (read.label, deadline, late)
                for read, deadline, late in zip(reads, deadlines, lateness)
            ],
        )
        self._evaluate_slo(report, at=clock)
        if self.obs.enabled:
            self.obs.tracer.record(
                "engine.play", Rational(0), clock,
                mode="clean", elements=len(reads), bytes=total_bytes,
            )
            self._record_metrics(report, total_bytes, prefetch, faulted=False)
        return report

    def _record_metrics(self, report: PlaybackReport, total_bytes: int,
                        prefetch, faulted: bool) -> None:
        """Fold one run's outcome into the attached metrics registry and
        embed the resulting snapshot in the report."""
        metrics = self.obs.metrics
        mode = "faulted" if faulted else "clean"
        metrics.counter("engine.play.runs").inc(mode=mode)
        metrics.counter("engine.play.elements").inc(report.element_count)
        metrics.counter("engine.play.bytes").inc(total_bytes)
        metrics.counter("engine.play.seeks").inc(report.seeks)
        metrics.counter("engine.play.underruns").inc(report.underruns)
        if report.retries:
            metrics.counter("engine.play.retries").inc(report.retries)
        if report.skipped_elements:
            metrics.counter("engine.play.skips").inc(report.skipped_elements)
        if report.glitches:
            metrics.counter("engine.play.glitches").inc(report.glitches)
        metrics.gauge("engine.play.buffer_high_water").set_max(
            prefetch.high_water
        )
        stage_hist = self._stage_histogram()
        stage_hist.observe(float(prefetch.startup_delay), stage="deliver")
        lateness = metrics.histogram(
            "engine.play.lateness_seconds", buckets=LATENESS_BUCKETS
        )
        for label, deadline, late in report.per_read:
            lateness.observe(float(late), sequence=label.split("[", 1)[0])
            if late > 0:
                self.obs.events.record(
                    Severity.WARNING, "engine.player", "deadline.miss",
                    at=prefetch.startup_delay + deadline + late,
                    element=label, late_seconds=float(late),
                )
        report.metrics = metrics.snapshot()

    def _evaluate_slo(self, report: PlaybackReport, at: Rational) -> None:
        """Attach SLO verdicts to the report and alert on burn.

        Uses the explicit ``slo_policy`` when one was given, else the
        stock policy whenever the player is instrumented. Every non-OK
        or budget-burning verdict lands in the flight recorder stamped
        with the run's simulated end time.
        """
        policy = self.slo_policy
        if policy is None and self.obs.enabled:
            policy = default_slo_policy()
        if policy is None:
            return
        report.slo = policy.evaluate_report(report)
        if not self.obs.enabled:
            return
        metrics = self.obs.metrics
        for verdict in report.slo:
            metrics.counter("slo.evaluations").inc(slo=verdict.slo)
            if not verdict.ok:
                metrics.counter("slo.violations").inc(slo=verdict.slo)
            if verdict.severity >= Severity.WARNING:
                self.obs.events.record(
                    verdict.severity, "engine.slo",
                    "slo.violation" if not verdict.ok else "slo.burn",
                    at=at, slo=verdict.slo, measured=verdict.measured,
                    threshold=verdict.threshold, burn=verdict.burn,
                )

    # -- faulted playback ---------------------------------------------------------

    def _step_faulted(self, reads: list[_PlannedRead], share_factor=None):
        """Simulate playback against the fault plan's storage behaviour.

        Every recovery action costs simulated time: a failed attempt
        charges the full read it wasted plus the policy's backoff, so
        faults surface as startup delay, lateness and underruns. An
        element whose pages stay unreadable is skipped (a glitch — runs
        of consecutive skips merge into one); scalable reads shrink to
        the layer prefix that fits degraded bandwidth. The walk mirrors
        :class:`~repro.faults.pager.FaultyPager`'s bookkeeping — visits
        per page, global read index — so the same plan produces the
        same storage behaviour at either enforcement point.

        A generator (see :meth:`stepper`): yields each element's total
        simulated duration — attempts, backoffs and latency included —
        and returns the report. ``share_factor`` scales the plan's
        per-read bandwidth factor, so dynamic processor sharing and
        injected degradation compose into one multiplier (adaptation
        sees the combined factor too: more bandwidth, higher layer).
        """
        if not reads:
            return PlaybackReport(
                element_count=0, duration=Rational(0),
                required_rate=Rational(0), startup_delay=Rational(0),
                underruns=0, underrun_fraction=0.0,
                max_lateness=Rational(0), jitter=Rational(0),
                prefetch_depth=self.prefetch_depth, seeks=0,
            )
        plan = self.fault_plan
        policy = self.retry_policy
        adaptation = self.adaptation
        instrumented = self.obs.enabled
        tracer = self.obs.tracer if instrumented else None
        events = self.obs.events if instrumented else None
        stage_hist = self._stage_histogram() if instrumented else None
        clock = Rational(0)
        cursor: int | None = None
        seeks = 0
        retries = 0
        skipped = 0
        glitches = 0
        in_glitch = False
        visits: Counter = Counter()
        presented: list[tuple[_PlannedRead, Rational]] = []
        quality_sum = Rational(0)
        adapted_reads = 0
        total_bytes = 0

        for index, read in enumerate(reads):
            element_start = clock
            factor = plan.bandwidth_factor(index)
            if share_factor is not None:
                factor = factor * share_factor()
            latency = plan.extra_latency(index)
            size = read.size
            delivered_share: Rational | None = None
            if (adaptation is not None and read.size > 0
                    and adaptation.applies_to(read.label)):
                adapted_reads += 1
                level = adaptation.level_for(factor)
                size = min(
                    read.size,
                    math.ceil(Rational(read.size) * adaptation.fraction(level)),
                )
                delivered_share = Rational(level + 1, adaptation.levels)
                if instrumented and level < adaptation.levels - 1:
                    tracer.event(
                        "engine.adaptation", at=clock, element=read.label,
                        level=level, bytes=size,
                    )
                    events.record(
                        Severity.INFO, "engine.player", "quality.adapted",
                        at=clock, element=read.label, level=level,
                        bytes=size,
                    )
            contiguous = cursor is not None and read.offset == cursor
            if cursor is not None and not contiguous:
                seeks += 1
            if stage_hist is None:
                attempt_cost = self.cost_model.element_cost(
                    size, contiguous, bandwidth_factor=factor
                ) + latency
                read_part = decode_part = Rational(0)
            else:
                read_part, decode_part = self.cost_model.cost_breakdown(
                    size, contiguous, bandwidth_factor=factor
                )
                read_part += latency
                attempt_cost = read_part + decode_part
            cursor = read.offset + size

            pages = plan.pages_of(read.offset, size)
            if any(plan.is_bad_page(p) for p in pages):
                # Permanently bad region: one probing attempt discovers
                # it; retrying cannot help, so skip immediately.
                self.obs.metrics.counter("faults.injected").inc(
                    kind="bad_page"
                )
                probe_start = clock
                clock += attempt_cost
                skipped += 1
                if not in_glitch:
                    glitches += 1
                in_glitch = True
                if instrumented:
                    stage_hist.observe(float(attempt_cost), stage="deliver")
                    tracer.record(
                        "engine.glitch", probe_start, clock,
                        element=read.label, reason="bad_page",
                    )
                    events.record(
                        Severity.ERROR, "engine.player", "element.skipped",
                        at=clock, element=read.label, reason="bad_page",
                    )
                yield clock - element_start
                continue

            success = False
            for attempt in range(policy.max_retries + 1):
                failed = False
                fault_kind = None
                for page_no in pages:
                    visit = visits[page_no]
                    visits[page_no] += 1
                    # A transient error aborts the gather at this page; a
                    # corrupted visit completes but fails verification.
                    # Either way the whole element is re-read.
                    if plan.is_transient(page_no, visit):
                        self.obs.metrics.counter("faults.injected").inc(
                            kind="transient"
                        )
                        failed = True
                        fault_kind = "transient"
                        break
                    if plan.is_corrupted(page_no, visit):
                        self.obs.metrics.counter("faults.injected").inc(
                            kind="corrupted"
                        )
                        failed = True
                        fault_kind = "corrupted"
                        break
                attempt_start = clock
                clock += attempt_cost
                if not failed:
                    success = True
                    if stage_hist is not None:
                        stage_hist.observe(float(read_part),
                                           stage="page_read")
                        if decode_part:
                            stage_hist.observe(float(decode_part),
                                               stage="decode")
                    break
                if attempt < policy.max_retries:
                    clock += policy.backoff_cost(attempt)
                    retries += 1
                    if instrumented:
                        stage_hist.observe(float(clock - attempt_start),
                                           stage="deliver")
                        tracer.record(
                            "engine.retry", attempt_start, clock,
                            element=read.label, attempt=attempt,
                        )
                        events.record(
                            Severity.WARNING, "engine.player", "read.retry",
                            at=clock, element=read.label, attempt=attempt,
                            fault=fault_kind,
                        )
                elif instrumented:
                    stage_hist.observe(float(attempt_cost), stage="deliver")
                    tracer.record(
                        "engine.glitch", attempt_start, clock,
                        element=read.label, reason="retries_exhausted",
                    )
                    events.record(
                        Severity.ERROR, "engine.player", "element.skipped",
                        at=clock, element=read.label,
                        reason="retries_exhausted", fault=fault_kind,
                    )

            if success:
                presented.append((read, clock))
                total_bytes += size
                if delivered_share is not None:
                    quality_sum += delivered_share
                in_glitch = False
            else:
                skipped += 1
                if not in_glitch:
                    glitches += 1
                in_glitch = True
            yield clock - element_start

        if (policy.abort_skip_fraction is not None
                and skipped > policy.abort_skip_fraction * len(reads)):
            self.obs.metrics.counter("engine.play.aborts").inc()
            if instrumented:
                events.record(
                    Severity.CRITICAL, "engine.player", "playback.aborted",
                    at=clock, skipped=skipped, elements=len(reads),
                )
            raise PlaybackAbortError(
                f"skipped {skipped}/{len(reads)} elements, beyond the "
                f"policy's tolerance of {policy.abort_skip_fraction:.0%}"
            )

        first_deadline = reads[0].deadline
        production = [p for _, p in presented]
        deadlines = [
            (r.deadline - first_deadline) / self.rate for r, _ in presented
        ]
        prefetch = simulate_prefetch(production, deadlines, self.prefetch_depth)
        # The timeline is the content's: skipping an element glitches the
        # presentation but does not shorten the programme.
        duration = max(
            (r.deadline - first_deadline) / self.rate for r in reads
        )
        required = (
            Rational(total_bytes) / duration if duration > 0 else Rational(0)
        )
        lateness = [
            max(p - (prefetch.startup_delay + d), Rational(0))
            for p, d in zip(production, deadlines)
        ]
        delivered_quality = (
            quality_sum / adapted_reads if adapted_reads else Rational(1)
        )
        report = PlaybackReport(
            element_count=len(presented),
            duration=duration,
            required_rate=required,
            startup_delay=prefetch.startup_delay,
            underruns=prefetch.underruns,
            underrun_fraction=prefetch.underrun_fraction,
            max_lateness=max(lateness) if lateness else Rational(0),
            jitter=(max(lateness) - min(lateness)) if lateness else Rational(0),
            prefetch_depth=self.prefetch_depth,
            seeks=seeks,
            per_read=[
                (read.label, deadline, late)
                for (read, _), deadline, late in zip(
                    presented, deadlines, lateness
                )
            ],
            retries=retries,
            skipped_elements=skipped,
            glitches=glitches,
            delivered_quality=delivered_quality,
        )
        self._evaluate_slo(report, at=clock)
        if self.obs.enabled:
            self.obs.tracer.record(
                "engine.play", Rational(0), clock,
                mode="faulted", elements=len(reads),
                presented=len(presented), bytes=total_bytes,
            )
            self._record_metrics(report, total_bytes, prefetch, faulted=True)
        return report

    # -- multimedia objects ------------------------------------------------------

    def play_multimedia(self, multimedia: MultimediaObject) -> PlaybackReport:
        """Deprecated: use :meth:`play` with the multimedia object."""
        warnings.warn(
            "Player.play_multimedia is deprecated; "
            "use Player.play(multimedia)",
            DeprecationWarning, stacklevel=2,
        )
        return self.play(multimedia)
