"""Playback of interpreted media against a storage/decode cost model.

"Using a BLOB data type it is possible to read and write time-based media
but ... the more relevant operations of 'play' and 'record' have no
meaning." (§1.2) The player gives "play" meaning: it walks an
interpretation's placement tables in presentation order, charges each
element read/decode costs from a :class:`CostModel`, and reports whether
deadlines were met — startup delay, underruns, jitter, and the data rate
the storage system must sustain.

Everything is simulated with exact rational arithmetic; no wall-clock
time is involved, so reports are reproducible to the bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.composition import MultimediaObject
from repro.core.interpretation import Interpretation
from repro.core.rational import Rational, as_rational
from repro.engine.buffers import simulate_prefetch
from repro.errors import EngineError


@dataclass(frozen=True)
class CostModel:
    """Storage and decode cost parameters.

    ``bandwidth`` — bytes/second of sequential read;
    ``seek_time`` — seconds charged when a read is not contiguous with
    the previous one;
    ``decode_rate`` — bytes/second of decode work (None = free).

    Defaults approximate a 1994-era single-speed-ish optical drive so the
    paper's data-rate arithmetic lands in a plausible regime.
    """

    bandwidth: Rational = Rational(1_500_000)
    seek_time: Rational = Rational(1, 100)
    decode_rate: Rational | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "bandwidth", as_rational(self.bandwidth))
        object.__setattr__(self, "seek_time", as_rational(self.seek_time))
        if self.decode_rate is not None:
            object.__setattr__(self, "decode_rate", as_rational(self.decode_rate))
        if self.bandwidth <= 0:
            raise EngineError("bandwidth must be positive")

    def element_cost(self, size: int, contiguous: bool) -> Rational:
        cost = Rational(size) / self.bandwidth
        if not contiguous:
            cost += self.seek_time
        if self.decode_rate:
            cost += Rational(size) / self.decode_rate
        return cost


@dataclass
class PlaybackReport:
    """Outcome of one simulated playback.

    ``per_read`` holds (label, deadline, lateness) per element in
    presentation order, enabling inter-stream skew analysis with
    :func:`repro.engine.sync.measure_sync`.
    """

    element_count: int
    duration: Rational
    required_rate: Rational
    startup_delay: Rational
    underruns: int
    underrun_fraction: float
    max_lateness: Rational
    jitter: Rational
    prefetch_depth: int
    seeks: int
    per_read: list[tuple[str, Rational, Rational]] = field(
        default_factory=list
    )

    def stream_lateness(self, prefix: str) -> tuple[list[Rational], list[Rational]]:
        """(lateness, deadlines) of reads whose label starts with ``prefix``.

        Labels are ``sequence[n]``, so the sequence name is the natural
        prefix. Both lists are deadline-ordered, ready for
        :func:`~repro.engine.sync.measure_sync`.
        """
        lateness = []
        deadlines = []
        for label, deadline, late in self.per_read:
            if label.startswith(prefix):
                deadlines.append(deadline)
                lateness.append(late)
        return lateness, deadlines

    def summary(self) -> str:
        return (
            f"{self.element_count} elements over "
            f"{self.duration.to_timestamp()}; required rate "
            f"{float(self.required_rate) / 1024:.0f} KiB/s; startup "
            f"{float(self.startup_delay) * 1000:.1f} ms; "
            f"{self.underruns} underruns ({self.underrun_fraction:.1%}); "
            f"jitter {float(self.jitter) * 1000:.2f} ms; {self.seeks} seeks"
        )


@dataclass(frozen=True, slots=True)
class _PlannedRead:
    label: str
    offset: int
    size: int
    deadline: Rational


class Player:
    """Simulates synchronized playback of interpreted sequences."""

    def __init__(self, cost_model: CostModel | None = None,
                 prefetch_depth: int = 4, rate=1):
        """``rate`` is the playback rate: 2 plays double speed (deadlines
        arrive twice as fast, so the storage system must sustain twice
        the data rate); rates in (0, 1) play slow motion. Reverse
        playback is a derivation (``video-reverse``), not a negative
        rate, because read order must still move forward through time.
        """
        self.cost_model = cost_model or CostModel()
        if prefetch_depth < 1:
            raise EngineError("prefetch depth must be >= 1")
        self.prefetch_depth = prefetch_depth
        self.rate = as_rational(rate)
        if self.rate <= 0:
            raise EngineError(f"playback rate must be positive, got {self.rate}")

    # -- planning -------------------------------------------------------------

    def plan_interpretation(
        self,
        interpretation: Interpretation,
        names: list[str] | None = None,
        offsets: dict[str, Rational] | None = None,
    ) -> list[_PlannedRead]:
        """Presentation-ordered reads for the named sequences.

        ``offsets`` optionally shifts each sequence on the shared
        timeline (temporal composition of interpreted components).
        """
        names = names if names is not None else interpretation.names()
        offsets = offsets or {}
        reads: list[_PlannedRead] = []
        for name in names:
            sequence = interpretation.sequence(name)
            base = as_rational(offsets.get(name, 0))
            for entry in sequence:
                deadline = base + sequence.time_system.to_continuous(entry.start)
                reads.append(_PlannedRead(
                    label=f"{name}[{entry.element_number}]",
                    offset=entry.blob_offset,
                    size=entry.size,
                    deadline=deadline,
                ))
        reads.sort(key=lambda r: (r.deadline, r.offset))
        return reads

    # -- playback -------------------------------------------------------------

    def play(self, interpretation: Interpretation,
             names: list[str] | None = None,
             offsets: dict[str, Rational] | None = None) -> PlaybackReport:
        """Simulate playback of an interpretation's sequences."""
        reads = self.plan_interpretation(interpretation, names, offsets)
        return self._run(reads)

    def play_reads(self, reads: list[_PlannedRead]) -> PlaybackReport:
        return self._run(reads)

    def _run(self, reads: list[_PlannedRead]) -> PlaybackReport:
        if not reads:
            return PlaybackReport(
                element_count=0, duration=Rational(0),
                required_rate=Rational(0), startup_delay=Rational(0),
                underruns=0, underrun_fraction=0.0,
                max_lateness=Rational(0), jitter=Rational(0),
                prefetch_depth=self.prefetch_depth, seeks=0,
            )
        production = []
        clock = Rational(0)
        cursor: int | None = None
        seeks = 0
        for read in reads:
            contiguous = cursor is not None and read.offset == cursor
            if cursor is not None and not contiguous:
                seeks += 1
            clock += self.cost_model.element_cost(read.size, contiguous)
            production.append(clock)
            cursor = read.offset + read.size
        first_deadline = reads[0].deadline
        # At rate r, media time d is presented at reference time d / r.
        deadlines = [(r.deadline - first_deadline) / self.rate for r in reads]
        prefetch = simulate_prefetch(production, deadlines, self.prefetch_depth)

        total_bytes = sum(r.size for r in reads)
        duration = max(deadlines) if deadlines else Rational(0)
        required = (
            Rational(total_bytes) / duration if duration > 0 else Rational(0)
        )
        lateness = [
            max(p - (prefetch.startup_delay + d), Rational(0))
            for p, d in zip(production, deadlines)
        ]
        jitter = (max(lateness) - min(lateness)) if lateness else Rational(0)
        return PlaybackReport(
            element_count=len(reads),
            duration=duration,
            required_rate=required,
            startup_delay=prefetch.startup_delay,
            underruns=prefetch.underruns,
            underrun_fraction=prefetch.underrun_fraction,
            max_lateness=max(lateness) if lateness else Rational(0),
            jitter=jitter,
            prefetch_depth=self.prefetch_depth,
            seeks=seeks,
            per_read=[
                (read.label, deadline, late)
                for read, deadline, late in zip(reads, deadlines, lateness)
            ],
        )

    # -- multimedia objects ------------------------------------------------------

    def play_multimedia(self, multimedia: MultimediaObject) -> PlaybackReport:
        """Simulate playback of a composed multimedia object.

        Components are flattened to leaf media objects; each leaf's
        stream supplies element sizes and timing, shifted by its
        composition offset. Leaves without in-memory streams (derived,
        unexpanded) are expanded via their normal access path.
        """
        reads: list[_PlannedRead] = []
        synthetic_offset = 0
        for label, obj, interval in multimedia.flatten():
            if not obj.media_type.kind.is_time_based:
                continue
            stream = obj.stream()
            for index, t in enumerate(stream):
                deadline = interval.start + stream.time_system.to_continuous(
                    t.start - stream.start
                )
                reads.append(_PlannedRead(
                    label=f"{label}[{index}]",
                    offset=synthetic_offset,
                    size=t.element.size,
                    deadline=deadline,
                ))
                synthetic_offset += t.element.size
        reads.sort(key=lambda r: (r.deadline, r.offset))
        return self._run(reads)
