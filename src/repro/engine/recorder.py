"""Recording: capture media objects into a BLOB with its interpretation.

The paper's recommended practice: "a BLOB has a single, complete,
interpretation which is built up as the BLOB is captured or created and
then permanently associated with the BLOB" (§4.1). The recorder does
exactly that — it encodes each object's elements, interleaves them into
the BLOB (audio following the associated video frame, as in Figure 2),
and returns the interpretation whose placement tables were built during
the write.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.blob.blob import Blob
from repro.core.interpretation import Interpretation
from repro.core.media_object import StreamMediaObject
from repro.core.rational import Rational
from repro.errors import EngineError
from repro.storage.layout import (
    TrackSpec,
    write_interleaved,
    write_sequential,
)

#: An element encoder: payload -> bytes.
Encoder = Callable[[object], bytes]


def _default_encoder(payload) -> bytes:
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    if isinstance(payload, np.ndarray):
        return payload.tobytes()
    raise EngineError(
        f"no default encoding for payload type {type(payload).__name__}; "
        "pass an encoder"
    )


class Recorder:
    """Encodes stream media objects into a BLOB + interpretation."""

    def __init__(self, blob: Blob, interleave: bool = True,
                 sector_size: int | None = None):
        self.blob = blob
        self.interleave = interleave
        self.sector_size = sector_size

    def record(
        self,
        objects: list[StreamMediaObject],
        encoders: dict[str, Encoder] | None = None,
        interpretation_name: str = "capture",
        encoding_labels: dict[str, str] | None = None,
    ) -> Interpretation:
        """Capture ``objects`` into the BLOB; returns the interpretation.

        ``encoders`` maps object name -> element encoder; objects without
        one use raw-bytes encoding. ``encoding_labels`` optionally names
        the resulting encodings (Figure 2's ``encoding = YUV 8:2:2,
        JPEG``). Media descriptors in the resulting interpretation gain
        the measured ``category``, ``average_data_rate`` and
        ``peak_data_rate`` attributes — the "information that helps
        allocate resources for playback" of §4.1.
        """
        if not objects:
            raise EngineError("record needs at least one object")
        encoders = encoders or {}
        encoding_labels = encoding_labels or {}
        tracks = []
        for obj in objects:
            encode = encoders.get(obj.name, _default_encoder)
            stream = obj.stream()
            track = TrackSpec(obj.name, stream.time_system)
            for t in stream:
                track.add(
                    encode(t.element.payload), t.start, t.duration,
                    t.element.descriptor,
                )
            tracks.append(track)

        writer = write_interleaved if self.interleave else write_sequential
        placements = writer(self.blob, tracks, sector_size=self.sector_size)

        interpretation = Interpretation(self.blob, interpretation_name)
        for obj, track in zip(objects, tracks):
            rows = placements[obj.name]
            descriptor = self._annotate_rates(obj, track, rows)
            if obj.name in encoding_labels:
                descriptor = descriptor.with_updates(
                    encoding=encoding_labels[obj.name]
                )
            interpretation.add(
                obj.name, obj.media_type, descriptor, rows,
                time_system=track.time_system,
            )
        interpretation.validate()
        return interpretation

    def _annotate_rates(self, obj: StreamMediaObject, track: TrackSpec, rows):
        total = sum(e.size for e in rows)
        span_ticks = (
            max(e.end for e in rows) - rows[0].start if rows else 0
        )
        seconds = track.time_system.to_continuous(span_ticks)
        average = Rational(total) / seconds if seconds > 0 else Rational(0)
        peak = Rational(0)
        for entry in rows:
            if entry.duration > 0:
                element_seconds = track.time_system.to_continuous(entry.duration)
                peak = max(peak, Rational(entry.size) / element_seconds)
        return obj.descriptor.with_updates(
            category=self._category_of(obj, rows, track),
            average_data_rate=average,
            peak_data_rate=peak,
        )

    def _category_of(self, obj: StreamMediaObject, rows,
                     track: TrackSpec) -> str:
        """The Figure-2-style category label of the recorded stream.

        The paper's example descriptors carry e.g. ``category =
        homogeneous, constant frequency``; the label is computed from the
        *encoded* elements (sizes after compression change the data-rate
        categories), which is why it is annotated here rather than on the
        raw capture object.
        """
        from repro.core.elements import MediaElement
        from repro.core.streams import TimedStream, TimedTuple

        stream = TimedStream(
            obj.media_type,
            [
                TimedTuple(
                    MediaElement(size=entry.size,
                                 descriptor=entry.element_descriptor),
                    entry.start, entry.duration,
                )
                for entry in rows
            ],
            time_system=track.time_system,
            validate_constraints=False,
        )
        return stream.category_label()
