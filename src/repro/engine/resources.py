"""Resource model: the store-or-expand decision for derived objects.

"The decision of whether to store a derived object or to expand and
instead store a non-derived object often hinges upon resource
availability: if expansion can be done in real time then the derived
object is all that needs be stored." (§2.2, restated in §4.2)

:class:`ResourceModel` measures an expansion against the derived object's
presentation duration and issues an :class:`ExpansionDecision`. A
``speed_factor`` scales the machine's measured speed, so tests can pin
decisions deterministically (factor 0 forces "materialize", a huge factor
forces "derive-only").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.media_object import DerivedMediaObject, MediaObject
from repro.core.rational import as_rational
from repro.engine.scheduler import PresentationEvent, utilization
from repro.errors import ResourceError


@dataclass
class ExpansionDecision:
    """Outcome of the real-time feasibility check."""

    real_time: bool
    expansion_seconds: float
    duration_seconds: float
    margin: float

    @property
    def recommendation(self) -> str:
        """Paper §4.2: store only the derivation when expansion is real-time."""
        return "store derivation object" if self.real_time else "materialize"


class ResourceModel:
    """Admission control for expansions and presentation task sets."""

    def __init__(self, speed_factor: float = 1.0, safety_margin: float = 1.2):
        if speed_factor < 0:
            raise ResourceError("speed_factor must be non-negative")
        if safety_margin < 1.0:
            raise ResourceError("safety_margin must be >= 1.0")
        self.speed_factor = speed_factor
        self.safety_margin = safety_margin

    def assess_expansion(self, derived: DerivedMediaObject) -> ExpansionDecision:
        """Time one expansion and compare against presentation duration.

        The expansion must beat real time by the safety margin for the
        "store derivation object only" recommendation.
        """
        duration = derived.descriptor.get("duration")
        if duration is None:
            raise ResourceError(
                f"{derived.name} has no duration; cannot assess real-time "
                "feasibility"
            )
        duration_seconds = float(as_rational(duration))
        begin = time.perf_counter()
        derived.expand()
        elapsed = time.perf_counter() - begin
        effective = elapsed / self.speed_factor if self.speed_factor else float("inf")
        real_time = effective * self.safety_margin <= duration_seconds
        margin = (
            duration_seconds / effective if effective > 0 else float("inf")
        )
        return ExpansionDecision(
            real_time=real_time,
            expansion_seconds=elapsed,
            duration_seconds=duration_seconds,
            margin=margin,
        )

    def choose_storage(self, derived: DerivedMediaObject) -> MediaObject:
        """Apply the paper's rule: materialize only when expansion is slow.

        Returns the object to store — the derived object itself when
        expansion is real-time feasible, otherwise its materialization.
        """
        decision = self.assess_expansion(derived)
        if decision.real_time:
            return derived
        return derived.materialize()

    def admit(self, events: list[PresentationEvent]) -> bool:
        """Utilization-based admission for a presentation task set."""
        load = float(utilization(events)) * self.safety_margin
        return load <= self.speed_factor
