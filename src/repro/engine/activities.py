"""Activities: database operations as flows of media data (§6).

"The notion of timed streams introduced in this paper leads to a
perspective where database operations are viewed as extended activities
that produce, consume and transform flows of data. A database
architecture based on activities and their possible interconnection is
explored in [5]." (Gibbs et al., *Audio/Video Databases: An
Object-Oriented Approach*, ICDE 1993.)

This module implements that forward pointer as a small deterministic
dataflow engine:

* an :class:`Activity` has input and output *ports* carrying timed
  tuples;
* :class:`Producer` emits a stream's tuples in time order,
  :class:`Transform` maps elements (optionally re-timing), and
  :class:`Consumer` collects or counts them;
* an :class:`ActivityGraph` connects ports and runs the network in
  clocked steps: each step advances the simulated clock to the next
  element boundary and moves every ready tuple one hop.

The engine is pull-free and deterministic: given the same streams, the
same step sequence results.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.core.elements import MediaElement
from repro.core.rational import Rational
from repro.core.streams import TimedStream, TimedTuple
from repro.errors import EngineError


class Port:
    """A buffered, single-producer single-consumer edge."""

    def __init__(self, name: str, capacity: int = 64):
        if capacity < 1:
            raise EngineError("port capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._queue: deque[TimedTuple] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    def put(self, item: TimedTuple) -> None:
        if self.is_full:
            raise EngineError(f"port {self.name!r} overflow")
        self._queue.append(item)

    def take(self) -> TimedTuple | None:
        if not self._queue:
            return None
        return self._queue.popleft()


class Activity:
    """Base class: a node that moves tuples between ports each step."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: list[Port] = []
        self.outputs: list[Port] = []

    def step(self, now: Rational) -> bool:
        """Advance one step at media time ``now``.

        Returns True if the activity did any work (moved/produced/
        consumed a tuple) — the graph runs until a full round is idle
        and all producers are drained.
        """
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Producer(Activity):
    """Emits a stream's tuples once media time reaches their start."""

    def __init__(self, name: str, stream: TimedStream):
        super().__init__(name)
        self.stream = stream
        self.time_system = stream.time_system
        self._pending = deque(stream.tuples)

    @property
    def finished(self) -> bool:
        return not self._pending

    def next_boundary(self) -> Rational | None:
        """Media time of the next element this producer will emit."""
        if not self._pending:
            return None
        return self.time_system.to_continuous(self._pending[0].start)

    def step(self, now: Rational) -> bool:
        worked = False
        while self._pending:
            head = self._pending[0]
            due = self.time_system.to_continuous(head.start)
            if due > now:
                break
            if any(port.is_full for port in self.outputs):
                break
            self._pending.popleft()
            for port in self.outputs:
                port.put(head)
            worked = True
        return worked


class Transform(Activity):
    """Applies a function to each element, forwarding timing.

    ``fn`` maps a :class:`MediaElement` to a :class:`MediaElement` (or
    None to drop the tuple — a filter).
    """

    def __init__(self, name: str,
                 fn: Callable[[MediaElement], MediaElement | None]):
        super().__init__(name)
        self.fn = fn
        self.processed = 0
        self.dropped = 0

    def step(self, now: Rational) -> bool:
        worked = False
        for port in self.inputs:
            while True:
                if any(out.is_full for out in self.outputs):
                    break
                item = port.take()
                if item is None:
                    break
                result = self.fn(item.element)
                self.processed += 1
                if result is None:
                    self.dropped += 1
                else:
                    forwarded = TimedTuple(result, item.start, item.duration)
                    for out in self.outputs:
                        out.put(forwarded)
                worked = True
        return worked


class Consumer(Activity):
    """Collects tuples; optionally records their arrival times."""

    def __init__(self, name: str, keep_elements: bool = True):
        super().__init__(name)
        self.keep_elements = keep_elements
        self.collected: list[TimedTuple] = []
        self.arrival_times: list[Rational] = []
        self.count = 0
        self.bytes = 0

    def step(self, now: Rational) -> bool:
        worked = False
        for port in self.inputs:
            while True:
                item = port.take()
                if item is None:
                    break
                self.count += 1
                self.bytes += item.element.size
                self.arrival_times.append(now)
                if self.keep_elements:
                    self.collected.append(item)
                worked = True
        return worked


class ActivityGraph:
    """A network of activities connected by ports."""

    def __init__(self) -> None:
        self.activities: list[Activity] = []
        self._port_counter = 0

    def add(self, activity: Activity) -> Activity:
        if any(a.name == activity.name for a in self.activities):
            raise EngineError(f"activity {activity.name!r} already added")
        self.activities.append(activity)
        return activity

    def connect(self, source: Activity, sink: Activity,
                capacity: int = 64) -> Port:
        """Create a port from ``source`` to ``sink``."""
        if source not in self.activities or sink not in self.activities:
            raise EngineError("connect() requires added activities")
        self._port_counter += 1
        port = Port(f"{source.name}->{sink.name}#{self._port_counter}",
                    capacity)
        source.outputs.append(port)
        sink.inputs.append(port)
        return port

    def _next_boundary(self, now: Rational) -> Rational | None:
        boundaries = [
            b for a in self.activities if isinstance(a, Producer)
            for b in [a.next_boundary()] if b is not None and b > now
        ]
        return min(boundaries) if boundaries else None

    def run(self, max_steps: int = 100_000) -> Rational:
        """Run to quiescence; returns the final media time.

        Each round drains every activity at the current media time; when
        a full round does no work, the clock jumps to the next producer
        boundary. The run ends when all producers are finished and a
        round is idle.
        """
        now = Rational(0)
        for _ in range(max_steps):
            worked = False
            for activity in self.activities:
                if activity.step(now):
                    worked = True
            if worked:
                continue
            boundary = self._next_boundary(now)
            if boundary is None:
                if all(a.finished for a in self.activities
                       if isinstance(a, Producer)):
                    return now
                raise EngineError(
                    "activity graph stalled: producers blocked on full ports"
                )
            now = boundary
        raise EngineError(f"activity graph did not quiesce in {max_steps} steps")


def pipeline(stream: TimedStream,
             *transforms: Callable[[MediaElement], MediaElement | None],
             ) -> Consumer:
    """Convenience: producer -> transforms... -> consumer, run to the end."""
    graph = ActivityGraph()
    producer = graph.add(Producer("source", stream))
    previous: Activity = producer
    for index, fn in enumerate(transforms):
        node = graph.add(Transform(f"transform{index}", fn))
        graph.connect(previous, node)
        previous = node
    consumer = graph.add(Consumer("sink"))
    graph.connect(previous, consumer)
    graph.run()
    return consumer
