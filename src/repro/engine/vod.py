"""Video-on-demand server simulation.

§1.1's motivating application: "new multimedia applications such as
video on-demand services and virtual environments stand to benefit from
access to large databases of time-based material." This module simulates
the serving side: a fixed outbound bandwidth shared by concurrent client
sessions, utilization-based admission control, and per-client playback
reports.

The model is deliberately simple and exact: admitted clients share the
server's bandwidth equally (processor-sharing), so each client sees
``bandwidth / n`` while ``n`` sessions are active. A session underruns
when its share cannot sustain its stream's required rate — the capacity
crossover the benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interpretation import Interpretation
from repro.core.rational import Rational, as_rational
from repro.engine.player import CostModel, PlaybackReport, Player
from repro.errors import EngineError, ResourceError


@dataclass
class Session:
    """One admitted client session."""

    client: str
    title: str
    report: PlaybackReport


@dataclass
class ServerReport:
    """Outcome of serving a batch of concurrent requests."""

    admitted: list[Session]
    rejected: list[tuple[str, str]]
    bandwidth: int
    per_client_bandwidth: int

    @property
    def admitted_count(self) -> int:
        return len(self.admitted)

    def clean_sessions(self) -> int:
        return sum(1 for s in self.admitted if s.report.underruns == 0)

    def underrun_sessions(self) -> int:
        return sum(1 for s in self.admitted if s.report.underruns > 0)


class VodServer:
    """Serves cataloged titles under a shared bandwidth budget."""

    def __init__(self, bandwidth: int, prefetch_depth: int = 8,
                 admission_margin: float = 1.0):
        """``bandwidth`` is outbound bytes/second; ``admission_margin``
        scales the admission test (1.2 keeps 20% headroom)."""
        if bandwidth <= 0:
            raise EngineError("bandwidth must be positive")
        if admission_margin < 1.0:
            raise EngineError("admission margin must be >= 1.0")
        self.bandwidth = bandwidth
        self.prefetch_depth = prefetch_depth
        self.admission_margin = admission_margin
        self._titles: dict[str, Interpretation] = {}

    # -- catalog ---------------------------------------------------------------

    def publish(self, title: str, interpretation: Interpretation) -> None:
        if title in self._titles:
            raise EngineError(f"title {title!r} already published")
        interpretation.validate()
        self._titles[title] = interpretation

    def titles(self) -> list[str]:
        return sorted(self._titles)

    def required_rate(self, title: str) -> Rational:
        """Mean data rate the title needs (from its descriptors)."""
        try:
            interpretation = self._titles[title]
        except KeyError:
            raise EngineError(f"unknown title {title!r}") from None
        total = Rational(0)
        for name in interpretation.names():
            descriptor = interpretation.sequence(name).media_descriptor
            rate = descriptor.get("average_data_rate")
            if rate is None:
                raise ResourceError(
                    f"{title!r}/{name} lacks average_data_rate; "
                    "record it with the Recorder"
                )
            total += as_rational(rate)
        return total

    # -- admission + serving ------------------------------------------------------

    def admit(self, requests: list[tuple[str, str]]) -> tuple[
            list[tuple[str, str]], list[tuple[str, str]]]:
        """Greedy admission: accept requests while aggregate required
        rate (with margin) fits the bandwidth. Returns (admitted,
        rejected)."""
        admitted: list[tuple[str, str]] = []
        rejected: list[tuple[str, str]] = []
        load = Rational(0)
        budget = Rational(self.bandwidth)
        for client, title in requests:
            rate = self.required_rate(title)
            projected = (load + rate) * as_rational(self.admission_margin)
            if projected <= budget:
                admitted.append((client, title))
                load += rate
            else:
                rejected.append((client, title))
        return admitted, rejected

    def serve(self, requests: list[tuple[str, str]],
              enforce_admission: bool = True) -> ServerReport:
        """Simulate serving ``requests`` concurrently.

        With ``enforce_admission`` the admission test runs first;
        without it every request is served (the overload experiment).
        Each admitted session plays its title against an equal share of
        the server bandwidth.
        """
        if not requests:
            raise EngineError("serve needs at least one request")
        if enforce_admission:
            admitted, rejected = self.admit(requests)
        else:
            admitted, rejected = list(requests), []
        sessions: list[Session] = []
        if admitted:
            share = max(1, self.bandwidth // len(admitted))
            player = Player(
                CostModel(bandwidth=share),
                prefetch_depth=self.prefetch_depth,
            )
            for client, title in admitted:
                report = player.play(self._titles[title])
                sessions.append(Session(client, title, report))
        else:
            share = 0
        return ServerReport(
            admitted=sessions,
            rejected=rejected,
            bandwidth=self.bandwidth,
            per_client_bandwidth=share,
        )

    def capacity(self, title: str) -> int:
        """How many concurrent sessions of ``title`` the admission test
        accepts — the server's nominal capacity for that title."""
        rate = self.required_rate(title) * as_rational(self.admission_margin)
        if rate <= 0:
            raise ResourceError(f"{title!r} declares a zero data rate")
        return int(Rational(self.bandwidth) / rate)
