"""Video-on-demand server simulation.

§1.1's motivating application: "new multimedia applications such as
video on-demand services and virtual environments stand to benefit from
access to large databases of time-based material." This module simulates
the serving side: a fixed outbound bandwidth shared by concurrent client
sessions, utilization-based admission control, and per-client playback
reports.

The model is deliberately simple and exact: admitted clients share the
server's bandwidth equally (processor-sharing), so each client sees
``bandwidth / n`` while ``n`` sessions are active. A session underruns
when its share cannot sustain its stream's required rate — the capacity
crossover the benchmark sweeps.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.interpretation import Interpretation
from repro.core.rational import Rational, as_rational
from repro.engine.kernel import BandwidthLedger, EventLoop, SessionMachine
from repro.engine.player import (
    AdaptationPolicy,
    CostModel,
    PlaybackReport,
    Player,
    RetryPolicy,
)
from repro.errors import (
    CheckpointError,
    DurabilityError,
    EngineError,
    MediaModelError,
    ResourceError,
    SimulatedCrash,
)
from repro.faults.crash import NULL_CRASH, CrashInjector
from repro.faults.plan import FaultPlan
from repro.obs.events import Severity
from repro.obs.instrument import NULL_OBS, Observability
from repro.obs.profile import profile_stages
from repro.obs.slo import SloVerdict, worst_verdicts
from repro.obs.tracing import TraceContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.derivations import DerivationCache
    from repro.obs.telemetry import Telemetry

#: Checkpoint payload format version; bump on incompatible changes.
CHECKPOINT_VERSION = 1

#: Sentinel distinguishing "keyword not passed" from an explicit None in
#: the ``serve``/``resume`` keyword shims.
_UNSET: Any = object()

#: Kernel drive modes a batch may request.
_GRANULARITIES = ("auto", "session", "read")


@dataclass(frozen=True, kw_only=True)
class SessionRequest:
    """One client's request for a title, as a first-class object.

    The redesigned serving API passes these instead of bare
    ``(client, title)`` tuples. ``arrival_time`` staggers the session's
    start on the kernel's shared clock (the seed behaviour is every
    session arriving at time zero); ``retry_policy`` and ``adaptation``
    override the batch-wide policies for this session only. ``key`` is
    the session's identity — what fleet rollups count exactly once.
    """

    client: str
    title: str
    arrival_time: Rational = Rational(0)
    retry_policy: RetryPolicy | None = None
    adaptation: AdaptationPolicy | None = None

    def __post_init__(self) -> None:
        arrival = as_rational(self.arrival_time)
        if arrival < 0:
            raise EngineError(f"arrival_time must be >= 0, got {arrival}")
        object.__setattr__(self, "arrival_time", arrival)

    @property
    def key(self) -> tuple[str, str]:
        return (self.client, self.title)

    def replace(self, **changes: Any) -> "SessionRequest":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True, kw_only=True)
class ServeOptions:
    """Batch-wide serving policy, as one object instead of loose kwargs.

    ``granularity`` picks the kernel drive mode: ``"session"`` runs
    each session whole in a single event (exactly the seed stepping
    semantics); ``"read"`` steps one element per event, so sessions
    genuinely interleave on the shared clock and bandwidth re-prices as
    sessions come and go; ``"auto"`` (the default) picks ``"session"``
    when every arrival is at time zero — provably equivalent to the
    seed loop — and ``"read"`` otherwise.
    """

    enforce_admission: bool = True
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    adaptation: AdaptationPolicy | None = None
    checkpoint_to: str | None = None
    checkpoint_fs: Any = None
    granularity: str = "auto"

    def __post_init__(self) -> None:
        if self.granularity not in _GRANULARITIES:
            raise EngineError(
                f"granularity must be one of {_GRANULARITIES}, "
                f"got {self.granularity!r}"
            )

    def replace(self, **changes: Any) -> "ServeOptions":
        return dataclasses.replace(self, **changes)


def normalize_requests(
    requests: "Sequence[SessionRequest | tuple[str, str]] | SessionRequest",
    *, warn: bool = True, stacklevel: int = 3,
) -> tuple[list[SessionRequest], bool]:
    """Coerce a request batch to :class:`SessionRequest` objects.

    Native ``SessionRequest`` items pass through untouched; a single
    request may stand in for a batch of one. Legacy ``(client, title)``
    pairs are converted — with one :class:`DeprecationWarning` per call
    unless ``warn`` is off (the same shim pattern as the PR-2
    ``play_reads`` overloads). Returns ``(requests, legacy)`` where
    ``legacy`` says whether any tuple form appeared, so callers like
    :meth:`VodServer.admit` can answer in the shape they were asked.
    """
    if isinstance(requests, SessionRequest):
        return [requests], False
    normalized: list[SessionRequest] = []
    legacy = False
    for request in requests:
        if isinstance(request, SessionRequest):
            normalized.append(request)
            continue
        if isinstance(request, str):
            raise EngineError(
                "requests must be SessionRequest objects or "
                f"(client, title) pairs, got {request!r}"
            )
        try:
            client, title = request
        except (TypeError, ValueError):
            raise EngineError(
                "requests must be SessionRequest objects or "
                f"(client, title) pairs, got {request!r}"
            ) from None
        legacy = True
        normalized.append(SessionRequest(client=client, title=title))
    if legacy and warn:
        warnings.warn(
            "passing (client, title) tuples is deprecated; pass "
            "SessionRequest objects",
            DeprecationWarning, stacklevel=stacklevel,
        )
    return normalized, legacy


@dataclass
class Session:
    """One admitted client session.

    ``degraded`` marks a session the server had to re-admit in fallback
    mode (base quality, unbounded skip tolerance) after its first
    playback aborted on storage faults. ``resumed`` marks a session
    served by a server restored from a crash checkpoint — the client
    was handed off across a failover, which counts as degraded service
    even when the replay itself was clean.
    """

    client: str
    title: str
    report: PlaybackReport
    degraded: bool = False
    resumed: bool = False
    request: SessionRequest | None = None

    @property
    def identity(self) -> tuple[str, str]:
        """The session's request identity (client, title)."""
        if self.request is not None:
            return self.request.key
        return (self.client, self.title)


@dataclass
class ServerReport:
    """Outcome of serving a batch of concurrent requests.

    Sessions fall into disjoint quality tiers: *clean* (no underruns,
    no fault damage), *underrun* (late but intact), *degraded* (glitches,
    skipped elements or reduced delivered quality — whether from in-band
    adaptation or server-side failover). ``failed`` lists admitted
    sessions the server could not complete even in fallback mode.
    ``recovered`` counts sessions that finished *before* a crash and
    whose results were carried over from the checkpoint rather than
    re-served.
    """

    admitted: list[Session]
    rejected: list[SessionRequest]
    bandwidth: int
    per_client_bandwidth: int
    failed: list[tuple[str, str, str]] = field(default_factory=list)
    recovered: int = 0

    @property
    def admitted_count(self) -> int:
        return len(self.admitted)

    @staticmethod
    def _is_degraded(session: Session) -> bool:
        report = session.report
        return (session.degraded or session.resumed
                or report.glitches > 0
                or report.skipped_elements > 0
                or report.delivered_quality < 1)

    def clean_sessions(self) -> int:
        return sum(
            1 for s in self.admitted
            if s.report.underruns == 0 and not self._is_degraded(s)
        )

    def underrun_sessions(self) -> int:
        return sum(1 for s in self.admitted if s.report.underruns > 0)

    def degraded_sessions(self) -> int:
        return sum(1 for s in self.admitted if self._is_degraded(s))

    def failed_sessions(self) -> int:
        return len(self.failed)

    def mean_delivered_quality(self) -> float:
        """Mean delivered quality over admitted sessions.

        A batch with nobody admitted delivered nothing: 0.0, not a
        vacuous 1.0 (and never an exception) — capacity sweeps divide
        by this without special-casing the overloaded end.
        """
        if not self.admitted:
            return 0.0
        total = sum(
            float(s.report.delivered_quality) for s in self.admitted
        )
        return total / len(self.admitted)

    #: Per-identity outcome ranking; higher is worse.
    _OUTCOME_RANK = {"clean": 0, "underrun": 1, "degraded": 2, "failed": 3}

    def outcomes(self) -> dict[tuple[str, str], str]:
        """Worst outcome per session identity — each counted exactly once.

        The tier counters above keep the seed's per-session semantics,
        under which a session may show up in more than one bucket (both
        underrun and degraded, or re-served after a failover). Fleet
        rollups instead normalize on :attr:`SessionRequest.key`: every
        identity maps to exactly one of ``failed`` > ``degraded`` >
        ``underrun`` > ``clean``, with the worst observation winning
        when reports overlap (a resumed-then-degraded session counts
        once, as degraded).
        """
        ranked: dict[tuple[str, str], str] = {}

        def fold(key: tuple[str, str], outcome: str) -> None:
            held = ranked.get(key)
            if (held is None
                    or self._OUTCOME_RANK[outcome] > self._OUTCOME_RANK[held]):
                ranked[key] = outcome

        for session in self.admitted:
            if self._is_degraded(session):
                fold(session.identity, "degraded")
            elif session.report.underruns > 0:
                fold(session.identity, "underrun")
            else:
                fold(session.identity, "clean")
        for client, title, _reason in self.failed:
            fold((client, title), "failed")
        return ranked


@dataclass(frozen=True)
class ServerHealth:
    """Point-in-time serving health, aggregated over every ``serve``.

    ``status`` is ``"ok"``, ``"degraded"`` (underruns, degraded or
    rejected sessions, or a violated SLO) or ``"critical"`` (failed
    sessions or an SLO burning past its critical rate). ``slo`` holds
    the worst verdict per objective across all sessions;
    ``recent_critical`` is the tail of ERROR-and-above flight-recorder
    events, newest last.
    """

    status: str
    sessions: int
    clean: int
    underrun: int
    degraded: int
    failed: int
    rejected: int
    slo: tuple[SloVerdict, ...]
    cache_hit_ratios: dict[str, float]
    dominant_stage: str | None
    recent_critical: tuple[dict, ...]
    #: Burn-rate alert exports from the attached telemetry pipeline
    #: (empty without one). A currently-firing alert degrades status
    #: even while sessions are still streaming.
    alerts: tuple[dict, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def firing_alerts(self) -> tuple[dict, ...]:
        return tuple(a for a in self.alerts if a["state"] == "firing")

    def export(self) -> dict:
        return {
            "status": self.status,
            "sessions": self.sessions,
            "clean": self.clean,
            "underrun": self.underrun,
            "degraded": self.degraded,
            "failed": self.failed,
            "rejected": self.rejected,
            "slo": [v.export() for v in self.slo],
            "cache_hit_ratios": {
                name: self.cache_hit_ratios[name]
                for name in sorted(self.cache_hit_ratios)
            },
            "dominant_stage": self.dominant_stage,
            "recent_critical": list(self.recent_critical),
            "alerts": list(self.alerts),
        }

    def summary(self) -> str:
        lines = [
            f"status: {self.status}",
            f"sessions: {self.sessions} ({self.clean} clean, "
            f"{self.underrun} underrun, {self.degraded} degraded, "
            f"{self.failed} failed, {self.rejected} rejected)",
        ]
        for verdict in self.slo:
            lines.append(f"slo {verdict.summary()}")
        for name in sorted(self.cache_hit_ratios):
            lines.append(
                f"cache {name}: hit ratio {self.cache_hit_ratios[name]:.1%}"
            )
        if self.dominant_stage is not None:
            lines.append(f"dominant stage: {self.dominant_stage}")
        for alert in self.alerts:
            lines.append(
                f"alert {alert['name']} [{alert['state']}] "
                f"source={alert['source']} "
                f"burn={alert['burn_short']:.2f}/{alert['burn_long']:.2f}"
            )
        for event in self.recent_critical:
            lines.append(
                f"event [{event['severity']}] {event['component']} "
                f"{event['name']} at={event['at']}"
            )
        return "\n".join(lines)


def _trace_steps(obs: Observability, context: TraceContext, stepper):
    """Wrap a player stepper so each step runs under ``context``.

    The kernel interleaves many sessions' steps on one loop; pushing
    the context only around ``next(stepper)`` (never across a yield)
    keeps each session's spans and events stamped with its own trace
    id. ``StopIteration.value`` — the session report — passes through.
    """
    while True:
        with obs.trace(context):
            try:
                dt = next(stepper)
            except StopIteration as stop:
                return stop.value
        yield dt


class VodServer:
    """Serves cataloged titles under a shared bandwidth budget."""

    def __init__(self, bandwidth: int, prefetch_depth: int = 8,
                 admission_margin: float = 1.0,
                 derivation_cache: "DerivationCache | None" = None,
                 obs: Observability | None = None,
                 plan_check: str = "check",
                 crash: CrashInjector | None = None,
                 telemetry: "Telemetry | None" = None):
        """``bandwidth`` is outbound bytes/second; ``admission_margin``
        scales the admission test (1.2 keeps 20% headroom).
        ``derivation_cache`` is handed to every session's player so
        derived components expand once per server, not once per
        session. ``obs`` attaches an observability sink, shared with
        every session's player, so one registry captures the whole
        serving run.

        ``plan_check`` gates :meth:`publish` behind the static graph
        checker (same policies as :class:`Player`): the default
        ``"check"`` rejects structurally broken titles — placement rows
        beyond the BLOB, cycles — with
        :class:`~repro.errors.PlanRejectedError` before they can ever
        be admitted; ``"strict"`` also rejects statically infeasible
        ones; ``"off"`` publishes anything.

        ``crash`` is a :class:`~repro.faults.crash.CrashInjector` for
        the crash matrix: the server announces a crash point before
        each session and inside checkpoint writes, so the harness can
        kill it at every step of a serve.

        ``telemetry`` is a :class:`~repro.obs.telemetry.Telemetry`
        pipeline: when attached (and ``obs`` is live), every serve
        batch schedules a repeating scrape on its event loop, sampling
        the registry into the telemetry store and evaluating burn-rate
        alerts mid-serve."""
        if bandwidth <= 0:
            raise EngineError("bandwidth must be positive")
        if admission_margin < 1.0:
            raise EngineError("admission margin must be >= 1.0")
        from repro.analysis.graph import PLAN_POLICIES

        if plan_check not in PLAN_POLICIES:
            raise EngineError(
                f"plan_check must be one of {PLAN_POLICIES}, "
                f"got {plan_check!r}"
            )
        self.bandwidth = bandwidth
        self.prefetch_depth = prefetch_depth
        self.admission_margin = admission_margin
        self.derivation_cache = derivation_cache
        self.obs = NULL_OBS if obs is None else obs
        self.plan_check = plan_check
        self.crash = crash or NULL_CRASH
        self.telemetry = telemetry
        self._titles: dict[str, Interpretation] = {}
        self._plan_cache: dict[str, list] = {}
        self._reports: list[ServerReport] = []
        # Kernel counters from the most recent batch (census/bench).
        self.last_loop_stats: dict | None = None
        # Progress of the serve batch currently running (feeds mid-serve
        # checkpoints) and the batch a restored server should resume.
        self._batch_progress: dict | None = None
        self._pending_batch: dict | None = None
        self.restored_cache_manifest: dict | None = None

    # -- catalog ---------------------------------------------------------------

    def publish(self, title: str, interpretation: Interpretation) -> None:
        """Add a title to the catalog after static verification.

        Under the server's ``plan_check`` policy the graph checker runs
        over the interpretation before it is accepted; a blocked title
        raises :class:`~repro.errors.PlanRejectedError` and is not
        published, so admission and serving never see it.
        """
        if title in self._titles:
            raise EngineError(f"title {title!r} already published")
        if self.plan_check != "off":
            from repro.analysis.graph import blocking_diagnostics
            from repro.errors import PlanRejectedError

            report = self._check_interpretation(interpretation)
            blocking = blocking_diagnostics(report, self.plan_check)
            if blocking:
                self.obs.metrics.counter("vod.publish.rejections").inc()
                self.obs.events.record(
                    Severity.ERROR, "vod.server", "publish.rejected",
                    title=title, findings=len(blocking),
                )
                raise PlanRejectedError(
                    f"title {title!r} rejected by static verification: "
                    + "; ".join(str(d) for d in blocking),
                    diagnostics=tuple(blocking),
                )
        interpretation.validate()
        self._titles[title] = interpretation
        self._plan_cache.pop(title, None)

    def _check_interpretation(self, interpretation: Interpretation):
        from repro.analysis.graph import GraphChecker

        per_client = self.bandwidth  # best case: a lone session
        return GraphChecker(
            cost_model=CostModel(bandwidth=per_client),
        ).check_interpretation(interpretation)

    def verify_title(self, title: str):
        """The static checker's full report for a published title."""
        try:
            interpretation = self._titles[title]
        except KeyError:
            raise EngineError(f"unknown title {title!r}") from None
        return self._check_interpretation(interpretation)

    def titles(self) -> list[str]:
        return sorted(self._titles)

    def prefetch(self, title: str) -> int:
        """Warm the storage path beneath ``title``; returns bytes pulled.

        Materializes each of the title's sequences once, pulling every
        referenced page up through the BLOB. Over a buffer-pool-backed
        page store this loads the pool before the first session
        arrives, so cold-start page reads land on the prefetch instead
        of on a paying client; the replay benchmark measures the
        difference.
        """
        try:
            interpretation = self._titles[title]
        except KeyError:
            raise EngineError(f"unknown title {title!r}") from None
        warmed = 0
        with self.obs.tracer.span("vod.prefetch", title=title) as span:
            for name in interpretation.names():
                stream = interpretation.materialize(name)
                warmed += stream.total_size()
            span.set(bytes=warmed)
        metrics = self.obs.metrics
        metrics.counter("vod.prefetches").inc()
        metrics.counter("vod.prefetch_bytes").inc(warmed)
        return warmed

    def required_rate(self, title: str) -> Rational:
        """Mean data rate the title needs (from its descriptors)."""
        try:
            interpretation = self._titles[title]
        except KeyError:
            raise EngineError(f"unknown title {title!r}") from None
        total = Rational(0)
        for name in interpretation.names():
            descriptor = interpretation.sequence(name).media_descriptor
            rate = descriptor.get("average_data_rate")
            if rate is None:
                raise ResourceError(
                    f"{title!r}/{name} lacks average_data_rate; "
                    "record it with the Recorder"
                )
            total += as_rational(rate)
        return total

    # -- admission + serving ------------------------------------------------------

    def admit(self, requests) -> tuple[list, list]:
        """Greedy admission: accept requests while aggregate required
        rate (with margin) fits the bandwidth. Returns (admitted,
        rejected).

        Accepts :class:`SessionRequest` objects natively. Legacy
        ``(client, title)`` pairs still work — with a
        :class:`DeprecationWarning` — and come back in tuple form, so
        existing callers keep unpacking what they passed.
        """
        reqs, legacy = normalize_requests(requests)
        admitted, rejected = self._admit_requests(reqs)
        if legacy:
            return [r.key for r in admitted], [r.key for r in rejected]
        return admitted, rejected

    def _admit_requests(self, requests: list[SessionRequest]) -> tuple[
            list[SessionRequest], list[SessionRequest]]:
        admitted: list[SessionRequest] = []
        rejected: list[SessionRequest] = []
        load = Rational(0)
        budget = Rational(self.bandwidth)
        for request in requests:
            rate = self.required_rate(request.title)
            projected = (load + rate) * as_rational(self.admission_margin)
            if projected <= budget:
                admitted.append(request)
                load += rate
            else:
                rejected.append(request)
        return admitted, rejected

    @staticmethod
    def _merge_options(options: ServeOptions | None,
                       overrides: dict) -> ServeOptions:
        given = {k: v for k, v in overrides.items() if v is not _UNSET}
        if options is not None:
            if given:
                raise EngineError(
                    "pass options=ServeOptions(...) or individual "
                    "keywords, not both"
                )
            return options
        return ServeOptions(**given)

    def serve(self, requests, options: ServeOptions | None = None, *,
              enforce_admission=_UNSET,
              fault_plan=_UNSET,
              retry_policy=_UNSET,
              adaptation=_UNSET,
              checkpoint_to=_UNSET,
              checkpoint_fs=_UNSET,
              granularity=_UNSET) -> ServerReport:
        """Simulate serving ``requests`` concurrently on the event kernel.

        ``requests`` is a batch of :class:`SessionRequest` objects
        (legacy ``(client, title)`` pairs still work, with a
        :class:`DeprecationWarning`); batch-wide policy comes as a
        :class:`ServeOptions` or as the individual keywords, not both.

        With ``enforce_admission`` the admission test runs first;
        without it every request is served (the overload experiment).
        Each admitted session plays its title against an equal share of
        the server bandwidth; at ``"read"`` granularity (or staggered
        arrivals under ``"auto"``) sessions interleave one element per
        event and the bandwidth ledger re-prices reads as sessions come
        and go.

        ``fault_plan`` subjects every session to the same storage
        faults (they share the disk). A session whose playback aborts —
        faults beyond its retry policy's tolerance — is not dropped:
        the server re-admits it in fallback mode (base-layer quality if
        an adaptation policy exists, unbounded skip tolerance) and
        accounts it as *degraded*. Only a session that fails even the
        fallback lands in ``ServerReport.failed``; ``serve`` itself
        never propagates a storage fault (an injected
        :class:`~repro.errors.SimulatedCrash` always propagates — it
        models the whole process dying).

        With ``checkpoint_to`` the server atomically rewrites a
        checkpoint file after *every* session, so a crash mid-serve
        loses at most the in-flight session: :meth:`restore` +
        :meth:`resume` pick the batch up from the last completed one.
        """
        reqs, _ = normalize_requests(requests)
        opts = self._merge_options(options, dict(
            enforce_admission=enforce_admission,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            adaptation=adaptation,
            checkpoint_to=checkpoint_to,
            checkpoint_fs=checkpoint_fs,
            granularity=granularity,
        ))
        if not reqs:
            raise EngineError("serve needs at least one request")
        if opts.enforce_admission:
            admitted, rejected = self._admit_requests(reqs)
        else:
            admitted, rejected = list(reqs), []
        metrics = self.obs.metrics
        metrics.counter("vod.requests").inc(len(reqs))
        metrics.counter("vod.admitted").inc(len(admitted))
        metrics.counter("vod.rejected").inc(len(rejected))
        share = max(1, self.bandwidth // len(admitted)) if admitted else 0
        sessions, failed = self._run_batch(admitted, rejected, opts, share)
        self._batch_progress = None
        report = ServerReport(
            admitted=sessions,
            rejected=rejected,
            bandwidth=self.bandwidth,
            per_client_bandwidth=share,
            failed=failed,
        )
        self._reports.append(report)
        return report

    def serve_stepping(self, requests, options: ServeOptions | None = None, *,
                       enforce_admission=_UNSET,
                       fault_plan=_UNSET,
                       retry_policy=_UNSET,
                       adaptation=_UNSET,
                       checkpoint_to=_UNSET,
                       checkpoint_fs=_UNSET) -> ServerReport:
        """The seed serving loop, retained as the equivalence oracle.

        Steps each admitted session to completion before touching the
        next — the pre-kernel semantics. The kernel path at session
        granularity must produce byte-identical observability exports
        and an equal :class:`ServerReport`; the equivalence suite holds
        :meth:`serve` to this implementation. Not deprecated, but new
        code should call :meth:`serve`.
        """
        reqs, _ = normalize_requests(requests, warn=False)
        opts = self._merge_options(options, dict(
            enforce_admission=enforce_admission,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            adaptation=adaptation,
            checkpoint_to=checkpoint_to,
            checkpoint_fs=checkpoint_fs,
        ))
        if not reqs:
            raise EngineError("serve needs at least one request")
        if opts.enforce_admission:
            admitted, rejected = self._admit_requests(reqs)
        else:
            admitted, rejected = list(reqs), []
        metrics = self.obs.metrics
        metrics.counter("vod.requests").inc(len(reqs))
        metrics.counter("vod.admitted").inc(len(admitted))
        metrics.counter("vod.rejected").inc(len(rejected))
        sessions: list[Session] = []
        failed: list[tuple[str, str, str]] = []
        if admitted:
            share = max(1, self.bandwidth // len(admitted))
            player = self._build_player(
                share, opts.fault_plan, opts.retry_policy, opts.adaptation,
            )
            for position, request in enumerate(admitted):
                self.crash.point("vod.serve.session")
                session = self._serve_one(
                    self._player_for(request, player, share, opts),
                    request.client, request.title, share, opts.fault_plan,
                    request.retry_policy or opts.retry_policy,
                    request.adaptation or opts.adaptation,
                    failed, request=request,
                )
                if session is not None:
                    sessions.append(session)
                if opts.checkpoint_to is not None:
                    self._batch_progress = self._progress_payload(
                        admitted, rejected, sessions, failed,
                        admitted[position + 1:], share,
                    )
                    self.checkpoint_to(
                        opts.checkpoint_to, fs=opts.checkpoint_fs,
                    )
        else:
            share = 0
        self._batch_progress = None
        report = ServerReport(
            admitted=sessions,
            rejected=rejected,
            bandwidth=self.bandwidth,
            per_client_bandwidth=share,
            failed=failed,
        )
        self._reports.append(report)
        return report

    # -- the kernel batch driver ---------------------------------------------------

    def _build_player(self, share: int, fault_plan, retry_policy,
                      adaptation) -> Player:
        return Player(
            CostModel(bandwidth=share),
            prefetch_depth=self.prefetch_depth,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            adaptation=adaptation,
            derivation_cache=self.derivation_cache,
            obs=self.obs,
        )

    def _player_for(self, request: SessionRequest, default: Player,
                    share: int, opts: ServeOptions) -> Player:
        """The batch player, or a private one for per-request overrides."""
        if request.retry_policy is None and request.adaptation is None:
            return default
        return self._build_player(
            share, opts.fault_plan,
            request.retry_policy or opts.retry_policy,
            request.adaptation or opts.adaptation,
        )

    def _plan_reads(self, player: Player, title: str) -> list:
        """Planned reads for a title, cached per catalog entry.

        Planning an :class:`Interpretation` is pure and observes
        nothing, so the plan is computed once per title and shared by
        every stepper that plays it.
        """
        reads = self._plan_cache.get(title)
        if reads is None:
            reads = player.plan_interpretation(self._titles[title])
            self._plan_cache[title] = reads
        return reads

    @staticmethod
    def _progress_payload(admitted, rejected, sessions, failed,
                          remaining, share: int) -> dict:
        return {
            "requests": [list(r.key) for r in admitted],
            "rejected": [list(r.key) for r in rejected],
            "completed": [
                VodServer._session_summary(s) for s in sessions
            ],
            "failed": [list(f) for f in failed],
            "remaining": [list(r.key) for r in remaining],
            "share": share,
        }

    def _run_batch(self, admitted: list[SessionRequest],
                   rejected: list[SessionRequest], opts: ServeOptions,
                   share: int, *, resumed: bool = False,
                   failed: list | None = None) -> tuple[
                       list[Session], list[tuple[str, str, str]]]:
        """Drive one admitted batch on the event kernel.

        One :class:`~repro.engine.kernel.SessionMachine` per request,
        all on one :class:`~repro.engine.kernel.EventLoop`. At
        ``"session"`` granularity each machine runs its whole session
        in a single event; with uniform arrivals the heap pops machines
        in admitted order, which replays the seed stepping loop exactly
        (the equivalence suite holds the exports byte-identical). At
        ``"read"`` granularity machines advance one element per event,
        genuinely interleaving on the shared clock, with the
        :class:`~repro.engine.kernel.BandwidthLedger` re-pricing each
        read by the sessions concurrently active.

        With observability disabled and no fault plan, identical
        requests are exact replays of the same pure simulation, so the
        session mode computes each distinct title once per batch and
        reuses the report — an optimization, not an approximation.
        """
        failed = [] if failed is None else failed
        sessions: list[Session] = []
        if not admitted:
            return sessions, failed
        granularity = opts.granularity
        if granularity == "auto":
            granularity = "session" if all(
                r.arrival_time == 0 for r in admitted
            ) else "read"
        default_player = self._build_player(
            share, opts.fault_plan, opts.retry_policy, opts.adaptation,
        )
        loop = EventLoop()
        done = [False] * len(admitted)
        checkpointing = opts.checkpoint_to is not None

        def record_progress(index: int) -> None:
            done[index] = True
            if not checkpointing:
                return
            self._batch_progress = self._progress_payload(
                admitted, rejected, sessions, failed,
                [r for i, r in enumerate(admitted) if not done[i]], share,
            )
            self.checkpoint_to(opts.checkpoint_to, fs=opts.checkpoint_fs)

        if granularity == "session":
            # Whole-session replay memo: sound only when sessions are
            # pure functions of their title (no obs, no shared faults,
            # no per-request policy).
            replayable = not self.obs.enabled and opts.fault_plan is None
            memo: dict[str, Session] = {}

            def runner(request: SessionRequest) -> Session | None:
                self.crash.point("vod.serve.session")
                cacheable = (replayable and request.retry_policy is None
                             and request.adaptation is None)
                if cacheable:
                    cached = memo.get(request.title)
                    if cached is not None:
                        return Session(
                            request.client, request.title, cached.report,
                            degraded=cached.degraded, resumed=resumed,
                            request=request,
                        )
                session = self._serve_one(
                    self._player_for(request, default_player, share, opts),
                    request.client, request.title, share, opts.fault_plan,
                    request.retry_policy or opts.retry_policy,
                    request.adaptation or opts.adaptation,
                    failed, resumed=resumed, request=request,
                )
                if cacheable and session is not None:
                    memo[request.title] = session
                return session

            for index, request in enumerate(admitted):
                def complete(machine, session, index=index):
                    if session is not None:
                        sessions.append(session)
                    record_progress(index)

                SessionMachine(
                    request.key, loop,
                    runner=lambda request=request: runner(request),
                    on_complete=complete,
                ).start(request.arrival_time)
        else:
            ledger = BandwidthLedger(len(admitted))
            for index, request in enumerate(admitted):
                player = self._player_for(request, default_player, share, opts)
                reads = self._plan_reads(player, request.title)
                context = TraceContext.for_session(request.client,
                                                   request.title)

                def stepper_factory(player=player, reads=reads,
                                    context=context):
                    stepper = player.stepper(reads,
                                             share_factor=ledger.factor)
                    if not self.obs.enabled:
                        return stepper
                    return _trace_steps(self.obs, context, stepper)

                def on_start(machine):
                    self.crash.point("vod.serve.session")

                def on_error(machine, exc, request=request, reads=reads,
                             context=context):
                    with self.obs.trace(context):
                        return self._read_session_error(
                            machine, exc, request, reads, ledger, share,
                            opts, failed, context,
                        )

                def complete(machine, report, index=index, request=request,
                             context=context):
                    if report is not None:
                        with self.obs.trace(context):
                            self.obs.tracer.record(
                                "vod.session", machine.started_at,
                                machine.finished_at, client=request.client,
                                title=request.title,
                                outcome=("fallback" if machine.restarts
                                         else "served"),
                                underruns=report.underruns,
                            )
                        sessions.append(Session(
                            request.client, request.title, report,
                            degraded=machine.restarts > 0, resumed=resumed,
                            request=request,
                        ))
                    record_progress(index)

                SessionMachine(
                    request.key, loop, stepper_factory=stepper_factory,
                    ledger=ledger, on_start=on_start, on_error=on_error,
                    on_complete=complete,
                ).start(request.arrival_time)
        scraping = self.telemetry is not None and self.obs.enabled
        if scraping:
            self.telemetry.attach(loop, self.obs, self._telemetry_source())
        loop.run()
        if scraping:
            self.telemetry.drain(loop, self.obs, self._telemetry_source())
        self.last_loop_stats = loop.stats()
        return sessions, failed

    def _read_session_error(self, machine, exc, request: SessionRequest,
                            reads, ledger: BandwidthLedger, share: int,
                            opts: ServeOptions, failed: list,
                            context: TraceContext):
        """Read-granularity fault handling: fall back once, then fail.

        Events are stamped with the kernel clock — the simulated
        instant the fault surfaced — and the trace context the caller
        pushed, so a failed session's whole story shares one track.
        """
        now = machine.loop.clock.now()
        if machine.restarts > 0:
            failed.append((request.client, request.title, str(exc)))
            self.obs.metrics.counter("vod.failed").inc()
            self.obs.events.record(
                Severity.CRITICAL, "vod.server", "session.failed",
                at=now, client=request.client, title=request.title,
                reason=str(exc),
            )
            return None
        self.obs.metrics.counter("vod.fallbacks").inc()
        self.obs.events.record(
            Severity.WARNING, "vod.server", "session.fallback",
            at=now, client=request.client, title=request.title,
        )
        fallback = self._fallback_player(
            share, opts.fault_plan,
            request.retry_policy or opts.retry_policy,
            request.adaptation or opts.adaptation,
        )
        stepper = fallback.stepper(reads, share_factor=ledger.factor)
        if not self.obs.enabled:
            return stepper
        return _trace_steps(self.obs, context, stepper)

    def _telemetry_source(self) -> str:
        """This server's name in the telemetry store: its scope prefix
        when it is a fleet shard, else ``"server"``."""
        return getattr(self.obs, "scope", None) or "server"

    def _serve_one(self, player: Player, client: str, title: str,
                   share: int, fault_plan: FaultPlan | None,
                   retry_policy: RetryPolicy | None,
                   adaptation: AdaptationPolicy | None,
                   failed: list[tuple[str, str, str]],
                   resumed: bool = False,
                   request: SessionRequest | None = None) -> Session | None:
        """Play one admitted session, falling back on storage faults.

        A :class:`~repro.errors.SimulatedCrash` is never treated as a
        storage fault — it is the machine dying, and must propagate to
        the crash harness."""
        with self.obs.trace(TraceContext.for_session(client, title)), \
                self.obs.tracer.span(
                    "vod.session", client=client, title=title,
                ) as span:
            try:
                report = player.play(self._titles[title])
            except SimulatedCrash:
                raise
            except MediaModelError:
                self.obs.metrics.counter("vod.fallbacks").inc()
                span.set(outcome="fallback")
                self.obs.events.record(
                    Severity.WARNING, "vod.server",
                    "session.fallback", client=client, title=title,
                )
                session = self._serve_degraded(
                    client, title, share, fault_plan, retry_policy,
                    adaptation, failed, request=request,
                )
                if session is not None:
                    session.resumed = resumed
                return session
            span.set(outcome="served", underruns=report.underruns)
            return Session(client, title, report, resumed=resumed,
                           request=request)

    def _fallback_player(self, share: int, fault_plan: FaultPlan | None,
                         retry_policy: RetryPolicy | None,
                         adaptation: AdaptationPolicy | None) -> Player:
        """The degraded-mode player: unbounded skip tolerance and, when
        the title is scalable, quality pinned to the base layer so each
        element needs the fewest bytes (and the fewest pages —
        shrinking the fault surface)."""
        base = retry_policy or RetryPolicy()
        lenient = base.replace(abort_skip_fraction=None)
        fallback_adaptation = adaptation
        if adaptation is not None:
            fallback_adaptation = adaptation.replace(
                max_level=adaptation.min_level
            )
        return self._build_player(
            share, fault_plan, lenient, fallback_adaptation,
        )

    def _serve_degraded(self, client: str, title: str, share: int,
                        fault_plan: FaultPlan | None,
                        retry_policy: RetryPolicy | None,
                        adaptation: AdaptationPolicy | None,
                        failed: list[tuple[str, str, str]],
                        request: SessionRequest | None = None,
                        ) -> Session | None:
        """Replay a faulted session in fallback mode.

        Records the session in ``failed`` and returns None when even
        the fallback cannot complete.
        """
        fallback = self._fallback_player(
            share, fault_plan, retry_policy, adaptation,
        )
        try:
            report = fallback.play(self._titles[title])
        except SimulatedCrash:
            raise
        except MediaModelError as exc:
            failed.append((client, title, str(exc)))
            self.obs.metrics.counter("vod.failed").inc()
            self.obs.events.record(
                Severity.CRITICAL, "vod.server", "session.failed",
                client=client, title=title, reason=str(exc),
            )
            return None
        return Session(client, title, report, degraded=True, request=request)

    # -- checkpoint / restore -----------------------------------------------------

    @staticmethod
    def _session_summary(session: Session) -> dict:
        return {
            "client": session.client,
            "title": session.title,
            "degraded": session.degraded,
            "resumed": session.resumed,
            "underruns": session.report.underruns,
            "glitches": session.report.glitches,
            "skipped_elements": session.report.skipped_elements,
            "delivered_quality": float(session.report.delivered_quality),
        }

    def checkpoint(self) -> dict:
        """JSON-safe snapshot of everything a failover server needs.

        Catalog titles travel as serialized RMF containers (base64), so
        the checkpoint is self-contained; mid-serve progress (completed
        session summaries, remaining requests, bandwidth share) rides
        along when a serve is running with ``checkpoint_to``; the
        derivation cache contributes its manifest. Deterministic for a
        given server state."""
        from repro.storage.container import serialize_container

        titles = {
            title: base64.b64encode(
                serialize_container(interpretation)
            ).decode("ascii")
            for title, interpretation in sorted(self._titles.items())
        }
        reports = self._reports
        return {
            "version": CHECKPOINT_VERSION,
            "config": {
                "bandwidth": self.bandwidth,
                "prefetch_depth": self.prefetch_depth,
                "admission_margin": self.admission_margin,
                "plan_check": self.plan_check,
            },
            "titles": titles,
            "batch": self._batch_progress,
            "aggregate": {
                "serves": len(reports),
                "sessions": sum(r.admitted_count for r in reports),
                "failed": sum(r.failed_sessions() for r in reports),
                "rejected": sum(len(r.rejected) for r in reports),
                "recovered": sum(r.recovered for r in reports),
            },
            "derivation_cache": (
                None if self.derivation_cache is None
                else self.derivation_cache.manifest()
            ),
        }

    def checkpoint_to(self, path: str, fs=None) -> int:
        """Atomically write :meth:`checkpoint` to ``path``; returns bytes.

        Uses the shadow-write + fsync + rename protocol, so a crash
        during the write leaves the previous checkpoint intact."""
        from repro.durability.atomic import atomic_write_bytes

        payload = json.dumps(
            self.checkpoint(), sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        self.crash.point("vod.checkpoint.write")
        atomic_write_bytes(str(path), payload, fs=fs, crash=self.crash)
        self.obs.metrics.counter("vod.checkpoints").inc()
        self.obs.events.record(
            Severity.DEBUG, "vod.server", "checkpoint.written",
            bytes=len(payload),
        )
        return len(payload)

    @classmethod
    def restore(cls, source: str | dict, fs=None,
                derivation_cache: "DerivationCache | None" = None,
                obs: Observability | None = None,
                crash: CrashInjector | None = None) -> "VodServer":
        """Rebuild a server from a checkpoint file (or payload dict).

        The catalog is republished through the same static verification
        as the original ``publish`` calls; a checkpoint taken mid-serve
        leaves the interrupted batch pending — call :meth:`resume` to
        finish it. Structural damage raises
        :class:`~repro.errors.CheckpointError`."""
        from repro.durability.atomic import read_bytes
        from repro.storage.container import deserialize_container

        if isinstance(source, dict):
            payload = source
        else:
            try:
                raw = read_bytes(str(source), fs=fs)
            except (OSError, DurabilityError) as exc:
                raise CheckpointError(
                    f"cannot read checkpoint {source}: {exc}"
                ) from exc
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"corrupt checkpoint {source}: {exc}"
                ) from exc
        try:
            version = payload["version"]
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version!r}"
                )
            config = payload["config"]
            server = cls(
                bandwidth=config["bandwidth"],
                prefetch_depth=config["prefetch_depth"],
                admission_margin=config["admission_margin"],
                derivation_cache=derivation_cache,
                obs=obs,
                plan_check=config["plan_check"],
                crash=crash,
            )
            for title, encoded in sorted(payload["titles"].items()):
                server.publish(
                    title, deserialize_container(base64.b64decode(encoded))
                )
            server._pending_batch = payload.get("batch")
            server.restored_cache_manifest = payload.get("derivation_cache")
        except (CheckpointError, MediaModelError):
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(
                f"malformed checkpoint payload: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        server.obs.metrics.counter("vod.restores").inc()
        server.obs.events.record(
            Severity.INFO, "vod.server", "checkpoint.restored",
            titles=len(server._titles),
            pending=(0 if server._pending_batch is None
                     else len(server._pending_batch.get("remaining", []))),
        )
        return server

    def adopt_batch(self, batch: dict) -> None:
        """Hand a displaced mid-serve batch to this server for resume.

        The fleet's failover path: a killed shard's last checkpoint
        ``batch`` payload is adopted by a surviving shard (whose
        catalog must cover the remaining titles), then finished with
        :meth:`resume`. Refuses to clobber a batch already pending.
        """
        if self._pending_batch is not None:
            raise CheckpointError(
                "server already has a pending batch to resume"
            )
        if not isinstance(batch, dict):
            raise CheckpointError("batch must be a checkpoint batch dict")
        missing = [
            key for key in
            ("remaining", "rejected", "completed", "failed", "share")
            if key not in batch
        ]
        if missing:
            raise CheckpointError(
                f"malformed batch: missing keys {missing}"
            )
        self._pending_batch = batch

    def resume(self, options: ServeOptions | None = None, *,
               fault_plan=_UNSET, retry_policy=_UNSET,
               adaptation=_UNSET) -> ServerReport:
        """Finish the serve batch interrupted by the crash.

        Sessions completed before the crash are *not* re-served: they
        arrive as ``ServerReport.recovered``. The remaining requests
        play at the original bandwidth share, each marked
        ``Session.resumed`` — which the report accounts as degraded
        service (the failover itself is a quality event), feeding
        :meth:`health` and its SLO verdicts."""
        if self._pending_batch is None:
            raise CheckpointError(
                "nothing to resume: this server was not restored from a "
                "mid-serve checkpoint"
            )
        opts = self._merge_options(options, dict(
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            adaptation=adaptation,
        ))
        batch = self._pending_batch
        self._pending_batch = None
        try:
            remaining = [
                SessionRequest(client=c, title=t)
                for c, t in batch["remaining"]
            ]
            rejected = [
                SessionRequest(client=c, title=t)
                for c, t in batch["rejected"]
            ]
            failed = [(c, t, r) for c, t, r in batch["failed"]]
            share = int(batch["share"])
            recovered = len(batch["completed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint batch: {type(exc).__name__}: {exc}"
            ) from exc
        missing = sorted(
            {r.title for r in remaining} - set(self._titles)
        )
        if missing:
            raise CheckpointError(
                f"checkpoint batch references unpublished titles: "
                f"{missing}"
            )
        self.obs.metrics.counter("vod.resumes").inc()
        self.obs.events.record(
            Severity.INFO, "vod.server", "serve.resumed",
            remaining=len(remaining), recovered=recovered,
        )
        sessions: list[Session] = []
        if remaining:
            share = max(1, share)
            sessions, failed = self._run_batch(
                remaining, rejected, opts, share,
                resumed=True, failed=failed,
            )
        report = ServerReport(
            admitted=sessions,
            rejected=rejected,
            bandwidth=self.bandwidth,
            per_client_bandwidth=share,
            failed=failed,
            recovered=recovered,
        )
        self._reports.append(report)
        return report

    # -- health ------------------------------------------------------------------

    def health(self) -> ServerHealth:
        """The server's aggregate health across every ``serve`` so far.

        Folds all session outcomes, the worst SLO verdict per
        objective, cache hit ratios (derivation cache directly, buffer
        pool via its exported gauge), the pipeline's dominant stage and
        the tail of ERROR-and-above flight-recorder events into one
        :class:`ServerHealth`. A pure function of the recorded state —
        same-seed runs report identical health.
        """
        reports = self._reports
        sessions = sum(r.admitted_count for r in reports)
        clean = sum(r.clean_sessions() for r in reports)
        underrun = sum(r.underrun_sessions() for r in reports)
        degraded = sum(r.degraded_sessions() for r in reports)
        failed = sum(r.failed_sessions() for r in reports)
        rejected = sum(len(r.rejected) for r in reports)
        slo = tuple(worst_verdicts(
            s.report.slo for r in reports for s in r.admitted
        ))
        ratios: dict[str, float] = {}
        if self.derivation_cache is not None:
            ratios["derivation"] = self.derivation_cache.hit_ratio
        if self.obs.enabled and "cache.pool.hit_ratio" in self.obs.metrics:
            pool_ratio = self.obs.metrics.get("cache.pool.hit_ratio").value()
            if pool_ratio is not None:
                ratios["pool"] = pool_ratio
        recent = tuple(
            event.export()
            for event in self.obs.events.recent(
                10, min_severity=Severity.ERROR
            )
        )
        alerts: tuple[dict, ...] = ()
        if self.telemetry is not None:
            alerts = tuple(
                alert.export() for alert in
                self.telemetry.alerts.for_source(self._telemetry_source())
            )
        firing = any(a["state"] == "firing" for a in alerts)
        if failed or any(
                v.severity >= Severity.CRITICAL for v in slo):
            status = "critical"
        elif (degraded or underrun or rejected or firing
                or any(not v.ok for v in slo)):
            status = "degraded"
        else:
            status = "ok"
        return ServerHealth(
            status=status,
            sessions=sessions,
            clean=clean,
            underrun=underrun,
            degraded=degraded,
            failed=failed,
            rejected=rejected,
            slo=slo,
            cache_hit_ratios=ratios,
            dominant_stage=profile_stages(self.obs).dominant_stage(),
            recent_critical=recent,
            alerts=alerts,
        )

    def capacity(self, title: str) -> int:
        """How many concurrent sessions of ``title`` the admission test
        accepts — the server's nominal capacity for that title."""
        rate = self.required_rate(title) * as_rational(self.admission_margin)
        if rate <= 0:
            raise ResourceError(f"{title!r} declares a zero data rate")
        return int(Rational(self.bandwidth) / rate)
