"""Video-on-demand server simulation.

§1.1's motivating application: "new multimedia applications such as
video on-demand services and virtual environments stand to benefit from
access to large databases of time-based material." This module simulates
the serving side: a fixed outbound bandwidth shared by concurrent client
sessions, utilization-based admission control, and per-client playback
reports.

The model is deliberately simple and exact: admitted clients share the
server's bandwidth equally (processor-sharing), so each client sees
``bandwidth / n`` while ``n`` sessions are active. A session underruns
when its share cannot sustain its stream's required rate — the capacity
crossover the benchmark sweeps.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.interpretation import Interpretation
from repro.core.rational import Rational, as_rational
from repro.engine.player import (
    AdaptationPolicy,
    CostModel,
    PlaybackReport,
    Player,
    RetryPolicy,
)
from repro.errors import (
    CheckpointError,
    DurabilityError,
    EngineError,
    MediaModelError,
    ResourceError,
    SimulatedCrash,
)
from repro.faults.crash import NULL_CRASH, CrashInjector
from repro.faults.plan import FaultPlan
from repro.obs.events import Severity
from repro.obs.instrument import NULL_OBS, Observability
from repro.obs.profile import profile_stages
from repro.obs.slo import SloVerdict, worst_verdicts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.derivations import DerivationCache

#: Checkpoint payload format version; bump on incompatible changes.
CHECKPOINT_VERSION = 1


@dataclass
class Session:
    """One admitted client session.

    ``degraded`` marks a session the server had to re-admit in fallback
    mode (base quality, unbounded skip tolerance) after its first
    playback aborted on storage faults. ``resumed`` marks a session
    served by a server restored from a crash checkpoint — the client
    was handed off across a failover, which counts as degraded service
    even when the replay itself was clean.
    """

    client: str
    title: str
    report: PlaybackReport
    degraded: bool = False
    resumed: bool = False


@dataclass
class ServerReport:
    """Outcome of serving a batch of concurrent requests.

    Sessions fall into disjoint quality tiers: *clean* (no underruns,
    no fault damage), *underrun* (late but intact), *degraded* (glitches,
    skipped elements or reduced delivered quality — whether from in-band
    adaptation or server-side failover). ``failed`` lists admitted
    sessions the server could not complete even in fallback mode.
    ``recovered`` counts sessions that finished *before* a crash and
    whose results were carried over from the checkpoint rather than
    re-served.
    """

    admitted: list[Session]
    rejected: list[tuple[str, str]]
    bandwidth: int
    per_client_bandwidth: int
    failed: list[tuple[str, str, str]] = field(default_factory=list)
    recovered: int = 0

    @property
    def admitted_count(self) -> int:
        return len(self.admitted)

    @staticmethod
    def _is_degraded(session: Session) -> bool:
        report = session.report
        return (session.degraded or session.resumed
                or report.glitches > 0
                or report.skipped_elements > 0
                or report.delivered_quality < 1)

    def clean_sessions(self) -> int:
        return sum(
            1 for s in self.admitted
            if s.report.underruns == 0 and not self._is_degraded(s)
        )

    def underrun_sessions(self) -> int:
        return sum(1 for s in self.admitted if s.report.underruns > 0)

    def degraded_sessions(self) -> int:
        return sum(1 for s in self.admitted if self._is_degraded(s))

    def failed_sessions(self) -> int:
        return len(self.failed)

    def mean_delivered_quality(self) -> float:
        """Mean delivered quality over admitted sessions.

        A batch with nobody admitted delivered nothing: 0.0, not a
        vacuous 1.0 (and never an exception) — capacity sweeps divide
        by this without special-casing the overloaded end.
        """
        if not self.admitted:
            return 0.0
        total = sum(
            float(s.report.delivered_quality) for s in self.admitted
        )
        return total / len(self.admitted)


@dataclass(frozen=True)
class ServerHealth:
    """Point-in-time serving health, aggregated over every ``serve``.

    ``status`` is ``"ok"``, ``"degraded"`` (underruns, degraded or
    rejected sessions, or a violated SLO) or ``"critical"`` (failed
    sessions or an SLO burning past its critical rate). ``slo`` holds
    the worst verdict per objective across all sessions;
    ``recent_critical`` is the tail of ERROR-and-above flight-recorder
    events, newest last.
    """

    status: str
    sessions: int
    clean: int
    underrun: int
    degraded: int
    failed: int
    rejected: int
    slo: tuple[SloVerdict, ...]
    cache_hit_ratios: dict[str, float]
    dominant_stage: str | None
    recent_critical: tuple[dict, ...]

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def export(self) -> dict:
        return {
            "status": self.status,
            "sessions": self.sessions,
            "clean": self.clean,
            "underrun": self.underrun,
            "degraded": self.degraded,
            "failed": self.failed,
            "rejected": self.rejected,
            "slo": [v.export() for v in self.slo],
            "cache_hit_ratios": {
                name: self.cache_hit_ratios[name]
                for name in sorted(self.cache_hit_ratios)
            },
            "dominant_stage": self.dominant_stage,
            "recent_critical": list(self.recent_critical),
        }

    def summary(self) -> str:
        lines = [
            f"status: {self.status}",
            f"sessions: {self.sessions} ({self.clean} clean, "
            f"{self.underrun} underrun, {self.degraded} degraded, "
            f"{self.failed} failed, {self.rejected} rejected)",
        ]
        for verdict in self.slo:
            lines.append(f"slo {verdict.summary()}")
        for name in sorted(self.cache_hit_ratios):
            lines.append(
                f"cache {name}: hit ratio {self.cache_hit_ratios[name]:.1%}"
            )
        if self.dominant_stage is not None:
            lines.append(f"dominant stage: {self.dominant_stage}")
        for event in self.recent_critical:
            lines.append(
                f"event [{event['severity']}] {event['component']} "
                f"{event['name']} at={event['at']}"
            )
        return "\n".join(lines)


class VodServer:
    """Serves cataloged titles under a shared bandwidth budget."""

    def __init__(self, bandwidth: int, prefetch_depth: int = 8,
                 admission_margin: float = 1.0,
                 derivation_cache: "DerivationCache | None" = None,
                 obs: Observability | None = None,
                 plan_check: str = "check",
                 crash: CrashInjector | None = None):
        """``bandwidth`` is outbound bytes/second; ``admission_margin``
        scales the admission test (1.2 keeps 20% headroom).
        ``derivation_cache`` is handed to every session's player so
        derived components expand once per server, not once per
        session. ``obs`` attaches an observability sink, shared with
        every session's player, so one registry captures the whole
        serving run.

        ``plan_check`` gates :meth:`publish` behind the static graph
        checker (same policies as :class:`Player`): the default
        ``"check"`` rejects structurally broken titles — placement rows
        beyond the BLOB, cycles — with
        :class:`~repro.errors.PlanRejectedError` before they can ever
        be admitted; ``"strict"`` also rejects statically infeasible
        ones; ``"off"`` publishes anything.

        ``crash`` is a :class:`~repro.faults.crash.CrashInjector` for
        the crash matrix: the server announces a crash point before
        each session and inside checkpoint writes, so the harness can
        kill it at every step of a serve."""
        if bandwidth <= 0:
            raise EngineError("bandwidth must be positive")
        if admission_margin < 1.0:
            raise EngineError("admission margin must be >= 1.0")
        from repro.analysis.graph import PLAN_POLICIES

        if plan_check not in PLAN_POLICIES:
            raise EngineError(
                f"plan_check must be one of {PLAN_POLICIES}, "
                f"got {plan_check!r}"
            )
        self.bandwidth = bandwidth
        self.prefetch_depth = prefetch_depth
        self.admission_margin = admission_margin
        self.derivation_cache = derivation_cache
        self.obs = NULL_OBS if obs is None else obs
        self.plan_check = plan_check
        self.crash = crash or NULL_CRASH
        self._titles: dict[str, Interpretation] = {}
        self._reports: list[ServerReport] = []
        # Progress of the serve batch currently running (feeds mid-serve
        # checkpoints) and the batch a restored server should resume.
        self._batch_progress: dict | None = None
        self._pending_batch: dict | None = None
        self.restored_cache_manifest: dict | None = None

    # -- catalog ---------------------------------------------------------------

    def publish(self, title: str, interpretation: Interpretation) -> None:
        """Add a title to the catalog after static verification.

        Under the server's ``plan_check`` policy the graph checker runs
        over the interpretation before it is accepted; a blocked title
        raises :class:`~repro.errors.PlanRejectedError` and is not
        published, so admission and serving never see it.
        """
        if title in self._titles:
            raise EngineError(f"title {title!r} already published")
        if self.plan_check != "off":
            from repro.analysis.graph import blocking_diagnostics
            from repro.errors import PlanRejectedError

            report = self._check_interpretation(interpretation)
            blocking = blocking_diagnostics(report, self.plan_check)
            if blocking:
                self.obs.metrics.counter("vod.publish.rejections").inc()
                self.obs.events.record(
                    Severity.ERROR, "vod.server", "publish.rejected",
                    title=title, findings=len(blocking),
                )
                raise PlanRejectedError(
                    f"title {title!r} rejected by static verification: "
                    + "; ".join(str(d) for d in blocking),
                    diagnostics=tuple(blocking),
                )
        interpretation.validate()
        self._titles[title] = interpretation

    def _check_interpretation(self, interpretation: Interpretation):
        from repro.analysis.graph import GraphChecker

        per_client = self.bandwidth  # best case: a lone session
        return GraphChecker(
            cost_model=CostModel(bandwidth=per_client),
        ).check_interpretation(interpretation)

    def verify_title(self, title: str):
        """The static checker's full report for a published title."""
        try:
            interpretation = self._titles[title]
        except KeyError:
            raise EngineError(f"unknown title {title!r}") from None
        return self._check_interpretation(interpretation)

    def titles(self) -> list[str]:
        return sorted(self._titles)

    def prefetch(self, title: str) -> int:
        """Warm the storage path beneath ``title``; returns bytes pulled.

        Materializes each of the title's sequences once, pulling every
        referenced page up through the BLOB. Over a buffer-pool-backed
        page store this loads the pool before the first session
        arrives, so cold-start page reads land on the prefetch instead
        of on a paying client; the replay benchmark measures the
        difference.
        """
        try:
            interpretation = self._titles[title]
        except KeyError:
            raise EngineError(f"unknown title {title!r}") from None
        warmed = 0
        with self.obs.tracer.span("vod.prefetch", title=title) as span:
            for name in interpretation.names():
                stream = interpretation.materialize(name)
                warmed += stream.total_size()
            span.set(bytes=warmed)
        metrics = self.obs.metrics
        metrics.counter("vod.prefetches").inc()
        metrics.counter("vod.prefetch_bytes").inc(warmed)
        return warmed

    def required_rate(self, title: str) -> Rational:
        """Mean data rate the title needs (from its descriptors)."""
        try:
            interpretation = self._titles[title]
        except KeyError:
            raise EngineError(f"unknown title {title!r}") from None
        total = Rational(0)
        for name in interpretation.names():
            descriptor = interpretation.sequence(name).media_descriptor
            rate = descriptor.get("average_data_rate")
            if rate is None:
                raise ResourceError(
                    f"{title!r}/{name} lacks average_data_rate; "
                    "record it with the Recorder"
                )
            total += as_rational(rate)
        return total

    # -- admission + serving ------------------------------------------------------

    def admit(self, requests: list[tuple[str, str]]) -> tuple[
            list[tuple[str, str]], list[tuple[str, str]]]:
        """Greedy admission: accept requests while aggregate required
        rate (with margin) fits the bandwidth. Returns (admitted,
        rejected)."""
        admitted: list[tuple[str, str]] = []
        rejected: list[tuple[str, str]] = []
        load = Rational(0)
        budget = Rational(self.bandwidth)
        for client, title in requests:
            rate = self.required_rate(title)
            projected = (load + rate) * as_rational(self.admission_margin)
            if projected <= budget:
                admitted.append((client, title))
                load += rate
            else:
                rejected.append((client, title))
        return admitted, rejected

    def serve(self, requests: list[tuple[str, str]],
              enforce_admission: bool = True,
              fault_plan: FaultPlan | None = None,
              retry_policy: RetryPolicy | None = None,
              adaptation: AdaptationPolicy | None = None,
              checkpoint_to: str | None = None,
              checkpoint_fs=None) -> ServerReport:
        """Simulate serving ``requests`` concurrently.

        With ``enforce_admission`` the admission test runs first;
        without it every request is served (the overload experiment).
        Each admitted session plays its title against an equal share of
        the server bandwidth.

        ``fault_plan`` subjects every session to the same storage
        faults (they share the disk). A session whose playback aborts —
        faults beyond its retry policy's tolerance — is not dropped:
        the server re-admits it in fallback mode (base-layer quality if
        an adaptation policy exists, unbounded skip tolerance) and
        accounts it as *degraded*. Only a session that fails even the
        fallback lands in ``ServerReport.failed``; ``serve`` itself
        never propagates a storage fault (an injected
        :class:`~repro.errors.SimulatedCrash` always propagates — it
        models the whole process dying).

        With ``checkpoint_to`` the server atomically rewrites a
        checkpoint file after *every* session, so a crash mid-serve
        loses at most the in-flight session: :meth:`restore` +
        :meth:`resume` pick the batch up from the last completed one.
        """
        if not requests:
            raise EngineError("serve needs at least one request")
        if enforce_admission:
            admitted, rejected = self.admit(requests)
        else:
            admitted, rejected = list(requests), []
        metrics = self.obs.metrics
        metrics.counter("vod.requests").inc(len(requests))
        metrics.counter("vod.admitted").inc(len(admitted))
        metrics.counter("vod.rejected").inc(len(rejected))
        sessions: list[Session] = []
        failed: list[tuple[str, str, str]] = []
        if admitted:
            share = max(1, self.bandwidth // len(admitted))
            player = Player(
                CostModel(bandwidth=share),
                prefetch_depth=self.prefetch_depth,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                adaptation=adaptation,
                derivation_cache=self.derivation_cache,
                obs=self.obs,
            )
            for position, (client, title) in enumerate(admitted):
                self.crash.point("vod.serve.session")
                session = self._serve_one(
                    player, client, title, share, fault_plan,
                    retry_policy, adaptation, failed,
                )
                if session is not None:
                    sessions.append(session)
                if checkpoint_to is not None:
                    self._batch_progress = {
                        "requests": [list(r) for r in admitted],
                        "rejected": [list(r) for r in rejected],
                        "completed": [
                            self._session_summary(s) for s in sessions
                        ],
                        "failed": [list(f) for f in failed],
                        "remaining": [
                            list(r) for r in admitted[position + 1:]
                        ],
                        "share": share,
                    }
                    self.checkpoint_to(checkpoint_to, fs=checkpoint_fs)
        else:
            share = 0
        self._batch_progress = None
        report = ServerReport(
            admitted=sessions,
            rejected=rejected,
            bandwidth=self.bandwidth,
            per_client_bandwidth=share,
            failed=failed,
        )
        self._reports.append(report)
        return report

    def _serve_one(self, player: Player, client: str, title: str,
                   share: int, fault_plan: FaultPlan | None,
                   retry_policy: RetryPolicy | None,
                   adaptation: AdaptationPolicy | None,
                   failed: list[tuple[str, str, str]],
                   resumed: bool = False) -> Session | None:
        """Play one admitted session, falling back on storage faults.

        A :class:`~repro.errors.SimulatedCrash` is never treated as a
        storage fault — it is the machine dying, and must propagate to
        the crash harness."""
        with self.obs.tracer.span(
            "vod.session", client=client, title=title,
        ) as span:
            try:
                report = player.play(self._titles[title])
            except SimulatedCrash:
                raise
            except MediaModelError:
                self.obs.metrics.counter("vod.fallbacks").inc()
                span.set(outcome="fallback")
                self.obs.events.record(
                    Severity.WARNING, "vod.server",
                    "session.fallback", client=client, title=title,
                )
                session = self._serve_degraded(
                    client, title, share, fault_plan, retry_policy,
                    adaptation, failed,
                )
                if session is not None:
                    session.resumed = resumed
                return session
            span.set(outcome="served", underruns=report.underruns)
            return Session(client, title, report, resumed=resumed)

    def _serve_degraded(self, client: str, title: str, share: int,
                        fault_plan: FaultPlan | None,
                        retry_policy: RetryPolicy | None,
                        adaptation: AdaptationPolicy | None,
                        failed: list[tuple[str, str, str]]) -> Session | None:
        """Replay a faulted session in fallback mode.

        The fallback tolerates any number of skips and, when the title
        is scalable, pins quality to the base layer so each element
        needs the fewest bytes (and the fewest pages — shrinking the
        fault surface). Records the session in ``failed`` and returns
        None when even that cannot complete.
        """
        base = retry_policy or RetryPolicy()
        lenient = base.replace(abort_skip_fraction=None)
        fallback_adaptation = adaptation
        if adaptation is not None:
            fallback_adaptation = adaptation.replace(
                max_level=adaptation.min_level
            )
        fallback = Player(
            CostModel(bandwidth=share),
            prefetch_depth=self.prefetch_depth,
            fault_plan=fault_plan,
            retry_policy=lenient,
            adaptation=fallback_adaptation,
            derivation_cache=self.derivation_cache,
            obs=self.obs,
        )
        try:
            report = fallback.play(self._titles[title])
        except SimulatedCrash:
            raise
        except MediaModelError as exc:
            failed.append((client, title, str(exc)))
            self.obs.metrics.counter("vod.failed").inc()
            self.obs.events.record(
                Severity.CRITICAL, "vod.server", "session.failed",
                client=client, title=title, reason=str(exc),
            )
            return None
        return Session(client, title, report, degraded=True)

    # -- checkpoint / restore -----------------------------------------------------

    @staticmethod
    def _session_summary(session: Session) -> dict:
        return {
            "client": session.client,
            "title": session.title,
            "degraded": session.degraded,
            "resumed": session.resumed,
            "underruns": session.report.underruns,
            "glitches": session.report.glitches,
            "skipped_elements": session.report.skipped_elements,
            "delivered_quality": float(session.report.delivered_quality),
        }

    def checkpoint(self) -> dict:
        """JSON-safe snapshot of everything a failover server needs.

        Catalog titles travel as serialized RMF containers (base64), so
        the checkpoint is self-contained; mid-serve progress (completed
        session summaries, remaining requests, bandwidth share) rides
        along when a serve is running with ``checkpoint_to``; the
        derivation cache contributes its manifest. Deterministic for a
        given server state."""
        from repro.storage.container import serialize_container

        titles = {
            title: base64.b64encode(
                serialize_container(interpretation)
            ).decode("ascii")
            for title, interpretation in sorted(self._titles.items())
        }
        reports = self._reports
        return {
            "version": CHECKPOINT_VERSION,
            "config": {
                "bandwidth": self.bandwidth,
                "prefetch_depth": self.prefetch_depth,
                "admission_margin": self.admission_margin,
                "plan_check": self.plan_check,
            },
            "titles": titles,
            "batch": self._batch_progress,
            "aggregate": {
                "serves": len(reports),
                "sessions": sum(r.admitted_count for r in reports),
                "failed": sum(r.failed_sessions() for r in reports),
                "rejected": sum(len(r.rejected) for r in reports),
                "recovered": sum(r.recovered for r in reports),
            },
            "derivation_cache": (
                None if self.derivation_cache is None
                else self.derivation_cache.manifest()
            ),
        }

    def checkpoint_to(self, path: str, fs=None) -> int:
        """Atomically write :meth:`checkpoint` to ``path``; returns bytes.

        Uses the shadow-write + fsync + rename protocol, so a crash
        during the write leaves the previous checkpoint intact."""
        from repro.durability.atomic import atomic_write_bytes

        payload = json.dumps(
            self.checkpoint(), sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        self.crash.point("vod.checkpoint.write")
        atomic_write_bytes(str(path), payload, fs=fs, crash=self.crash)
        self.obs.metrics.counter("vod.checkpoints").inc()
        self.obs.events.record(
            Severity.DEBUG, "vod.server", "checkpoint.written",
            bytes=len(payload),
        )
        return len(payload)

    @classmethod
    def restore(cls, source: str | dict, fs=None,
                derivation_cache: "DerivationCache | None" = None,
                obs: Observability | None = None,
                crash: CrashInjector | None = None) -> "VodServer":
        """Rebuild a server from a checkpoint file (or payload dict).

        The catalog is republished through the same static verification
        as the original ``publish`` calls; a checkpoint taken mid-serve
        leaves the interrupted batch pending — call :meth:`resume` to
        finish it. Structural damage raises
        :class:`~repro.errors.CheckpointError`."""
        from repro.durability.atomic import read_bytes
        from repro.storage.container import deserialize_container

        if isinstance(source, dict):
            payload = source
        else:
            try:
                raw = read_bytes(str(source), fs=fs)
            except (OSError, DurabilityError) as exc:
                raise CheckpointError(
                    f"cannot read checkpoint {source}: {exc}"
                ) from exc
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"corrupt checkpoint {source}: {exc}"
                ) from exc
        try:
            version = payload["version"]
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version!r}"
                )
            config = payload["config"]
            server = cls(
                bandwidth=config["bandwidth"],
                prefetch_depth=config["prefetch_depth"],
                admission_margin=config["admission_margin"],
                derivation_cache=derivation_cache,
                obs=obs,
                plan_check=config["plan_check"],
                crash=crash,
            )
            for title, encoded in sorted(payload["titles"].items()):
                server.publish(
                    title, deserialize_container(base64.b64decode(encoded))
                )
            server._pending_batch = payload.get("batch")
            server.restored_cache_manifest = payload.get("derivation_cache")
        except (CheckpointError, MediaModelError):
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(
                f"malformed checkpoint payload: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        server.obs.metrics.counter("vod.restores").inc()
        server.obs.events.record(
            Severity.INFO, "vod.server", "checkpoint.restored",
            titles=len(server._titles),
            pending=(0 if server._pending_batch is None
                     else len(server._pending_batch.get("remaining", []))),
        )
        return server

    def resume(self, fault_plan: FaultPlan | None = None,
               retry_policy: RetryPolicy | None = None,
               adaptation: AdaptationPolicy | None = None) -> ServerReport:
        """Finish the serve batch interrupted by the crash.

        Sessions completed before the crash are *not* re-served: they
        arrive as ``ServerReport.recovered``. The remaining requests
        play at the original bandwidth share, each marked
        ``Session.resumed`` — which the report accounts as degraded
        service (the failover itself is a quality event), feeding
        :meth:`health` and its SLO verdicts."""
        if self._pending_batch is None:
            raise CheckpointError(
                "nothing to resume: this server was not restored from a "
                "mid-serve checkpoint"
            )
        batch = self._pending_batch
        self._pending_batch = None
        try:
            remaining = [(c, t) for c, t in batch["remaining"]]
            rejected = [(c, t) for c, t in batch["rejected"]]
            failed = [(c, t, r) for c, t, r in batch["failed"]]
            share = int(batch["share"])
            recovered = len(batch["completed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint batch: {type(exc).__name__}: {exc}"
            ) from exc
        missing = sorted(
            {title for _, title in remaining} - set(self._titles)
        )
        if missing:
            raise CheckpointError(
                f"checkpoint batch references unpublished titles: "
                f"{missing}"
            )
        self.obs.metrics.counter("vod.resumes").inc()
        self.obs.events.record(
            Severity.INFO, "vod.server", "serve.resumed",
            remaining=len(remaining), recovered=recovered,
        )
        sessions: list[Session] = []
        if remaining:
            share = max(1, share)
            player = Player(
                CostModel(bandwidth=share),
                prefetch_depth=self.prefetch_depth,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                adaptation=adaptation,
                derivation_cache=self.derivation_cache,
                obs=self.obs,
            )
            for client, title in remaining:
                self.crash.point("vod.serve.session")
                session = self._serve_one(
                    player, client, title, share, fault_plan,
                    retry_policy, adaptation, failed, resumed=True,
                )
                if session is not None:
                    sessions.append(session)
        report = ServerReport(
            admitted=sessions,
            rejected=rejected,
            bandwidth=self.bandwidth,
            per_client_bandwidth=share,
            failed=failed,
            recovered=recovered,
        )
        self._reports.append(report)
        return report

    # -- health ------------------------------------------------------------------

    def health(self) -> ServerHealth:
        """The server's aggregate health across every ``serve`` so far.

        Folds all session outcomes, the worst SLO verdict per
        objective, cache hit ratios (derivation cache directly, buffer
        pool via its exported gauge), the pipeline's dominant stage and
        the tail of ERROR-and-above flight-recorder events into one
        :class:`ServerHealth`. A pure function of the recorded state —
        same-seed runs report identical health.
        """
        reports = self._reports
        sessions = sum(r.admitted_count for r in reports)
        clean = sum(r.clean_sessions() for r in reports)
        underrun = sum(r.underrun_sessions() for r in reports)
        degraded = sum(r.degraded_sessions() for r in reports)
        failed = sum(r.failed_sessions() for r in reports)
        rejected = sum(len(r.rejected) for r in reports)
        slo = tuple(worst_verdicts(
            s.report.slo for r in reports for s in r.admitted
        ))
        ratios: dict[str, float] = {}
        if self.derivation_cache is not None:
            ratios["derivation"] = self.derivation_cache.hit_ratio
        if self.obs.enabled and "cache.pool.hit_ratio" in self.obs.metrics:
            pool_ratio = self.obs.metrics.get("cache.pool.hit_ratio").value()
            if pool_ratio is not None:
                ratios["pool"] = pool_ratio
        recent = tuple(
            event.export()
            for event in self.obs.events.recent(
                10, min_severity=Severity.ERROR
            )
        )
        if failed or any(
                v.severity >= Severity.CRITICAL for v in slo):
            status = "critical"
        elif (degraded or underrun or rejected
                or any(not v.ok for v in slo)):
            status = "degraded"
        else:
            status = "ok"
        return ServerHealth(
            status=status,
            sessions=sessions,
            clean=clean,
            underrun=underrun,
            degraded=degraded,
            failed=failed,
            rejected=rejected,
            slo=slo,
            cache_hit_ratios=ratios,
            dominant_stage=profile_stages(self.obs).dominant_stage(),
            recent_critical=recent,
        )

    def capacity(self, title: str) -> int:
        """How many concurrent sessions of ``title`` the admission test
        accepts — the server's nominal capacity for that title."""
        rate = self.required_rate(title) * as_rational(self.admission_margin)
        if rate <= 0:
            raise ResourceError(f"{title!r} declares a zero data rate")
        return int(Rational(self.bandwidth) / rate)
