"""Heap-scheduled discrete-event kernel for concurrent serving.

The seed ``VodServer.serve`` stepped each session to completion before
touching the next: one Python loop per session, one private clock each,
and no way to express staggered arrivals or bandwidth that shifts as
sessions come and go. The streaming-server line of work ("Media Objects
in Time") schedules media as *timed events* instead; this module is
that kernel:

* :class:`SimulatedClock` — one shared, monotonic, exact-rational
  clock for a whole serving run (no wall time anywhere);
* :class:`EventLoop` — a binary-heap scheduler: events fire in
  ``(time, insertion order)`` order, callbacks may schedule more
  events, and a :class:`~repro.errors.SimulatedCrash` raised inside a
  callback propagates (the process died mid-event);
* :class:`BandwidthLedger` — per-event bandwidth accounting:
  processor-sharing over the sessions *currently* active, expressed as
  a factor over the nominal equal share so cost models stay unchanged;
* :class:`SessionMachine` — one client session as an event-emitting
  state machine (``PENDING → STREAMING → DONE/FAILED``), driving a
  player stepper one element per event, or a whole-session runner in
  one event when the schedule is uniform and the coarse granularity is
  provably equivalent.

Everything is deterministic: the heap tie-break is insertion order, the
clock is rational, and no event ever consults the machine it runs on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.core.rational import Rational, as_rational
from repro.errors import EngineError, MediaModelError, SimulatedCrash

__all__ = [
    "BandwidthLedger",
    "EventLoop",
    "SessionMachine",
    "SimulatedClock",
]


class SimulatedClock:
    """A shared, forward-only simulated clock (exact rational seconds)."""

    def __init__(self, start=0):
        self._now = as_rational(start)

    def now(self) -> Rational:
        return self._now

    def advance_to(self, at) -> Rational:
        """Move the clock forward to ``at``; never backwards."""
        at = as_rational(at)
        if at < self._now:
            raise EngineError(
                f"clock cannot run backwards: at {self._now}, asked "
                f"for {at}"
            )
        self._now = at
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now})"


class EventLoop:
    """A deterministic heap-scheduled event loop on a simulated clock.

    Events are ``(time, seq, callback, args)`` heap entries; ``seq`` is
    the global insertion counter, so two events at the same instant fire
    in the order they were scheduled — the property the serving path
    relies on for reproducibility (and for exact equivalence with the
    seed stepping loop when every session arrives at time zero).
    """

    def __init__(self, clock: SimulatedClock | None = None):
        self.clock = clock if clock is not None else SimulatedClock()
        self._heap: list[tuple[Rational, int, Callable, tuple]] = []
        self._seq = 0
        self.events_processed = 0
        self.peak_pending = 0

    @property
    def pending(self) -> int:
        return len(self._heap)

    def at(self, when, callback: Callable, *args) -> int:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        when = as_rational(when)
        if when < self.clock.now():
            raise EngineError(
                f"cannot schedule into the past: now {self.clock.now()}, "
                f"asked for {when}"
            )
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (when, seq, callback, args))
        if len(self._heap) > self.peak_pending:
            self.peak_pending = len(self._heap)
        return seq

    def after(self, delay, callback: Callable, *args) -> int:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        return self.at(self.clock.now() + as_rational(delay), callback, *args)

    def run(self, until=None) -> int:
        """Pop and fire events until the heap drains (or ``until``).

        Returns the number of events processed by this call. Events at
        exactly ``until`` still fire; later ones stay pending. A
        :class:`~repro.errors.SimulatedCrash` from a callback
        propagates immediately — the simulated process died, and the
        remaining heap is the work it lost.
        """
        limit = None if until is None else as_rational(until)
        fired = 0
        while self._heap:
            when, _seq, callback, args = self._heap[0]
            if limit is not None and when > limit:
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback(*args)
            fired += 1
            self.events_processed += 1
        return fired

    def stats(self) -> dict[str, Any]:
        """Deterministic counters for censuses and benchmarks."""
        return {
            "events_processed": self.events_processed,
            "pending": self.pending,
            "peak_pending": self.peak_pending,
            "now": self.clock.now(),
        }

    def __repr__(self) -> str:
        return (
            f"EventLoop(t={self.clock.now()}, pending={self.pending}, "
            f"processed={self.events_processed})"
        )


class BandwidthLedger:
    """Processor-sharing bandwidth accounting over *active* sessions.

    The serving path prices each session's reads with a cost model whose
    bandwidth is the nominal equal share (``total / planned`` — the
    seed's conservative contract). The ledger turns that into per-event
    accounting: while only ``active`` of the ``planned`` sessions are
    concurrently streaming, each active one really sees
    ``total / active``, i.e. the nominal share scaled by
    ``planned / active`` ≥ 1. Steppers ask :meth:`factor` before every
    element read, so a session that outlives its neighbours speeds up
    exactly when they leave.
    """

    def __init__(self, planned: int):
        if planned < 1:
            raise EngineError("ledger needs at least one planned session")
        self.planned = planned
        self.active = 0
        self.peak_active = 0

    def enter(self) -> None:
        self.active += 1
        if self.active > self.peak_active:
            self.peak_active = self.active

    def leave(self) -> None:
        if self.active <= 0:
            raise EngineError("ledger underflow: leave() without enter()")
        self.active -= 1

    def factor(self) -> Rational:
        """Bandwidth multiplier over the nominal equal share, >= 1."""
        return Rational(self.planned, max(1, self.active))

    def __repr__(self) -> str:
        return (
            f"BandwidthLedger({self.active}/{self.planned} active, "
            f"peak {self.peak_active})"
        )


#: Session machine states.
PENDING = "pending"
STREAMING = "streaming"
DONE = "done"
FAILED = "failed"


class SessionMachine:
    """One session as an event-emitting state machine on the loop.

    Two drive modes, chosen by the caller:

    * ``runner`` — a zero-argument callable executing the whole session
      (the coarse granularity). The machine fires it in a single event
      at the session's arrival time. With every arrival at the same
      instant this reproduces the seed stepping loop *exactly* —
      events pop in insertion order, so sessions run serially in
      admitted order and every observability record lands in the seed's
      order.
    * ``stepper_factory`` — a zero-argument callable returning a player
      stepper (a generator yielding per-element simulated durations and
      returning the session's report). The machine consumes one element
      per event, re-scheduling itself at ``now + dt``; this is the fine
      granularity under which sessions genuinely interleave and the
      :class:`BandwidthLedger` can re-price bandwidth per event.

    ``on_error`` (fine granularity only) is called with a
    :class:`~repro.errors.MediaModelError` the stepper raised; it may
    return a replacement stepper (the server's degraded-fallback
    replay) to restart with, or None to fail the session. A
    :class:`~repro.errors.SimulatedCrash` always propagates — that is
    the machine dying, not a storage fault.
    """

    def __init__(self, key, loop: EventLoop, *,
                 runner: Callable[[], Any] | None = None,
                 stepper_factory: Callable[[], Generator] | None = None,
                 ledger: BandwidthLedger | None = None,
                 on_start: Callable[["SessionMachine"], None] | None = None,
                 on_complete: Callable[["SessionMachine", Any], None] | None = None,
                 on_error: Callable[["SessionMachine", MediaModelError],
                                    Generator | None] | None = None):
        if (runner is None) == (stepper_factory is None):
            raise EngineError(
                "SessionMachine needs exactly one of runner= or "
                "stepper_factory="
            )
        self.key = key
        self.loop = loop
        self.state = PENDING
        self.result: Any = None
        self.started_at: Rational | None = None
        self.finished_at: Rational | None = None
        self.restarts = 0
        self._runner = runner
        self._scheduled = False
        self._stepper_factory = stepper_factory
        self._stepper: Generator | None = None
        self._ledger = ledger
        self._on_start = on_start
        self._on_complete = on_complete
        self._on_error = on_error

    # -- scheduling ------------------------------------------------------------

    def start(self, at) -> None:
        """Schedule the session's first event at its arrival time."""
        if self._scheduled:
            raise EngineError(f"session {self.key!r} already started")
        self._scheduled = True
        self.loop.at(at, self._begin)

    def _begin(self) -> None:
        self.state = STREAMING
        self.started_at = self.loop.clock.now()
        if self._ledger is not None:
            self._ledger.enter()
        if self._on_start is not None:
            self._on_start(self)
        if self._runner is not None:
            try:
                result = self._runner()
            except SimulatedCrash:
                raise
            self._finish(result)
            return
        self._stepper = self._stepper_factory()
        # Schedule the first element rather than stepping inline, so
        # every same-instant arrival enters the ledger before any of
        # them prices a read.
        self.loop.after(0, self._advance)

    def _advance(self) -> None:
        try:
            dt = next(self._stepper)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except SimulatedCrash:
            raise
        except MediaModelError as exc:
            self._handle_error(exc)
            return
        self.loop.after(dt, self._advance)

    def _handle_error(self, exc: MediaModelError) -> None:
        replacement = None
        if self._on_error is not None:
            replacement = self._on_error(self, exc)
        if replacement is None:
            self._fail()
            return
        self.restarts += 1
        self._stepper = replacement
        self.loop.after(0, self._advance)

    def _finish(self, result: Any) -> None:
        self.state = DONE if result is not None else FAILED
        self.result = result
        self.finished_at = self.loop.clock.now()
        if self._ledger is not None:
            self._ledger.leave()
        if self._on_complete is not None:
            self._on_complete(self, result)

    def _fail(self) -> None:
        self._finish(None)

    def __repr__(self) -> str:
        return f"SessionMachine({self.key!r}, {self.state})"
