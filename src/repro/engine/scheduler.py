"""Deadline scheduling of presentation events.

Each media element must be presented at its start time — a soft deadline:
"divergences from element production and consumption deadlines are
certainly undesirable, but can be tolerated" (§5). The scheduler
simulates earliest-deadline-first dispatch of preparation work (read +
decode) on a single processor and reports per-event lateness, from which
jitter statistics follow.

All times are rational seconds; the simulation is exact and
deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.rational import Rational, as_rational
from repro.errors import SchedulingError


@dataclass(frozen=True, slots=True)
class PresentationEvent:
    """One element's presentation: preparation work due by a deadline.

    ``release`` is when the work *could* start (data available);
    ``cost`` is processor seconds of read+decode; ``deadline`` is the
    element's presentation time.
    """

    label: str
    release: Rational
    cost: Rational
    deadline: Rational

    def __post_init__(self) -> None:
        release = as_rational(self.release)
        cost = as_rational(self.cost)
        deadline = as_rational(self.deadline)
        if cost < 0:
            raise SchedulingError(f"{self.label}: negative cost")
        if release < 0:
            raise SchedulingError(f"{self.label}: negative release time")
        object.__setattr__(self, "release", release)
        object.__setattr__(self, "cost", cost)
        object.__setattr__(self, "deadline", deadline)


@dataclass
class ScheduleReport:
    """Outcome of scheduling a task set.

    ``lateness`` maps label -> completion - deadline (negative = early).
    ``jitter`` is the spread (max - min) of positive lateness clamped at
    zero — the variation a presentation buffer must absorb.
    """

    completion: dict[str, Rational]
    lateness: dict[str, Rational]
    misses: list[str]
    makespan: Rational

    @property
    def max_lateness(self) -> Rational:
        return max(self.lateness.values(), default=Rational(0))

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    @property
    def jitter(self) -> Rational:
        """Spread of presentation error when late events display late."""
        errors = [max(v, Rational(0)) for v in self.lateness.values()]
        if not errors:
            return Rational(0)
        return max(errors) - min(errors)

    def on_time_fraction(self) -> float:
        if not self.lateness:
            return 1.0
        return 1.0 - len(self.misses) / len(self.lateness)


def schedule_events(events: list[PresentationEvent]) -> ScheduleReport:
    """Simulate single-processor EDF over ``events``.

    Work is non-preemptive per event (element decodes are atomic);
    among ready events the earliest deadline runs first.
    """
    labels = [e.label for e in events]
    if len(set(labels)) != len(labels):
        raise SchedulingError("event labels must be unique")
    pending = sorted(events, key=lambda e: (e.release, e.deadline, e.label))
    ready: list[tuple[Rational, str, PresentationEvent]] = []
    completion: dict[str, Rational] = {}
    time = Rational(0)
    index = 0
    while index < len(pending) or ready:
        while index < len(pending) and pending[index].release <= time:
            event = pending[index]
            heapq.heappush(ready, (event.deadline, event.label, event))
            index += 1
        if not ready:
            time = max(time, pending[index].release)
            continue
        _, _, event = heapq.heappop(ready)
        time = max(time, event.release) + event.cost
        completion[event.label] = time
    lateness = {
        e.label: completion[e.label] - e.deadline for e in events
    }
    misses = [label for label, late in lateness.items() if late > 0]
    return ScheduleReport(
        completion=completion,
        lateness=lateness,
        misses=sorted(misses),
        makespan=time,
    )


def utilization(events: list[PresentationEvent]) -> Rational:
    """Total cost over the span of deadlines — a feasibility indicator."""
    if not events:
        return Rational(0)
    total_cost = sum((e.cost for e in events), Rational(0))
    horizon = max(e.deadline for e in events)
    first = min(e.release for e in events)
    span = horizon - first
    if span <= 0:
        return Rational(10**9) if total_cost > 0 else Rational(0)
    return total_cost / span
