"""A sharded VOD fleet: N servers behind a deterministic router.

ROADMAP's scale goal (~10⁵–10⁶ concurrent sessions) does not fit one
``VodServer``'s admission budget. The fleet composes N shards — each a
full :class:`~repro.engine.vod.VodServer` on the event kernel — behind
a rendezvous-hashed router:

* **Placement** — :func:`place` maps every title to exactly one *live*
  shard by highest-random-weight (rendezvous) hashing over a keyed
  BLAKE2 digest. Deterministic across processes (no Python hash
  randomization), total (every title maps somewhere while any shard
  lives), and minimal: killing a shard only moves the titles it owned.
* **Catalog** — replicated: :meth:`Fleet.publish` installs a title on
  every shard, so any survivor can adopt a displaced batch. Sessions,
  not titles, are what sharding spreads.
* **Admission** — fleet-wide: requests route first, then run the
  per-shard greedy admission against the owning shard's budget, so one
  hot shard rejects without starving the others.
* **Failover** — a shard that dies mid-serve (an injected
  :class:`~repro.errors.SimulatedCrash`) is marked dead; its last
  durable checkpoint batch is adopted by a rendezvous-chosen survivor
  and finished with :meth:`~repro.engine.vod.VodServer.resume`, so
  every displaced session is accounted exactly once — recovered,
  resumed, or failed.
* **Health** — :meth:`Fleet.health` rolls per-shard
  :class:`~repro.engine.vod.ServerHealth` and the identity-normalized
  session outcomes (:meth:`~repro.engine.vod.ServerReport.outcomes`)
  into one :class:`FleetHealth`, with worst-per-objective SLO verdicts
  across every session the fleet ever served.

The fleet exposes the same ``publish`` / ``prefetch`` / ``serve`` /
``health`` verbs as a single server, so callers can swap one for the
other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING, Iterable

from repro.core.rational import Rational, as_rational
from repro.engine.vod import (
    ServeOptions,
    ServerHealth,
    ServerReport,
    Session,
    SessionRequest,
    VodServer,
    _UNSET,
    normalize_requests,
)
from repro.errors import CheckpointError, EngineError, SimulatedCrash
from repro.faults.crash import CrashInjector
from repro.obs.events import Severity
from repro.obs.instrument import NULL_OBS, Observability
from repro.obs.slo import SloVerdict, worst_verdicts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.derivations import DerivationCache
    from repro.obs.telemetry import Telemetry

__all__ = ["Fleet", "FleetHealth", "place"]


def place(title: str, shards: Iterable[str]) -> str:
    """Rendezvous placement: the live shard with the highest weight.

    Weight is an 8-byte keyed BLAKE2 digest of ``shard\\x00title`` — a
    pure function of the names, so placement is identical across
    processes and runs. Every title maps to exactly one shard while at
    least one lives; removing a shard reassigns only the titles that
    shard owned (the minimal-movement property the property suite
    checks). Digest ties break toward the lexically smallest shard
    name, so the choice is total even then.
    """
    best: str | None = None
    best_weight: int | None = None
    for shard in shards:
        digest = blake2b(
            f"{shard}\x00{title}".encode("utf-8"), digest_size=8,
        ).digest()
        weight = int.from_bytes(digest, "big")
        if (best_weight is None or weight > best_weight
                or (weight == best_weight and shard < best)):
            best, best_weight = shard, weight
    if best is None:
        raise EngineError("placement needs at least one live shard")
    return best


@dataclass(frozen=True)
class FleetHealth:
    """Fleet-wide health: per-shard rollup + normalized session census.

    The session counters are *identity-normalized*: every
    ``(client, title)`` identity the fleet ever admitted or failed
    contributes exactly one outcome, the worst observed across every
    report — so a session resumed on a survivor after a shard death
    (and therefore present in two shards' accounting) is counted once.
    """

    status: str
    shards: dict[str, ServerHealth]
    live: tuple[str, ...]
    dead: tuple[str, ...]
    sessions: int
    clean: int
    underrun: int
    degraded: int
    failed: int
    rejected: int
    recovered: int
    slo: tuple[SloVerdict, ...]
    #: Fleet-wide burn-rate alert exports (every shard's, in shard
    #: order) from the shared telemetry pipeline; empty without one.
    alerts: tuple[dict, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def firing_alerts(self) -> tuple[dict, ...]:
        return tuple(a for a in self.alerts if a["state"] == "firing")

    def export(self) -> dict:
        return {
            "status": self.status,
            "shards": {
                name: self.shards[name].export()
                for name in sorted(self.shards)
            },
            "live": list(self.live),
            "dead": list(self.dead),
            "sessions": self.sessions,
            "clean": self.clean,
            "underrun": self.underrun,
            "degraded": self.degraded,
            "failed": self.failed,
            "rejected": self.rejected,
            "recovered": self.recovered,
            "slo": [v.export() for v in self.slo],
            "alerts": list(self.alerts),
        }

    def summary(self) -> str:
        lines = [
            f"fleet: {self.status} "
            f"({len(self.live)} live, {len(self.dead)} dead)",
            f"sessions: {self.sessions} ({self.clean} clean, "
            f"{self.underrun} underrun, {self.degraded} degraded, "
            f"{self.failed} failed, {self.rejected} rejected, "
            f"{self.recovered} recovered)",
        ]
        for verdict in self.slo:
            lines.append(f"slo {verdict.summary()}")
        for alert in self.alerts:
            lines.append(
                f"alert {alert['name']} [{alert['state']}] "
                f"source={alert['source']}"
            )
        for name in sorted(self.shards):
            marker = "live" if name in self.live else "DEAD"
            lines.append(
                f"shard {name} [{marker}]: {self.shards[name].status}"
            )
        return "\n".join(lines)


class Fleet:
    """N ``VodServer`` shards behind a consistent router.

    ``bandwidth`` is *per shard* (each shard owns its own outbound
    link). ``derivation_cache`` is shared by every shard, so one
    shard's expansion warms the whole fleet. ``obs`` is split into
    per-shard namespaces via :meth:`Observability.scoped` — shard
    ``shard0``'s page reads land under ``shard0.blob.page.reads`` in
    the one shared registry — while fleet-level counters stay at
    ``fleet.*``.

    ``checkpoint_fs`` (a :class:`~repro.faults.disk.SimulatedMedium`)
    arms failover: every shard batch checkpoints after each session to
    ``<checkpoint_dir>/<shard>.ckpt``, and a shard crash mid-serve is
    absorbed — the batch resumes on a survivor instead of propagating.
    Without it, a :class:`~repro.errors.SimulatedCrash` propagates
    exactly as it does for a single server.

    ``crash`` optionally maps shard names to
    :class:`~repro.faults.crash.CrashInjector` instances, the handle
    the fault harness uses to kill a specific shard at a specific
    session boundary.
    """

    def __init__(self, bandwidth: int, shards: int = 3, *,
                 prefetch_depth: int = 8,
                 admission_margin: float = 1.0,
                 derivation_cache: "DerivationCache | None" = None,
                 obs: Observability | None = None,
                 plan_check: str = "check",
                 crash: dict[str, CrashInjector] | None = None,
                 checkpoint_fs=None,
                 checkpoint_dir: str = "/fleet",
                 telemetry: "Telemetry | None" = None):
        if shards < 1:
            raise EngineError("a fleet needs at least one shard")
        self.obs = NULL_OBS if obs is None else obs
        self.derivation_cache = derivation_cache
        self.checkpoint_fs = checkpoint_fs
        self.checkpoint_dir = checkpoint_dir.rstrip("/")
        # One pipeline for the whole fleet: every shard scrapes into
        # the same store under its own source name, so cross-shard
        # rollups and the dashboard's heat row come from one place.
        self._telemetry = telemetry
        crash = crash or {}
        unknown = sorted(set(crash) - {f"shard{i}" for i in range(shards)})
        if unknown:
            raise EngineError(f"crash injectors for unknown shards: {unknown}")
        self._shards: dict[str, VodServer] = {}
        for index in range(shards):
            name = f"shard{index}"
            self._shards[name] = VodServer(
                bandwidth=bandwidth,
                prefetch_depth=prefetch_depth,
                admission_margin=admission_margin,
                derivation_cache=derivation_cache,
                obs=(None if obs is None else self.obs.scoped(name)),
                plan_check=plan_check,
                crash=crash.get(name),
                telemetry=telemetry,
            )
        self._live: list[str] = list(self._shards)
        self._reports: list[ServerReport] = []
        if self.checkpoint_fs is not None:
            if not self.checkpoint_fs.exists(self.checkpoint_dir):
                self.checkpoint_fs.makedirs(self.checkpoint_dir)

    # -- topology ------------------------------------------------------------------

    @property
    def shard_names(self) -> list[str]:
        return list(self._shards)

    @property
    def live_shards(self) -> list[str]:
        return list(self._live)

    @property
    def dead_shards(self) -> list[str]:
        return [name for name in self._shards if name not in self._live]

    def shard(self, name: str) -> VodServer:
        try:
            return self._shards[name]
        except KeyError:
            raise EngineError(f"unknown shard {name!r}") from None

    def route(self, title: str) -> str:
        """The live shard that owns ``title`` right now."""
        if not self._live:
            raise EngineError("no live shards: the whole fleet is dead")
        return place(title, self._live)

    def kill_shard(self, name: str) -> None:
        """Administratively take a shard out of the routing set.

        Placement immediately remaps the dead shard's titles onto the
        survivors (and only those titles). A shard that dies *mid-serve*
        doesn't need this — the failover path marks it dead itself.
        """
        self.shard(name)
        if name not in self._live:
            raise EngineError(f"shard {name!r} is already dead")
        self._mark_dead(name)

    def _mark_dead(self, name: str) -> None:
        self._live.remove(name)
        self.obs.metrics.counter("fleet.shard_deaths").inc()
        self.obs.events.record(
            Severity.ERROR, "fleet", "shard.died",
            shard=name, live=len(self._live),
        )

    # -- catalog -------------------------------------------------------------------

    def publish(self, title: str, interpretation) -> None:
        """Install a title on every shard (replicated catalog).

        Placement spreads *sessions*; the catalog itself is metadata
        and is replicated so any survivor can adopt a displaced batch
        after a shard death. Static verification runs per shard, same
        as a single server's publish.
        """
        for server in self._shards.values():
            server.publish(title, interpretation)

    def titles(self) -> list[str]:
        if not self._shards:
            return []
        return next(iter(self._shards.values())).titles()

    def prefetch(self, title: str) -> int:
        """Warm the owning shard's storage path (and the shared
        derivation cache, which every shard reads)."""
        warmed = self.shard(self.route(title)).prefetch(title)
        self.obs.metrics.counter("fleet.prefetch_bytes").inc(warmed)
        return warmed

    def required_rate(self, title: str) -> Rational:
        return self.shard(self.route(title)).required_rate(title)

    def capacity(self, title: str) -> int:
        """Nominal fleet capacity for ``title``: the sum over live
        shards of each shard's single-title capacity."""
        return sum(
            self._shards[name].capacity(title) for name in self._live
        )

    # -- admission + serving -------------------------------------------------------

    def admit(self, requests) -> tuple[list, list]:
        """Fleet-wide greedy admission: each request routes to its
        owning shard and must fit that shard's remaining budget.
        Same answer shapes as :meth:`VodServer.admit`."""
        reqs, legacy = normalize_requests(requests)
        admitted, rejected = self._admit(reqs)
        if legacy:
            return [r.key for r in admitted], [r.key for r in rejected]
        return admitted, rejected

    def _admit(self, requests: list[SessionRequest]) -> tuple[
            list[SessionRequest], list[SessionRequest]]:
        admitted: list[SessionRequest] = []
        rejected: list[SessionRequest] = []
        loads: dict[str, Rational] = {
            name: Rational(0) for name in self._live
        }
        for request in requests:
            name = self.route(request.title)
            shard = self._shards[name]
            rate = shard.required_rate(request.title)
            projected = (
                (loads[name] + rate) * as_rational(shard.admission_margin)
            )
            if projected <= Rational(shard.bandwidth):
                admitted.append(request)
                loads[name] += rate
            else:
                rejected.append(request)
        return admitted, rejected

    def _checkpoint_path(self, name: str) -> str:
        return f"{self.checkpoint_dir}/{name}.ckpt"

    def serve(self, requests, options: ServeOptions | None = None, *,
              enforce_admission=_UNSET,
              fault_plan=_UNSET,
              retry_policy=_UNSET,
              adaptation=_UNSET,
              granularity=_UNSET) -> ServerReport:
        """Serve a batch across the fleet; returns one merged report.

        Requests route to their owning shards and each shard's batch
        runs on its own event kernel (shards are independent machines).
        Admission is fleet-wide (:meth:`admit`) — shard serves run with
        admission off, since the router already enforced each shard's
        budget. With ``checkpoint_fs`` armed at construction, a shard
        that crashes mid-batch is failed over: survivors adopt its last
        durable checkpoint batch, and the merged report accounts every
        displaced session exactly once (recovered, resumed, or failed).
        """
        reqs, _ = normalize_requests(requests)
        opts = VodServer._merge_options(options, dict(
            enforce_admission=enforce_admission,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            adaptation=adaptation,
            granularity=granularity,
        ))
        if opts.checkpoint_to is not None:
            raise EngineError(
                "the fleet manages shard checkpoints itself; construct "
                "Fleet(checkpoint_fs=...) instead of passing checkpoint_to"
            )
        if not reqs:
            raise EngineError("serve needs at least one request")
        if not self._live:
            raise EngineError("no live shards: the whole fleet is dead")
        if opts.enforce_admission:
            admitted, rejected = self._admit(reqs)
        else:
            admitted, rejected = list(reqs), []
        metrics = self.obs.metrics
        metrics.counter("fleet.requests").inc(len(reqs))
        metrics.counter("fleet.admitted").inc(len(admitted))
        metrics.counter("fleet.rejected").inc(len(rejected))
        groups: dict[str, list[SessionRequest]] = {}
        for request in admitted:
            groups.setdefault(self.route(request.title), []).append(request)
        serving_bandwidth = sum(
            self._shards[name].bandwidth for name in self._live
        )
        shard_reports: list[ServerReport] = []
        for name in list(self._shards):
            group = groups.get(name)
            if not group:
                continue
            shard = self._shards[name]
            shard_opts = opts.replace(enforce_admission=False)
            if self.checkpoint_fs is not None:
                shard_opts = shard_opts.replace(
                    checkpoint_to=self._checkpoint_path(name),
                    checkpoint_fs=self.checkpoint_fs,
                )
            try:
                shard_reports.append(shard.serve(group, shard_opts))
            # repro: suppress DF008 — checkpoint-backed failover is the
            except SimulatedCrash:  # deliberate absorption point: the dead
                # shard's sessions resume from its checkpoint; without a
                # checkpoint medium the crash still propagates (raise above)
                if self.checkpoint_fs is None:
                    raise
                shard_reports.append(self._failover(name, group, opts))
        merged = self._merge(shard_reports, rejected, serving_bandwidth)
        self._reports.append(merged)
        return merged

    def _failover(self, dead: str, group: list[SessionRequest],
                  opts: ServeOptions) -> ServerReport:
        """Absorb a shard death: resume its batch on a survivor.

        The dead shard's last *durable* checkpoint carries the batch —
        completed-session summaries become ``recovered``, the rest
        re-serve as ``resumed``. A crash before the first durable
        checkpoint means nothing was acknowledged: the whole group
        re-serves. The survivor is rendezvous-chosen, so failover
        placement is as deterministic as routing.
        """
        self._mark_dead(dead)
        if not self._live:
            raise EngineError(
                f"shard {dead!r} died and no live shards remain"
            )
        self.obs.metrics.counter("fleet.failovers").inc()
        fs = self.checkpoint_fs
        if hasattr(fs, "crash"):
            fs.crash()  # drop the dead shard's volatile writes
        batch = self._displaced_batch(dead, group)
        survivor_name = place(f"failover:{dead}", self._live)
        survivor = self._shards[survivor_name]
        self.obs.events.record(
            Severity.WARNING, "fleet", "shard.failover",
            shard=dead, survivor=survivor_name,
            remaining=len(batch["remaining"]),
            recovered=len(batch["completed"]),
        )
        survivor.adopt_batch(batch)
        return survivor.resume(ServeOptions(
            fault_plan=opts.fault_plan,
            retry_policy=opts.retry_policy,
            adaptation=opts.adaptation,
            granularity=opts.granularity,
        ))

    def _displaced_batch(self, dead: str,
                         group: list[SessionRequest]) -> dict:
        """The dead shard's mid-serve batch from its durable checkpoint,
        or a synthetic whole-group batch when none survived."""
        from repro.durability.atomic import read_bytes, remove_stale_temp

        path = self._checkpoint_path(dead)
        remove_stale_temp(path, fs=self.checkpoint_fs)
        if self.checkpoint_fs.exists(path):
            try:
                payload = json.loads(
                    read_bytes(path, fs=self.checkpoint_fs).decode("utf-8")
                )
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint for dead shard {dead!r}: {exc}"
                ) from exc
            batch = payload.get("batch")
            if batch is not None:
                return batch
        # Nothing durable: the whole group restarts on the survivor.
        return {
            "requests": [list(r.key) for r in group],
            "rejected": [],
            "completed": [],
            "failed": [],
            "remaining": [list(r.key) for r in group],
            "share": max(1, self._shards[dead].bandwidth // len(group)),
        }

    def _merge(self, shard_reports: list[ServerReport],
               rejected: list[SessionRequest],
               bandwidth: int) -> ServerReport:
        sessions: list[Session] = []
        failed: list[tuple[str, str, str]] = []
        recovered = 0
        shares = []
        for report in shard_reports:
            sessions.extend(report.admitted)
            failed.extend(report.failed)
            rejected = rejected + list(report.rejected)
            recovered += report.recovered
            if report.admitted_count:
                shares.append(report.per_client_bandwidth)
        return ServerReport(
            admitted=sessions,
            rejected=rejected,
            bandwidth=bandwidth,
            per_client_bandwidth=min(shares) if shares else 0,
            failed=failed,
            recovered=recovered,
        )

    # -- health --------------------------------------------------------------------

    def reports(self) -> list[ServerReport]:
        """Merged fleet reports, one per :meth:`serve`, oldest first."""
        return list(self._reports)

    def health(self) -> FleetHealth:
        """Fleet-wide health: per-shard rollup + normalized census.

        Session counters fold :meth:`ServerReport.outcomes` across
        every merged fleet report, worst outcome per identity — the
        exactly-once accounting the per-shard tier counters cannot
        give once failover duplicates a session across shards.
        """
        shard_health = {
            name: server.health() for name, server in self._shards.items()
        }
        outcomes: dict[tuple[str, str], str] = {}
        rank = ServerReport._OUTCOME_RANK
        for report in self._reports:
            for key, outcome in report.outcomes().items():
                held = outcomes.get(key)
                if held is None or rank[outcome] > rank[held]:
                    outcomes[key] = outcome
        counts = {"clean": 0, "underrun": 0, "degraded": 0, "failed": 0}
        for outcome in outcomes.values():
            counts[outcome] += 1
        rejected = len({
            r.key for report in self._reports for r in report.rejected
        })
        recovered = sum(report.recovered for report in self._reports)
        slo = tuple(worst_verdicts(
            s.report.slo for report in self._reports for s in report.admitted
        ))
        alerts: tuple[dict, ...] = ()
        if self._telemetry is not None:
            alerts = tuple(
                alert.export() for alert in self._telemetry.alerts.all()
            )
        dead = tuple(self.dead_shards)
        if (counts["failed"]
                or any(h.status == "critical" for h in shard_health.values())
                or any(v.severity >= Severity.CRITICAL for v in slo)):
            status = "critical"
        elif (dead or counts["degraded"] or counts["underrun"] or rejected
                or any(not v.ok for v in slo)
                or any(h.status == "degraded"
                       for h in shard_health.values())):
            status = "degraded"
        else:
            status = "ok"
        return FleetHealth(
            status=status,
            shards=shard_health,
            live=tuple(self._live),
            dead=dead,
            sessions=len(outcomes),
            clean=counts["clean"],
            underrun=counts["underrun"],
            degraded=counts["degraded"],
            failed=counts["failed"],
            rejected=rejected,
            recovered=recovered,
            slo=slo,
            alerts=alerts,
        )

    @property
    def telemetry(self) -> "Telemetry | None":
        """The shared telemetry pipeline, when one was attached."""
        return self._telemetry

    def __repr__(self) -> str:
        return (
            f"Fleet({len(self._shards)} shards, "
            f"{len(self._live)} live, {len(self.titles())} titles)"
        )
