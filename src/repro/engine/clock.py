"""A simulated media clock.

Playback and recording are "extended activities" over media time (§6).
The clock is purely logical: tests and benchmarks advance it explicitly,
so engine behaviour is deterministic and independent of the machine it
runs on. A rate of 1 is normal playback; 2 is double speed; negative
rates play backwards (JPEG-style intra-coded streams support this, §2.1).
"""

from __future__ import annotations

from repro.core.rational import Rational, as_rational
from repro.errors import EngineError


class MediaClock:
    """Media time driven by explicit advancement of reference time."""

    def __init__(self, rate=1, start=0):
        self._rate = as_rational(rate)
        self._media_time = as_rational(start)

    @property
    def rate(self) -> Rational:
        return self._rate

    def set_rate(self, rate) -> None:
        """Change the playback rate (0 pauses; negative reverses)."""
        self._rate = as_rational(rate)

    def now(self) -> Rational:
        """Current media time in seconds."""
        return self._media_time

    def advance(self, reference_dt) -> Rational:
        """Advance by ``reference_dt`` reference seconds; returns media time."""
        dt = as_rational(reference_dt)
        if dt < 0:
            raise EngineError("reference time cannot run backwards")
        self._media_time += dt * self._rate
        return self._media_time

    def seek(self, media_time) -> None:
        self._media_time = as_rational(media_time)

    def until(self, media_time) -> Rational:
        """Reference seconds until ``media_time`` at the current rate.

        Raises :class:`EngineError` when the clock is paused or moving
        away from the target.
        """
        target = as_rational(media_time)
        if self._rate == 0:
            raise EngineError("clock is paused; target unreachable")
        dt = (target - self._media_time) / self._rate
        if dt < 0:
            raise EngineError(
                f"media time {target} unreachable at rate {self._rate}"
            )
        return dt

    def __repr__(self) -> str:
        return f"MediaClock(t={self._media_time.to_timestamp()}, rate={self._rate})"
