"""repro: a timed-stream data model for time-based media.

A production-quality reproduction of Gibbs, Breiteneder and Tsichritzis,
"Data Modeling of Time-Based Media" (SIGMOD 1994). The library models
time-based media — digital audio and video, music, animation — as *timed
streams* of media elements, structured by three media-independent
mechanisms: *interpretation* of BLOBs, *derivation* of media objects, and
*composition* of multimedia objects.

Quickstart::

    from repro.api import Player, CostModel, MediaDatabase
    # see examples/quickstart.py

``repro.api`` is the supported public surface; the subpackages below
are importable directly but their internals are not stable across
versions.

Subpackages
-----------
``repro.core``
    The data model (Definitions 1-7 of the paper).
``repro.blob``
    BLOB storage substrate (paged, memory- or file-backed).
``repro.storage``
    Layout, interleaving, padding, index structures, container format.
``repro.codecs``
    Color, DCT, JPEG-like, MPEG-like, scalable video, PCM/ADPCM audio,
    RLE/Huffman, MIDI.
``repro.media``
    Synthetic capture and music/animation models; synthesizer, renderer.
``repro.edit``
    Non-destructive editing: EDLs, transitions, filters, separation.
``repro.engine``
    Simulated real-time playback/recording: clock, scheduler, buffers.
``repro.faults``
    Deterministic fault injection: seeded fault plans, a fault-injecting
    pager, and the degradation machinery the engine uses to survive them.
``repro.query``
    Media database catalog and query API.
``repro.obs``
    Deterministic observability: metrics, spans, exporters.
``repro.api``
    The supported public facade (explicit ``__all__``).
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
