"""Media database catalog and query API.

§1.2 motivates structure with queries: "consider a digital movie with
audio tracks in different languages. If the movie is represented
structurally ... it is possible to issue queries which select a specific
sound track, or select a specific duration, or perhaps retrieve frames at
a specific visual fidelity."

* :mod:`repro.query.database` — the catalog: BLOBs, interpretations,
  media objects with domain attributes, multimedia objects, provenance;
* :mod:`repro.query.query` — those three §1.2 queries (and more) over
  the catalog;
* :mod:`repro.query.temporal` — temporal predicates over compositions;
* :mod:`repro.query.index` — the relational temporal-index accelerator
  (pre/post/level axis encodings, exact-rational timeline columns,
  window-function rollups) behind ``MediaDatabase(index=True)``.
"""

from repro.query.database import MediaDatabase
from repro.query.index import (
    TemporalIndex,
    demonstrate_correctness,
    encode_attribute,
)
from repro.query.query import (
    frames_at_fidelity,
    select_duration,
    select_objects,
    select_track,
)
from repro.query.temporal import (
    components_during,
    components_overlapping,
    gaps_in_presentation,
    relation_matrix,
)

__all__ = [
    "MediaDatabase",
    "TemporalIndex",
    "demonstrate_correctness",
    "encode_attribute",
    "frames_at_fidelity",
    "select_duration",
    "select_objects",
    "select_track",
    "components_during",
    "components_overlapping",
    "gaps_in_presentation",
    "relation_matrix",
]
