"""Relational temporal-index accelerator for the media catalog.

The paper's §1.2 promise is that modeled structure makes media
*queryable* — "select a specific sound track, or select a specific
duration". The catalog (:mod:`repro.query.database`) answers those
queries by scanning Python objects linearly, which is fine for a shelf
of clips and hopeless for a million-object library. This module maps
the modeled structure onto indexed SQLite (stdlib) relations in the
style of the XPath-accelerator line of work:

* **composition trees** are unfolded into *occurrence* rows carrying a
  pre/post/level numbering, so descendant and ancestor axes over nested
  multimedia objects become indexed range predicates
  (``parent.pre < node.pre < parent.post``);
* **derivation graphs** (provenance) get the same encoding over the
  DAG's tree unfolding — one occurrence row per path — so lineage and
  derived-from queries are containment ranges with depth =
  ``MIN(level difference)`` over occurrences;
* **component timelines** are stored as exact-rational
  ``(start_num, start_den, end_num, end_den)`` columns plus a
  conservative float approximation used only to *narrow* candidates
  through a B-tree range (never to decide): the final temporal
  predicate re-checks candidates with the exact interval algebra of
  :mod:`repro.core.intervals`, so indexed answers are byte-identical
  to the linear scan;
* **rollups** (duration shares, fidelity statistics) use SQL window
  functions over the encoded rows.

Write-through is the invariant: every catalog mutation
(:meth:`~repro.query.database.MediaDatabase.add_object`,
``set_attribute``, ``ingest_directory``) updates the relations in the
same call, and mutable compositions carry a version counter the index
snapshots, re-encoding a changed tree lazily before answering for it.
The linear scan is retained throughout as the correctness oracle —
:func:`demonstrate_correctness` runs both backends over randomized
catalogs and insists on identical result sets in identical order.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.intervals import Interval
from repro.core.rational import Rational, as_rational
from repro.errors import QueryError, QueryIndexError
from repro.obs.instrument import Instrumented, Observability
from repro.query.sqlutil import approx, open_tuned, rational_from_row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.composition import MultimediaObject
    from repro.core.media_object import MediaObject

#: Relative slack added to float prefilter bounds. Approximations are
#: correctly-rounded doubles (error ~1e-16 relative); a 1e-9 margin is
#: conservatively wide without dragging in meaningful over-fetch.
_EPS_REL = 1e-9

#: Ceiling on derivation occurrence rows; the tree unfolding of a DAG
#: can explode on adversarial sharing, and a runaway rebuild should
#: fail loudly rather than fill memory.
_MAX_OCCURRENCES = 5_000_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS objects (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL UNIQUE,
    kind        TEXT NOT NULL,
    media_type  TEXT NOT NULL,
    is_derived  INTEGER NOT NULL,
    duration    REAL,
    quality     REAL
);
CREATE TABLE IF NOT EXISTS attributes (
    object_id   INTEGER NOT NULL REFERENCES objects(id),
    key         TEXT NOT NULL,
    value       TEXT,
    PRIMARY KEY (object_id, key)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_attributes_kv ON attributes(key, value);
CREATE TABLE IF NOT EXISTS prov_nodes (
    node        TEXT PRIMARY KEY,
    name        TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS prov_edges (
    child       TEXT NOT NULL,
    parent      TEXT NOT NULL,
    position    INTEGER NOT NULL,
    PRIMARY KEY (child, position)
);
CREATE INDEX IF NOT EXISTS idx_prov_edges_parent ON prov_edges(parent);
CREATE TABLE IF NOT EXISTS prov_occ (
    node        TEXT NOT NULL,
    pre         INTEGER NOT NULL,
    post        INTEGER NOT NULL,
    level       INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_prov_occ_node ON prov_occ(node);
CREATE INDEX IF NOT EXISTS idx_prov_occ_pre ON prov_occ(pre);
CREATE TABLE IF NOT EXISTS composition (
    mm          TEXT NOT NULL,
    pre         INTEGER NOT NULL,
    post        INTEGER NOT NULL,
    level       INTEGER NOT NULL,
    path        TEXT NOT NULL,
    label       TEXT NOT NULL,
    obj_name    TEXT,
    is_leaf     INTEGER NOT NULL,
    start_num   INTEGER NOT NULL,
    start_den   INTEGER NOT NULL,
    end_num     INTEGER NOT NULL,
    end_den     INTEGER NOT NULL,
    start_approx REAL NOT NULL,
    end_approx  REAL NOT NULL,
    PRIMARY KEY (mm, pre)
);
CREATE INDEX IF NOT EXISTS idx_comp_window
    ON composition(mm, level, start_approx);
CREATE INDEX IF NOT EXISTS idx_comp_obj ON composition(obj_name);
CREATE INDEX IF NOT EXISTS idx_comp_path ON composition(mm, path);
CREATE TABLE IF NOT EXISTS composition_meta (
    mm          TEXT PRIMARY KEY,
    version     INTEGER NOT NULL,
    rows        INTEGER NOT NULL,
    max_dur     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS attr_stats (
    key         TEXT NOT NULL,
    value       TEXT NOT NULL,
    n           INTEGER NOT NULL,
    PRIMARY KEY (key, value)
) WITHOUT ROWID;
"""


#: Incremental upsert keeping ``attr_stats`` exact under write-through;
#: the counts feed the query planner's choice of driving filter.
_STATS_BUMP = (
    "INSERT INTO attr_stats (key, value, n) VALUES (?, ?, 1)"
    " ON CONFLICT (key, value) DO UPDATE SET n = n + 1"
)


def encode_attribute(value: Any) -> str | None:
    """Canonical text encoding of an attribute value, or ``None``.

    ``None`` means the value is not indexable (arbitrary objects, NaN)
    and queries filtering on it must fall back to the linear scan.
    Python equality quirks are honoured: ``True == 1 == 1.0 ==
    Fraction(1)`` all encode identically, so indexed equality agrees
    with ``dict.__eq__`` on the linear path.
    """
    if value is None:
        return "none:"
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            return None
        value = Fraction(value)
    if isinstance(value, (int, Fraction)):
        value = Fraction(value)
        return f"num:{value.numerator}/{value.denominator}"
    if isinstance(value, str):
        return "str:" + value
    return None


#: REAL approximation for the prefilter columns (shared helper; the
#: telemetry store uses the same convention).
_approx = approx


def _margin(value: float) -> float:
    return _EPS_REL * (1.0 + abs(value))


_rational = rational_from_row


class TemporalIndex(Instrumented):
    """A stdlib-SQLite relational backend for the media catalog.

    One instance backs one :class:`~repro.query.database.MediaDatabase`;
    the database writes through on every mutation and routes queries
    here when a fast path applies. All temporal answers are *exact*:
    float columns only narrow the candidate set, the decision is made
    by the interval algebra over the exact rational columns.

    Instrumented: ``query.index.*`` counters (writes, fast-path hits,
    fallbacks, rebuilds) and ``query.index.build``/``query.index.select``
    spans.
    """

    def __init__(self, path: str = ":memory:",
                 obs: Observability | None = None):
        self.path = path
        self._conn = open_tuned(path)
        self._conn.executescript(_SCHEMA)
        self._prov_dirty = False
        self._prov_known: set[str] = set()
        # Keys that ever carried a value with no canonical encoding;
        # equality filters on them must use the linear oracle.
        self._opaque_keys: set[str] = set()
        self._write_seq = 0
        self.last_write: tuple[int, str, str] | None = None
        if obs is not None:
            self.instrument(obs)

    # -- plumbing -----------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TemporalIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _wrote(self, op: str, detail: str, rows: int = 1) -> None:
        self._write_seq += 1
        self.last_write = (self._write_seq, op, detail)
        self._obs.metrics.counter("query.index.writes").inc(rows, op=op)

    def _fastpath(self, op: str) -> None:
        self._obs.metrics.counter("query.index.fastpath").inc(op=op)

    def fallback(self, op: str, reason: str) -> None:
        """Record that a query could not be served and fell back."""
        self._obs.metrics.counter("query.index.fallbacks").inc(
            op=op, reason=reason,
        )

    # -- object / attribute write-through ----------------------------------------

    def index_object(self, obj: "MediaObject",
                     attributes: dict[str, Any]) -> None:
        """Write one cataloged object (and its attributes) through."""
        duration = _stat_float(obj.descriptor.get("duration"))
        quality = _stat_float(obj.descriptor.get("quality_factor"))
        cursor = self._conn.execute(
            "INSERT INTO objects"
            " (name, kind, media_type, is_derived, duration, quality)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (obj.name, obj.kind.value, obj.media_type.name,
             int(obj.is_derived), duration, quality),
        )
        object_id = cursor.lastrowid
        if attributes:
            rows = []
            for key, value in attributes.items():
                encoded = encode_attribute(value)
                if encoded is None:
                    self._opaque_keys.add(key)
                rows.append((object_id, key, encoded))
            self._conn.executemany(
                "INSERT INTO attributes (object_id, key, value)"
                " VALUES (?, ?, ?)", rows,
            )
            self._conn.executemany(
                _STATS_BUMP, [(k, v) for _, k, v in rows if v is not None],
            )
        self._wrote("object", obj.name, rows=1 + len(attributes))

    def set_attribute(self, name: str, key: str, value: Any) -> None:
        """Write one attribute mutation through (the stale-index fix)."""
        row = self._conn.execute(
            "SELECT id FROM objects WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise QueryIndexError(
                f"index has no object {name!r}; write-through is broken"
            )
        encoded = encode_attribute(value)
        if encoded is None:
            self._opaque_keys.add(key)
        old = self._conn.execute(
            "SELECT value FROM attributes WHERE object_id = ? AND key = ?",
            (row[0], key),
        ).fetchone()
        if old is not None and old[0] is not None:
            self._conn.execute(
                "UPDATE attr_stats SET n = n - 1 WHERE key = ? AND value = ?",
                (key, old[0]),
            )
        if encoded is not None:
            self._conn.execute(_STATS_BUMP, (key, encoded))
        self._conn.execute(
            "INSERT OR REPLACE INTO attributes (object_id, key, value)"
            " VALUES (?, ?, ?)",
            (row[0], key, encoded),
        )
        self._wrote("set_attribute", f"{name}.{key}")

    # -- provenance write-through --------------------------------------------------

    def index_provenance(self, obj: "MediaObject") -> None:
        """Write ``obj``'s derivation chain through (nodes + edges).

        Mirrors :meth:`repro.core.provenance.ProvenanceGraph.register`:
        walking inputs recursively so one call captures the whole
        production chain. The pre/post occurrence encoding is rebuilt
        lazily on the next axis query.
        """
        from repro.core.media_object import DerivedMediaObject

        stack = [obj]
        nodes: list[tuple[str, str]] = []
        edges: list[tuple[str, str, int]] = []
        while stack:
            o = stack.pop()
            if o.object_id in self._prov_known:
                continue
            self._prov_known.add(o.object_id)
            nodes.append((o.object_id, o.name))
            if isinstance(o, DerivedMediaObject):
                for position, parent in enumerate(o.derivation_object.inputs):
                    edges.append((o.object_id, parent.object_id, position))
                    stack.append(parent)
        if not nodes:
            return
        self._conn.executemany(
            "INSERT OR IGNORE INTO prov_nodes (node, name) VALUES (?, ?)",
            nodes,
        )
        if edges:
            self._conn.executemany(
                "INSERT OR IGNORE INTO prov_edges (child, parent, position)"
                " VALUES (?, ?, ?)", edges,
            )
        self._prov_dirty = True
        self._wrote("provenance", obj.name, rows=len(nodes) + len(edges))

    def _ensure_provenance_occ(self) -> None:
        if not self._prov_dirty:
            return
        with self._obs.tracer.span("query.index.build", what="provenance"):
            children: dict[str, list[str]] = {}
            has_parent: set[str] = set()
            for child, parent in self._conn.execute(
                "SELECT child, parent FROM prov_edges"
                " ORDER BY parent, child"
            ):
                children.setdefault(parent, []).append(child)
                has_parent.add(child)
            all_nodes = [row[0] for row in self._conn.execute(
                "SELECT node FROM prov_nodes ORDER BY node"
            )]
            roots = [n for n in all_nodes if n not in has_parent]
            rows: list[tuple[str, int, int, int]] = []
            counter = 0
            for root in roots:
                # Iterative DFS: (node, level, iterator-state) frames so
                # ten-thousand-deep production chains don't hit the
                # recursion limit. ``on_path`` guards against cycles.
                on_path: set[str] = set()
                stack: list[list] = [[root, 0, 0, None]]
                while stack:
                    frame = stack[-1]
                    node, level, child_i, pre = frame
                    if pre is None:
                        if node in on_path:
                            raise QueryIndexError(
                                "derivation graph contains a cycle at "
                                f"{node!r}"
                            )
                        on_path.add(node)
                        frame[3] = counter
                        counter += 1
                    kids = children.get(node, ())
                    if child_i < len(kids):
                        frame[2] += 1
                        stack.append([kids[child_i], level + 1, 0, None])
                        continue
                    rows.append((node, frame[3], counter, level))
                    counter += 1
                    on_path.discard(node)
                    stack.pop()
                    if len(rows) > _MAX_OCCURRENCES:
                        raise QueryIndexError(
                            "derivation unfolding exceeds "
                            f"{_MAX_OCCURRENCES} occurrences; the sharing "
                            "in this DAG defeats the interval encoding"
                        )
            self._conn.execute("DELETE FROM prov_occ")
            self._conn.executemany(
                "INSERT INTO prov_occ (node, pre, post, level)"
                " VALUES (?, ?, ?, ?)", rows,
            )
            self._prov_dirty = False
            self._obs.metrics.counter("query.index.rebuilds").inc(
                what="provenance"
            )

    # -- composition write-through -------------------------------------------------

    def ensure_multimedia(self, multimedia: "MultimediaObject") -> None:
        """(Re-)encode ``multimedia`` unless the stored version is current.

        ``MultimediaObject.version`` bumps on every top-level ``add``,
        so post-catalog mutation is caught here and re-encoded before
        the query runs — the index can never silently disagree with the
        live object. Mutations *inside* nested component objects do not
        bump the root version; call
        :meth:`~repro.query.database.MediaDatabase.refresh_index` after
        editing a composition's interior.
        """
        row = self._conn.execute(
            "SELECT version FROM composition_meta WHERE mm = ?",
            (multimedia.name,),
        ).fetchone()
        if row is not None and row[0] == multimedia.version:
            return
        self._index_multimedia(multimedia)
        if row is not None:
            self._obs.metrics.counter("query.index.rebuilds").inc(
                what="composition"
            )

    def reindex_multimedia(self, multimedia: "MultimediaObject") -> None:
        """Force re-encoding, bypassing the version check.

        Needed after *deep* mutations — edits inside a nested component
        object do not bump the root's version counter, so
        :meth:`ensure_multimedia` alone would not notice them.
        """
        self._index_multimedia(multimedia)
        self._obs.metrics.counter("query.index.rebuilds").inc(
            what="composition"
        )

    def _index_multimedia(self, multimedia: "MultimediaObject") -> None:
        from repro.core.composition import MultimediaObject

        with self._obs.tracer.span(
            "query.index.build", what="composition", mm=multimedia.name,
        ):
            name = multimedia.name
            rows: list[tuple] = []
            max_dur = 0.0
            counter = 0

            # Iterative DFS in relationship insertion order — the same
            # order ``flatten`` walks — assigning pre on entry and post
            # on exit from one shared counter.
            duration = multimedia.duration()
            root_iv = Interval.of(Rational(0), duration)
            root_frame = [multimedia, "", 0, root_iv, Rational(0), 0,
                          counter, None]
            counter += 1
            stack = [root_frame]
            seen_on_path = {id(multimedia)}
            while stack:
                frame = stack[-1]
                node, path, level, interval, offset, child_i, pre, _ = frame
                relationships = node.relationships
                if child_i < len(relationships):
                    frame[5] += 1
                    r = relationships[child_i]
                    r_offset = (r.start_offset if r.is_temporal
                                else Rational(0))
                    absolute = offset + r_offset
                    child_path = (f"{path}/{r.label}" if path else r.label)
                    child_iv = Interval.of(absolute, r.duration())
                    component = r.component
                    if isinstance(component, MultimediaObject):
                        if id(component) in seen_on_path:
                            raise QueryIndexError(
                                f"composition {name!r} contains a cycle "
                                f"at {child_path!r}"
                            )
                        seen_on_path.add(id(component))
                        stack.append([component, child_path, level + 1,
                                      child_iv, absolute, 0, counter,
                                      r.label])
                        counter += 1
                    else:
                        pre_leaf = counter
                        counter += 2
                        leaf_iv = Interval.of(absolute, r.duration())
                        rows.append(_composition_row(
                            name, pre_leaf, pre_leaf + 1, level + 1,
                            child_path, r.label, component.name, 1,
                            leaf_iv,
                        ))
                        if level == 0:
                            max_dur = max(
                                max_dur, _approx(leaf_iv.duration)
                            )
                    continue
                post = counter
                counter += 1
                obj_name = getattr(node, "name", None)
                label = frame[7] if frame[7] is not None else node.name
                rows.append(_composition_row(
                    name, pre, post, level, path, label, obj_name,
                    0, interval,
                ))
                if level == 1:
                    max_dur = max(max_dur, _approx(interval.duration))
                seen_on_path.discard(id(node))
                stack.pop()

            self._conn.execute(
                "DELETE FROM composition WHERE mm = ?", (name,)
            )
            insert = (
                "INSERT INTO composition (mm, pre, post, level, path,"
                " label, obj_name, is_leaf, start_num, start_den,"
                " end_num, end_den, start_approx, end_approx)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
            )
            for begin in range(0, len(rows), 50_000):
                self._conn.executemany(insert, rows[begin:begin + 50_000])
            self._conn.execute(
                "INSERT OR REPLACE INTO composition_meta"
                " (mm, version, rows, max_dur) VALUES (?, ?, ?, ?)",
                (name, multimedia.version, len(rows), max_dur),
            )
            self._wrote("composition", name, rows=len(rows))

    # -- object selection ----------------------------------------------------------

    def object_names(self, kind: Any = None, media_type: str | None = None,
                     attribute_filters: dict[str, Any] | None = None,
                     ) -> list[str] | None:
        """Names matching the filters, sorted — or ``None`` to fall back.

        ``None`` is returned when a filter value has no canonical
        encoding (arbitrary objects); the caller then runs the linear
        oracle instead, so exotic values lose speed, never answers.
        """
        clauses: list[str] = []
        params: list[Any] = []
        equality: list[tuple[int, str, str]] = []
        for key, value in (attribute_filters or {}).items():
            encoded = encode_attribute(value)
            if encoded is None or key in self._opaque_keys:
                # Either the filter value or some stored value for this
                # key has no canonical encoding; only Python ``==`` can
                # judge those, so hand the query to the oracle.
                self.fallback("objects", "unindexable-filter")
                return None
            if value is not None:
                # Defer: the planner below orders equality filters by
                # their exact match count from ``attr_stats``.
                row = self._conn.execute(
                    "SELECT n FROM attr_stats WHERE key = ? AND value = ?",
                    (key, encoded),
                ).fetchone()
                count = row[0] if row is not None else 0
                if count <= 0:
                    # Nothing in the catalog carries this (key, value):
                    # the answer is empty without touching a row.
                    self._fastpath("objects")
                    return []
                equality.append((count, key, encoded))
                continue
            # Linear semantics: ``attributes.get(key)`` is None both
            # for a stored None and for a missing key.
            clauses.append(
                "(EXISTS (SELECT 1 FROM attributes a WHERE"
                " a.object_id = o.id AND a.key = ? AND a.value = ?)"
                " OR NOT EXISTS (SELECT 1 FROM attributes a WHERE"
                " a.object_id = o.id AND a.key = ?))"
            )
            params.extend((key, encoded, key))
        if kind is not None:
            clauses.append("o.kind = ?")
            params.append(kind.value)
        if media_type is not None:
            clauses.append("o.media_type = ?")
            params.append(media_type)
        # The most selective equality filter drives the plan: the
        # ``(key, value)`` index enumerates its matching object ids and
        # each is one rowid lookup, so cost follows the smallest match
        # count, not the catalog size. The rest become per-row probes.
        for position, (_, key, encoded) in enumerate(sorted(equality)):
            if position == 0:
                clauses.insert(0, (
                    "o.id IN (SELECT a.object_id FROM attributes a"
                    " WHERE a.key = ? AND a.value = ?)"
                ))
                params[0:0] = (key, encoded)
            else:
                clauses.append(
                    "EXISTS (SELECT 1 FROM attributes a WHERE"
                    " a.object_id = o.id AND a.key = ? AND a.value = ?)"
                )
                params.extend((key, encoded))
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        with self._obs.tracer.span("query.index.select", op="objects"):
            # Sorted in Python rather than ORDER BY: an ORDER BY tempts
            # the planner into walking the whole name index instead of
            # the selective attribute probe.
            names = [row[0] for row in self._conn.execute(
                f"SELECT o.name FROM objects o{where}", params,
            )]
        names.sort()
        self._fastpath("objects")
        return names

    # -- temporal predicates ---------------------------------------------------------

    def _level1_candidates(self, mm: str,
                           window: Interval) -> list[tuple[str, Interval]]:
        """Top-level components possibly intersecting ``window``.

        The float B-tree range narrows: an intersecting component's
        start lies in ``[window.start - max_dur, window.end]`` (padded
        by the conservative margin). Exactness comes from re-checking
        each candidate with the rational interval algebra.
        """
        meta = self._conn.execute(
            "SELECT max_dur FROM composition_meta WHERE mm = ?", (mm,)
        ).fetchone()
        if meta is None:
            raise QueryIndexError(f"multimedia {mm!r} is not indexed")
        ws, we = _approx(window.start), _approx(window.end)
        lo = ws - meta[0]
        lo -= _margin(lo)
        hi = we + _margin(we)
        rows = self._conn.execute(
            "SELECT label, start_num, start_den, end_num, end_den"
            " FROM composition WHERE mm = ? AND level = 1"
            " AND start_approx >= ? AND start_approx <= ?",
            (mm, lo, hi),
        ).fetchall()
        candidates = [
            (label, Interval(_rational(sn, sd), _rational(en, ed)))
            for label, sn, sd, en, ed in rows
        ]
        candidates.sort(key=lambda item: (item[1].start, item[0]))
        return candidates

    def component_interval(self, mm: str, label: str) -> Interval:
        """The exact top-level interval of one labelled component."""
        row = self._conn.execute(
            "SELECT start_num, start_den, end_num, end_den"
            " FROM composition WHERE mm = ? AND level = 1 AND label = ?",
            (mm, label),
        ).fetchone()
        if row is None:
            raise QueryError(f"{mm!r} has no component {label!r}")
        return Interval(_rational(row[0], row[1]), _rational(row[2], row[3]))

    def components_overlapping(self, mm: str, label: str) -> list[str]:
        """Labels of top-level components sharing time with ``label``."""
        target = self.component_interval(mm, label)
        with self._obs.tracer.span(
            "query.index.select", op="overlapping", mm=mm,
        ):
            result = [
                other for other, interval in self._level1_candidates(mm, target)
                if other != label and interval.intersects(target)
            ]
        self._fastpath("overlapping")
        return result

    def components_during(self, mm: str, start, end) -> list[str]:
        """Labels of top-level components intersecting ``[start, end)``."""
        window = Interval(as_rational(start), as_rational(end))
        with self._obs.tracer.span(
            "query.index.select", op="during", mm=mm,
        ):
            result = [
                label for label, interval in self._level1_candidates(mm, window)
                if interval.intersects(window)
            ]
        self._fastpath("during")
        return result

    # -- composition axes --------------------------------------------------------------

    def occurrences_of(self, object_name: str
                       ) -> list[tuple[str, str, Interval]]:
        """Every leaf placement of ``object_name`` across indexed trees.

        The ancestor-flavoured axis query: "where does this clip
        appear, and when". Returns ``(multimedia, path, interval)`` in
        (multimedia name, document order), matching a flatten-based
        linear walk.
        """
        with self._obs.tracer.span(
            "query.index.select", op="occurrences", object=object_name,
        ):
            rows = self._conn.execute(
                "SELECT mm, path, start_num, start_den, end_num, end_den"
                " FROM composition WHERE obj_name = ? AND is_leaf = 1"
                " ORDER BY mm, pre", (object_name,),
            ).fetchall()
        self._fastpath("occurrences")
        return [
            (mm, path, Interval(_rational(sn, sd), _rational(en, ed)))
            for mm, path, sn, sd, en, ed in rows
        ]

    def component_descendants(self, mm: str, path: str = "") -> list[str]:
        """Paths of every relationship below ``path``, document order.

        The descendant axis as a pre/post range predicate: rows with
        ``parent.pre < pre < parent.post``. An empty path addresses the
        root (the whole tree).
        """
        row = self._conn.execute(
            "SELECT pre, post FROM composition WHERE mm = ? AND path = ?",
            (mm, path),
        ).fetchone()
        if row is None:
            raise QueryError(f"{mm!r} has no component path {path!r}")
        with self._obs.tracer.span(
            "query.index.select", op="descendants", mm=mm,
        ):
            rows = self._conn.execute(
                "SELECT path FROM composition"
                " WHERE mm = ? AND pre > ? AND pre < ? ORDER BY pre",
                (mm, row[0], row[1]),
            ).fetchall()
        self._fastpath("descendants")
        return [r[0] for r in rows]

    def component_ancestors(self, mm: str, path: str) -> list[str]:
        """Paths of the containing compositions, root-first.

        The ancestor axis: rows whose range brackets the node's.
        """
        row = self._conn.execute(
            "SELECT pre, post FROM composition WHERE mm = ? AND path = ?",
            (mm, path),
        ).fetchone()
        if row is None:
            raise QueryError(f"{mm!r} has no component path {path!r}")
        with self._obs.tracer.span(
            "query.index.select", op="ancestors", mm=mm,
        ):
            rows = self._conn.execute(
                "SELECT path FROM composition"
                " WHERE mm = ? AND pre < ? AND post > ? AND level > 0"
                " ORDER BY pre", (mm, row[0], row[1]),
            ).fetchall()
        self._fastpath("ancestors")
        return [r[0] for r in rows]

    # -- derivation axes ---------------------------------------------------------------

    def ancestors_of(self, node: str) -> list[tuple[str, str, int]]:
        """Transitive derivation inputs of ``node``: (node, name, depth).

        Ordered nearest-first (min depth over occurrence pairs), ties
        by name then node id.
        """
        self._ensure_provenance_occ()
        with self._obs.tracer.span(
            "query.index.select", op="lineage", node=node,
        ):
            rows = self._conn.execute(
                "SELECT n.node, n.name, MIN(a.level - d.level) AS depth"
                " FROM prov_occ a JOIN prov_occ d"
                "   ON d.pre < a.pre AND d.post > a.post"
                " JOIN prov_nodes n ON n.node = d.node"
                " WHERE a.node = ?"
                " GROUP BY n.node, n.name"
                " ORDER BY depth, n.name, n.node", (node,),
            ).fetchall()
        self._fastpath("lineage")
        return [(n, name, depth) for n, name, depth in rows]

    def descendants_of(self, node: str) -> list[tuple[str, str, int]]:
        """Objects transitively derived from ``node``: (node, name, depth)."""
        self._ensure_provenance_occ()
        with self._obs.tracer.span(
            "query.index.select", op="derived_from", node=node,
        ):
            rows = self._conn.execute(
                "SELECT n.node, n.name, MIN(d.level - a.level) AS depth"
                " FROM prov_occ a JOIN prov_occ d"
                "   ON d.pre > a.pre AND d.pre < a.post"
                " JOIN prov_nodes n ON n.node = d.node"
                " WHERE a.node = ?"
                " GROUP BY n.node, n.name"
                " ORDER BY depth, n.name, n.node", (node,),
            ).fetchall()
        self._fastpath("derived_from")
        return [(n, name, depth) for n, name, depth in rows]

    # -- rollups -----------------------------------------------------------------------

    def duration_rollup(self, mm: str) -> list[dict[str, Any]]:
        """Window-function duration statistics over top-level components.

        Per component: duration, rank by duration, share of the summed
        component time, and running coverage in timeline order. Floats
        (these are statistics, not predicates).
        """
        rows = self._conn.execute(
            "SELECT label,"
            "  end_approx - start_approx AS dur,"
            "  RANK() OVER (ORDER BY end_approx - start_approx DESC,"
            "               label) AS rank,"
            "  (end_approx - start_approx) /"
            "    NULLIF(SUM(end_approx - start_approx) OVER (), 0)"
            "    AS share,"
            "  SUM(end_approx - start_approx) OVER ("
            "    ORDER BY start_approx, label"
            "    ROWS UNBOUNDED PRECEDING) AS running"
            " FROM composition WHERE mm = ? AND level = 1"
            " ORDER BY rank", (mm,),
        ).fetchall()
        self._fastpath("duration_rollup")
        return [
            {"label": label, "duration": dur, "rank": rank,
             "share": share if share is not None else 0.0,
             "running": running}
            for label, dur, rank, share, running in rows
        ]

    def fidelity_rollup(self) -> list[dict[str, Any]]:
        """Per kind/media-type census with quality and duration stats.

        ``RANK() OVER (PARTITION BY kind ...)`` orders media types
        within each kind by mean quality factor — "retrieve frames at a
        specific visual fidelity" as a catalog-wide statistic.
        """
        rows = self._conn.execute(
            "SELECT kind, media_type, COUNT(*) AS n,"
            "  AVG(quality) AS mean_quality,"
            "  SUM(COALESCE(duration, 0)) AS total_duration,"
            "  CAST(COUNT(*) AS REAL) /"
            "    SUM(COUNT(*)) OVER (PARTITION BY kind) AS kind_share,"
            "  RANK() OVER (PARTITION BY kind"
            "    ORDER BY AVG(quality) DESC NULLS LAST,"
            "             media_type) AS quality_rank"
            " FROM objects GROUP BY kind, media_type"
            " ORDER BY kind, media_type",
        ).fetchall()
        self._fastpath("fidelity_rollup")
        return [
            {"kind": kind, "media_type": mt, "objects": n,
             "mean_quality": mq, "total_duration": td,
             "kind_share": share, "quality_rank": rank}
            for kind, mt, n, mq, td, share, rank in rows
        ]

    # -- census ------------------------------------------------------------------------

    def census(self) -> dict[str, Any]:
        """Row counts, relation/index inventory, size and write state."""
        tables = ("objects", "attributes", "attr_stats", "prov_nodes",
                  "prov_edges", "prov_occ", "composition",
                  "composition_meta")
        counts = {
            table: self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
            for table in tables
        }
        indexes = [row[0] for row in self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
            " AND name LIKE 'idx_%' ORDER BY name"
        )]
        page_count = self._conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = self._conn.execute("PRAGMA page_size").fetchone()[0]
        return {
            "path": self.path,
            "rows": counts,
            "indexes": indexes,
            "size_bytes": page_count * page_size,
            "provenance_dirty": self._prov_dirty,
            "writes": self._write_seq,
            "last_write": self.last_write,
        }


def _composition_row(mm: str, pre: int, post: int, level: int, path: str,
                     label: str, obj_name: str | None, is_leaf: int,
                     interval: Interval) -> tuple:
    start = Fraction(interval.start)
    end = Fraction(interval.end)
    return (
        mm, pre, post, level, path, label, obj_name, is_leaf,
        start.numerator, start.denominator, end.numerator, end.denominator,
        _approx(start), _approx(end),
    )


def _stat_float(value: Any) -> float | None:
    """Best-effort float for the statistics columns (never predicates)."""
    if value is None:
        return None
    try:
        return float(value)
    # repro: suppress DF006 — statistics columns are best-effort by contract
    except (TypeError, ValueError):
        return None


# -- dual-backend correctness harness ------------------------------------------------


def demonstrate_correctness(seed: int = 0, objects: int = 96,
                            components: int = 64, windows: int = 24,
                            mutations: int = 16) -> dict[str, Any]:
    """Prove the indexed and linear backends answer identically.

    Builds a seeded randomized catalog (attribute-rich objects, a
    derivation chain, a nested composition with instants, duplicate
    starts and contained intervals), then runs every dual-backend query
    through both paths and insists on *byte-identical* result sets —
    same names, same order — including after ``set_attribute``
    mutations. Returns a report dict; ``report["ok"]`` is the gate.
    """
    import numpy as np

    from repro.core.composition import MultimediaObject
    from repro.query.database import MediaDatabase

    rng = np.random.default_rng(seed)

    def pick(seq):
        return seq[int(rng.integers(len(seq)))]

    db = MediaDatabase(f"correctness-{seed}", index=True)
    genres = ("drama", "news", "sport", "music", "archive")
    langs = ("en", "de", "fr", None)

    for i in range(objects):
        obj = _cheap_still(f"obj-{i:04d}")
        db.add_object(
            obj,
            genre=pick(genres),
            year=int(rng.integers(1990, 2000)),
            rating=pick((1, 2, 3, True, 4.5)),
            language=pick(langs),
        )

    # A small derivation chain for the lineage axes.
    chain = _derivation_chain(db, length=6)

    mm = MultimediaObject("random-timeline")
    shared = _cheap_still("shared-leaf")
    nested = MultimediaObject("nested")
    nested.add_temporal(shared, at=0, duration=Rational(1, 2), label="inner-a")
    nested.add_temporal(shared, at=Rational(1, 4), duration=0,
                        label="inner-instant")
    mm.add_temporal(nested, at=1, label="nested")
    for i in range(components):
        start = Rational(int(rng.integers(0, 41)), pick((1, 2, 3, 4)))
        duration = Rational(int(rng.integers(0, 13)), pick((1, 2, 3)))
        mm.add_temporal(shared, at=start, duration=duration,
                        label=f"c{i:03d}")
    db.add_multimedia(mm)

    report: dict[str, Any] = {"seed": seed, "checks": 0, "disagreements": []}

    def compare(what: str, indexed, linear) -> None:
        report["checks"] += 1
        if indexed != linear:
            report["disagreements"].append(
                {"query": what, "indexed": indexed, "linear": linear}
            )

    def sweep(round_label: str) -> None:
        for genre in genres:
            compare(
                f"{round_label} objects(genre={genre})",
                [o.name for o in db.objects(backend="index", genre=genre)],
                [o.name for o in db.objects(backend="linear", genre=genre)],
            )
        for year in (1990, 1994, 1999):
            compare(
                f"{round_label} objects(year={year}, rating=1)",
                [o.name for o in db.objects(backend="index", year=year,
                                            rating=1)],
                [o.name for o in db.objects(backend="linear", year=year,
                                            rating=1)],
            )
        compare(
            f"{round_label} objects(language=None)",
            [o.name for o in db.objects(backend="index", language=None)],
            [o.name for o in db.objects(backend="linear", language=None)],
        )

    sweep("initial")

    labels = [label for label, _ in mm.timeline()]
    sampled = rng.choice(len(labels), size=min(12, len(labels)),
                         replace=False)
    for label in (labels[int(i)] for i in sampled):
        compare(
            f"overlapping({label})",
            db.components_overlapping("random-timeline", label,
                                      backend="index"),
            db.components_overlapping("random-timeline", label,
                                      backend="linear"),
        )
    for _ in range(windows):
        a = Rational(int(rng.integers(0, 51)), pick((1, 2, 4)))
        b = a + Rational(int(rng.integers(0, 11)), pick((1, 2)))
        compare(
            f"during([{a}, {b}))",
            db.components_during("random-timeline", a, b, backend="index"),
            db.components_during("random-timeline", a, b, backend="linear"),
        )
    compare(
        "occurrences_of(shared-leaf)",
        db.occurrences_of("shared-leaf", backend="index"),
        db.occurrences_of("shared-leaf", backend="linear"),
    )
    compare(
        "component_descendants(root)",
        db.component_descendants("random-timeline", backend="index"),
        db.component_descendants("random-timeline", backend="linear"),
    )
    compare(
        "component_descendants(nested)",
        db.component_descendants("random-timeline", "nested",
                                 backend="index"),
        db.component_descendants("random-timeline", "nested",
                                 backend="linear"),
    )
    compare(
        f"lineage({chain[-1]})",
        [o.name for o in db.lineage(chain[-1], backend="index")],
        [o.name for o in db.lineage(chain[-1], backend="linear")],
    )
    compare(
        f"derived_from({chain[0]})",
        [o.name for o in db.derived_from(chain[0], backend="index")],
        [o.name for o in db.derived_from(chain[0], backend="linear")],
    )

    # Mutations must write through: mutate, then re-compare.
    for i in range(mutations):
        name = f"obj-{int(rng.integers(objects)):04d}"
        db.set_attribute(name, "genre", pick(genres))
        db.set_attribute(name, "restored", bool(i % 2))
    sweep("post-mutation")
    compare(
        "objects(restored=True)",
        [o.name for o in db.objects(backend="index", restored=True)],
        [o.name for o in db.objects(backend="linear", restored=True)],
    )

    report["ok"] = not report["disagreements"]
    return report


def _cheap_still(name: str):
    """A minimal cataloguable still object (shared type/descriptor)."""
    from repro.core.media_object import StillMediaObject
    from repro.core.media_types import media_type_registry

    media_type = media_type_registry.get("text")
    descriptor = media_type.make_media_descriptor(charset="utf-8")
    return StillMediaObject(media_type, descriptor, name, name=name)


def _derivation_chain(db, length: int = 6) -> list[str]:
    """Catalog a cut-of-a-cut derivation chain; returns names, root first."""
    from repro.edit import MediaEditor
    from repro.media import frames
    from repro.media.objects import video_object

    editor = MediaEditor()
    clip = video_object(frames.scene(8, 8, 12, "pan"), "chain-root")
    db.add_object(clip, genre="archive")
    names = ["chain-root"]
    current = clip
    for i in range(length):
        current = editor.cut(current, 0, max(2, 12 - i),
                             name=f"chain-cut-{i}")
        db.add_object(current, genre="archive")
        names.append(current.name)
    return names


__all__ = [
    "TemporalIndex",
    "demonstrate_correctness",
    "encode_attribute",
]
