"""Shared stdlib-``sqlite3`` helpers for the relational accelerators.

Two in-tree subsystems keep relational state in SQLite: the
:class:`~repro.query.index.TemporalIndex` (PR 9) and the telemetry
time-series store (:mod:`repro.obs.telemetry`). Both follow the same
conventions, factored out here:

* **Tuned in-memory-class connections** — the stores are deterministic
  caches over exact in-process state, so durability pragmas are off:
  crash safety belongs to :mod:`repro.durability`, not to these
  sidecars, and the pragmas buy a large constant factor.
* **Exact-rational columns** — timestamps are stored as exact
  ``(numerator, denominator)`` INTEGER pairs plus a REAL approximation.
  The REAL column is a *conservative prefilter* for B-tree range scans;
  candidates are re-judged in Python with exact
  :class:`~repro.core.rational.Rational` arithmetic, so float rounding
  can widen a scan but never change an answer.
"""

from __future__ import annotations

import math
import sqlite3
from fractions import Fraction

from repro.core.rational import Rational, as_rational

__all__ = [
    "approx",
    "open_tuned",
    "rational_columns",
    "rational_from_row",
]


def open_tuned(path: str = ":memory:") -> sqlite3.Connection:
    """A connection with the accelerator pragmas applied.

    ``journal_mode=MEMORY`` / ``synchronous=OFF`` / ``temp_store=MEMORY``:
    the store is rebuildable from in-process state, so nothing is paid
    for durability it does not need.
    """
    conn = sqlite3.connect(path)
    try:
        conn.executescript(
            "PRAGMA journal_mode=MEMORY;"
            "PRAGMA synchronous=OFF;"
            "PRAGMA temp_store=MEMORY;"
        )
    except Exception:
        conn.close()  # don't leak the handle when a pragma fails
        raise
    return conn


def approx(value: Fraction) -> float:
    """A REAL approximation of an exact rational, for prefilter columns.

    Saturates to +/-inf on astronomical values instead of raising —
    the exact columns still hold the true number.
    """
    try:
        return float(value)
    # repro: suppress DF006 — saturating to ±inf is the documented contract
    except OverflowError:  # pragma: no cover - astronomical timestamps
        return math.inf if value > 0 else -math.inf


def rational_columns(value) -> tuple[int, int, float]:
    """``(numerator, denominator, approximation)`` for an exact column
    pair plus its REAL prefilter."""
    exact = as_rational(value)
    return exact.numerator, exact.denominator, approx(exact)


def rational_from_row(numerator: int, denominator: int) -> Rational:
    """The exact value back from its column pair."""
    return Rational(numerator, denominator)
