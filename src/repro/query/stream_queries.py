"""Element-level queries over interpretations.

§1.2's argument is that structure enables querying *inside* media
objects. These functions query at element granularity: by time range, by
element-descriptor predicate (e.g. key frames of an inter-coded stream),
and by size statistics — all through the placement tables, reading BLOB
bytes only when the caller asks for payloads.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.descriptors import ElementDescriptor
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.rational import as_rational
from repro.errors import QueryError


def elements_in_range(
    interpretation: Interpretation,
    name: str,
    start_seconds,
    end_seconds,
) -> list[PlacementEntry]:
    """Placement rows of elements presented within ``[start, end)``.

    Elements partially inside the range are included (presentation
    needs them); zero-duration events are included when their instant
    falls inside.
    """
    sequence = interpretation.sequence(name)
    begin = as_rational(start_seconds)
    end = as_rational(end_seconds)
    if end < begin:
        raise QueryError(f"empty range [{begin}, {end})")
    system = sequence.time_system
    result = []
    for entry in sequence:
        element_start = system.to_continuous(entry.start)
        element_end = system.to_continuous(entry.end)
        if entry.duration == 0:
            if begin <= element_start < end:
                result.append(entry)
        elif element_start < end and element_end > begin:
            result.append(entry)
    return result


def elements_where(
    interpretation: Interpretation,
    name: str,
    predicate: Callable[[ElementDescriptor | None], bool],
) -> list[PlacementEntry]:
    """Placement rows whose element descriptor satisfies ``predicate``."""
    return [
        entry for entry in interpretation.sequence(name)
        if predicate(entry.element_descriptor)
    ]


def key_elements(interpretation: Interpretation,
                 name: str) -> list[PlacementEntry]:
    """Key (I) elements of an inter-coded sequence.

    Sequences whose elements carry no ``frame_kind`` are entirely
    intra-coded: every element is a key.
    """
    sequence = interpretation.sequence(name)
    keys = []
    saw_kind = False
    for entry in sequence:
        descriptor = entry.element_descriptor
        kind = descriptor.get("frame_kind") if descriptor else None
        if kind is not None:
            saw_kind = True
            if kind == "I":
                keys.append(entry)
    if not saw_kind:
        return list(sequence.entries)
    return keys


def size_statistics(interpretation: Interpretation, name: str) -> dict[str, Any]:
    """Element-size statistics for resource planning (§4.1's "measure of
    data rate variation").

    Returns min/max/mean sizes, total bytes, and the peak-to-mean ratio
    — 1.0 for uniform streams, larger for bursty compressed video.
    """
    sequence = interpretation.sequence(name)
    sizes = [entry.size for entry in sequence]
    if not sizes:
        raise QueryError(f"sequence {name!r} is empty")
    total = sum(sizes)
    mean = total / len(sizes)
    return {
        "elements": len(sizes),
        "total_bytes": total,
        "min_size": min(sizes),
        "max_size": max(sizes),
        "mean_size": mean,
        "burstiness": max(sizes) / mean if mean else 0.0,
    }


def bytes_for_range(
    interpretation: Interpretation,
    name: str,
    start_seconds,
    end_seconds,
) -> int:
    """How many BLOB bytes presenting ``[start, end)`` requires."""
    return sum(
        entry.size
        for entry in elements_in_range(
            interpretation, name, start_seconds, end_seconds,
        )
    )
