"""The §1.2 queries over the catalog.

"It is possible to issue queries which select a specific sound track, or
select a specific duration, or perhaps retrieve frames at a specific
visual fidelity" — three functions below, plus general attribute
selection. Duration selection returns a *derived* object (a one-decision
edit list), never copied data, per §4.2.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.codecs.scalable import ScalableVideoCodec
from repro.core.composition import MultimediaObject
from repro.core.derivation import derivation_registry
from repro.core.media_object import DerivedMediaObject, MediaObject
from repro.core.media_types import MediaKind
from repro.errors import QueryError
from repro.query.database import MediaDatabase


def select_objects(db: MediaDatabase, kind: MediaKind | None = None,
                   **attributes: Any) -> list[MediaObject]:
    """Attribute selection over the catalog (thin, explicit wrapper)."""
    return db.objects(kind=kind, **attributes)


def select_track(db: MediaDatabase, movie: str | MultimediaObject,
                 language: str) -> MediaObject:
    """Select a movie's sound track by language.

    The movie is a multimedia object whose audio components are cataloged
    with a ``language`` domain attribute.
    """
    multimedia = (
        movie if isinstance(movie, MultimediaObject)
        else db.get_multimedia(movie)
    )
    component_names = {
        obj.name for _, obj, _ in multimedia.flatten()
    }
    matches = [
        obj for obj in db.objects(kind=MediaKind.AUDIO, language=language)
        if obj.name in component_names
    ]
    if not matches:
        available = sorted({
            db.attributes_of(obj.name).get("language")
            for _, obj, _ in multimedia.flatten()
            if obj.kind is MediaKind.AUDIO and obj.name in db
        })
        raise QueryError(
            f"{multimedia.name!r} has no {language!r} sound track; "
            f"languages: {available}"
        )
    if len(matches) > 1:
        raise QueryError(
            f"{multimedia.name!r} has {len(matches)} {language!r} tracks"
        )
    return matches[0]


def select_duration(obj: MediaObject, start_seconds, end_seconds,
                    name: str | None = None) -> DerivedMediaObject:
    """Select a time range of a video as a derived object (no copying).

    The result is a one-decision edit list — "to delete a video
    subsequence one could copy and reassemble the frame data, but it
    would be much more efficient to simply create a derivation" (§4.2).
    """
    system = obj.media_type.time_system
    if system is None:
        raise QueryError(f"{obj.name} is not time-based")
    in_tick = system.floor(start_seconds)
    out_tick = system.ceil(end_seconds)
    if out_tick <= in_tick:
        raise QueryError(
            f"empty selection [{start_seconds}, {end_seconds}) on {obj.name}"
        )
    derivation = derivation_registry.get("video-edit")
    return derivation(
        [obj], {"edit_list": [(0, in_tick, out_tick)]},
        name=name or f"{obj.name}[{start_seconds}:{end_seconds}]",
    )


def frames_at_fidelity(obj: MediaObject, level: int,
                       codec: ScalableVideoCodec | None = None,
                       frame_indices: list[int] | None = None,
                       ) -> tuple[list[np.ndarray], int, int]:
    """Retrieve frames at a reduced visual fidelity.

    The object's elements must hold scalable-codec payloads (bytes).
    Returns ``(frames, bytes_read, bytes_total)`` — the byte counts show
    the bandwidth saved by "ignoring parts of the storage unit" (§2.2).
    """
    codec = codec or ScalableVideoCodec()
    stream = obj.stream()
    tuples = stream.tuples
    indices = frame_indices if frame_indices is not None else range(len(tuples))
    frames = []
    bytes_read = 0
    bytes_total = 0
    for index in indices:
        payload = tuples[index].element.payload
        if not isinstance(payload, (bytes, bytearray)):
            raise QueryError(
                f"{obj.name} element {index} is not scalable-encoded bytes"
            )
        frames.append(codec.decode_at_level(bytes(payload), level))
        bytes_read += codec.bytes_at_level(bytes(payload), level)
        bytes_total += len(payload)
    return frames, bytes_read, bytes_total
