"""Authorization and rights tracking for media objects.

The paper's conclusion lists this as open work: "Authorization and
electronic copyright need to be addressed." This module provides the
mechanism the derivation model makes natural: rights attach to media
objects, and because every derived object records its antecedents,
*effective* rights are computed over the provenance graph — you may not
present a composite whose raw material you may not present.

Operations form a small lattice: READ < PRESENT, READ < DERIVE < EXPORT
(exporting implies the right to derive; presenting and deriving are
incomparable).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.media_object import DerivedMediaObject, MediaObject
from repro.errors import QueryError


class Operation(enum.Enum):
    """Rights-controlled operations on media objects."""

    READ = "read"
    PRESENT = "present"
    DERIVE = "derive"
    EXPORT = "export"


#: Operations implied by holding each operation's right.
_IMPLIES = {
    Operation.READ: {Operation.READ},
    Operation.PRESENT: {Operation.PRESENT, Operation.READ},
    Operation.DERIVE: {Operation.DERIVE, Operation.READ},
    Operation.EXPORT: {Operation.EXPORT, Operation.DERIVE, Operation.READ},
}


class AuthorizationError(QueryError):
    """An operation was attempted without the necessary right."""


@dataclass
class RightsRecord:
    """Per-object rights: holder, grants, and a copyright notice."""

    holder: str
    notice: str = ""
    grants: dict[str, set[Operation]] = field(default_factory=dict)

    def granted_to(self, principal: str) -> set[Operation]:
        direct = self.grants.get(principal, set())
        effective: set[Operation] = set()
        for operation in direct:
            effective |= _IMPLIES[operation]
        return effective


class RightsRegistry:
    """Rights records keyed by media object, with provenance-aware checks."""

    def __init__(self) -> None:
        self._records: dict[str, RightsRecord] = {}

    # -- registration -----------------------------------------------------------

    def register(self, obj: MediaObject, holder: str,
                 notice: str = "") -> RightsRecord:
        """Declare ``holder`` as the rights holder of ``obj``.

        Holders implicitly hold every right on their own material.
        """
        if obj.object_id in self._records:
            raise AuthorizationError(
                f"{obj.name!r} already has a rights record"
            )
        record = RightsRecord(holder=holder, notice=notice)
        record.grants[holder] = set(Operation)
        self._records[obj.object_id] = record
        return record

    def record_of(self, obj: MediaObject) -> RightsRecord | None:
        return self._records.get(obj.object_id)

    def grant(self, obj: MediaObject, principal: str,
              *operations: Operation) -> None:
        record = self._require_record(obj)
        record.grants.setdefault(principal, set()).update(operations)

    def revoke(self, obj: MediaObject, principal: str) -> None:
        record = self._require_record(obj)
        record.grants.pop(principal, None)

    def _require_record(self, obj: MediaObject) -> RightsRecord:
        record = self._records.get(obj.object_id)
        if record is None:
            raise AuthorizationError(f"{obj.name!r} has no rights record")
        return record

    # -- checks -------------------------------------------------------------------

    def _governing_objects(self, obj: MediaObject) -> list[MediaObject]:
        """The objects whose rights govern ``obj``.

        A derived object with its own record is governed by that record
        *and* its antecedents' (a license on the composite cannot launder
        away the raw material's restrictions). An unrecorded derived
        object is governed purely by its antecedents.
        """
        governing = []
        if obj.object_id in self._records:
            governing.append(obj)
        if isinstance(obj, DerivedMediaObject):
            for parent in obj.derivation_object.inputs:
                governing.extend(self._governing_objects(parent))
        elif obj.object_id not in self._records:
            # A non-derived object with no record is unowned: implicitly
            # public-domain within the database.
            pass
        return governing

    def allowed(self, principal: str, obj: MediaObject,
                operation: Operation) -> bool:
        """Whether ``principal`` may perform ``operation`` on ``obj``."""
        governing = self._governing_objects(obj)
        for governed in governing:
            record = self._records[governed.object_id]
            if operation not in record.granted_to(principal):
                return False
        return True

    def check(self, principal: str, obj: MediaObject,
              operation: Operation) -> None:
        """Raise :class:`AuthorizationError` unless allowed, naming the
        blocking object."""
        for governed in self._governing_objects(obj):
            record = self._records[governed.object_id]
            if operation not in record.granted_to(principal):
                raise AuthorizationError(
                    f"{principal!r} may not {operation.value} {obj.name!r}: "
                    f"right withheld on {governed.name!r} "
                    f"(rights holder {record.holder!r})"
                )

    def notices(self, obj: MediaObject) -> list[str]:
        """All copyright notices governing ``obj`` (for display/export)."""
        seen = []
        for governed in self._governing_objects(obj):
            notice = self._records[governed.object_id].notice
            if notice and notice not in seen:
                seen.append(notice)
        return seen

    def derive_checked(self, principal: str, derivation_name: str,
                       inputs: list[MediaObject], params: dict,
                       name: str | None = None) -> DerivedMediaObject:
        """Create a derivation only if ``principal`` holds DERIVE on all
        inputs; the result is registered to ``principal``."""
        from repro.core.derivation import derivation_registry

        for obj in inputs:
            self.check(principal, obj, Operation.DERIVE)
        derived = derivation_registry.get(derivation_name)(
            inputs, params, name=name,
        )
        self.register(derived, principal,
                      notice=f"derived work by {principal}")
        return derived
