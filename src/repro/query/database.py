"""The media database catalog.

The paper's VideoClip example (§4): "a VideoClip object could possess, in
addition to character-valued attributes such as the title and name of the
director, a video-valued attribute containing the actual content". The
catalog models exactly that: media objects carry *domain attributes*
(title, director, language, topic...) alongside their media-valued
content, and multimedia objects, interpretations and the provenance graph
are registered beside them.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blob.store import BlobStore
from repro.core.composition import MultimediaObject
from repro.core.interpretation import Interpretation
from repro.core.media_object import MediaObject
from repro.core.media_types import MediaKind
from repro.core.provenance import ProvenanceGraph
from repro.errors import CatalogError
from repro.obs.instrument import Instrumented, Observability


class CatalogEntry:
    """One cataloged media object with its domain attributes."""

    def __init__(self, obj: MediaObject, attributes: dict[str, Any]):
        self.object = obj
        self.attributes = dict(attributes)

    def matches(self, **filters: Any) -> bool:
        for key, expected in filters.items():
            if self.attributes.get(key) != expected:
                return False
        return True

    def __repr__(self) -> str:
        return f"CatalogEntry({self.object.name!r}, {self.attributes})"


class MediaDatabase(Instrumented):
    """A catalog of BLOBs, interpretations, media and multimedia objects.

    Instrumentable: an attached sink counts catalog lookups and misses,
    and records each :meth:`objects` query's candidate/match counts —
    filter selectivity, the input to any future index decision. The
    sink propagates to the blob store and to cataloged interpretations.
    """

    def __init__(self, name: str = "media-db",
                 blob_store: BlobStore | None = None,
                 obs: Observability | None = None):
        self.name = name
        self.blobs = blob_store or BlobStore()
        self.provenance = ProvenanceGraph()
        self._entries: dict[str, CatalogEntry] = {}
        self._interpretations: dict[str, Interpretation] = {}
        self._multimedia: dict[str, MultimediaObject] = {}
        if obs is not None:
            self.instrument(obs)

    def _instrument_children(self, obs: Observability) -> None:
        self.blobs.instrument(obs)
        for interpretation in self._interpretations.values():
            interpretation.instrument(obs)

    # -- media objects -----------------------------------------------------------

    def add_object(self, obj: MediaObject, *, verify: bool = False,
                   **attributes: Any) -> CatalogEntry:
        """Catalog a media object with domain attributes.

        The object's derivation lineage (if any) is registered in the
        provenance graph automatically. With ``verify`` the static
        graph checker runs first and a structurally broken object
        (derivation cycle, dangling input, kind mismatch) is refused
        with :class:`~repro.errors.PlanRejectedError` instead of
        poisoning the catalog.
        """
        if obj.name in self._entries:
            raise CatalogError(f"object {obj.name!r} already cataloged")
        if verify:
            self._verify(obj)
        entry = CatalogEntry(obj, attributes)
        self._entries[obj.name] = entry
        self.provenance.register(obj)
        return entry

    def get_object(self, name: str) -> MediaObject:
        return self._entry(name).object

    def attributes_of(self, name: str) -> dict[str, Any]:
        return dict(self._entry(name).attributes)

    def set_attribute(self, name: str, key: str, value: Any) -> None:
        self._entry(name).attributes[key] = value

    @staticmethod
    def _verify(target) -> None:
        """Refuse structurally broken graphs at the catalog door."""
        from repro.analysis.graph import blocking_diagnostics, check_media_graph
        from repro.errors import PlanRejectedError

        report = check_media_graph(target)
        blocking = blocking_diagnostics(report, "check")
        if blocking:
            raise PlanRejectedError(
                f"refusing to catalog {getattr(target, 'name', target)!r}: "
                + "; ".join(str(d) for d in blocking),
                diagnostics=tuple(blocking),
            )

    def _entry(self, name: str) -> CatalogEntry:
        self._obs.metrics.counter("query.catalog.lookups").inc()
        try:
            return self._entries[name]
        except KeyError:
            self._obs.metrics.counter("query.catalog.misses").inc()
            raise CatalogError(
                f"no object named {name!r}; have: "
                f"{', '.join(sorted(self._entries)) or '(none)'}"
            ) from None

    def objects(
        self,
        kind: MediaKind | None = None,
        media_type: str | None = None,
        where: Callable[[CatalogEntry], bool] | None = None,
        **attribute_filters: Any,
    ) -> list[MediaObject]:
        """Select cataloged objects by kind, type and domain attributes."""
        with self._obs.tracer.span(
            "query.objects",
            filters=",".join(sorted(attribute_filters)) or "(none)",
        ) as span:
            result = []
            for entry in self._entries.values():
                obj = entry.object
                if kind is not None and obj.kind is not kind:
                    continue
                if media_type is not None and obj.media_type.name != media_type:
                    continue
                if not entry.matches(**attribute_filters):
                    continue
                if where is not None and not where(entry):
                    continue
                result.append(obj)
            metrics = self._obs.metrics
            metrics.counter("query.objects.calls").inc()
            metrics.counter("query.objects.candidates").inc(len(self._entries))
            metrics.counter("query.objects.matches").inc(len(result))
            span.set(candidates=len(self._entries), matches=len(result))
            return sorted(result, key=lambda o: o.name)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- interpretations ------------------------------------------------------------

    def add_interpretation(self, interpretation: Interpretation,
                           verify: bool = False) -> Interpretation:
        """Catalog an interpretation and its sequences as media objects.

        ``verify`` additionally runs the static graph checker (placement
        bounds are always validated, with or without it).
        """
        if interpretation.name in self._interpretations:
            raise CatalogError(
                f"interpretation {interpretation.name!r} already cataloged"
            )
        if verify:
            self._verify(interpretation)
        interpretation.validate()
        self._interpretations[interpretation.name] = interpretation
        if self._obs.enabled:
            interpretation.instrument(self._obs)
        for obj in interpretation.media_objects():
            if obj.name not in self._entries:
                self.add_object(obj, interpretation=interpretation.name)
        return interpretation

    def get_interpretation(self, name: str) -> Interpretation:
        try:
            return self._interpretations[name]
        except KeyError:
            raise CatalogError(f"no interpretation named {name!r}") from None

    def interpretations(self) -> list[str]:
        return sorted(self._interpretations)

    # -- multimedia objects -----------------------------------------------------------

    def add_multimedia(self, multimedia: MultimediaObject,
                       verify: bool = False) -> MultimediaObject:
        """Catalog a multimedia object; ``verify`` gates it behind the
        static graph checker (cycles and dangling inputs are refused)."""
        if multimedia.name in self._multimedia:
            raise CatalogError(
                f"multimedia object {multimedia.name!r} already cataloged"
            )
        if verify:
            self._verify(multimedia)
        self._multimedia[multimedia.name] = multimedia
        return multimedia

    def get_multimedia(self, name: str) -> MultimediaObject:
        try:
            return self._multimedia[name]
        except KeyError:
            raise CatalogError(f"no multimedia object named {name!r}") from None

    def multimedia(self) -> list[str]:
        return sorted(self._multimedia)

    # -- lineage queries ---------------------------------------------------------------

    def lineage(self, name: str) -> list[MediaObject]:
        """"Keep track of, and query, manipulations to media objects."""
        return self.provenance.lineage(self.get_object(name))

    def derived_from(self, name: str) -> list[MediaObject]:
        return self.provenance.descendants(self.get_object(name))

    # -- clip repositories --------------------------------------------------------

    def ingest_directory(self, path, pattern: str = "*.rmf") -> list[str]:
        """Ingest a directory of container files — §1.1's "clip media"
        repositories, "often loosely organized collections of files",
        brought under the catalog.

        Each matching file is loaded as an interpretation named after the
        file stem; its sequences are cataloged as ``<stem>/<sequence>``
        (different clips routinely reuse track names like ``video1``)
        with ``source_file`` attributes. Returns the interpretation
        names added, in file order.
        """
        import glob
        import os

        from repro.storage.container import read_container

        added = []
        for file_path in sorted(glob.glob(os.path.join(str(path), pattern))):
            stem = os.path.splitext(os.path.basename(file_path))[0]
            if stem in self._interpretations:
                raise CatalogError(
                    f"interpretation {stem!r} already cataloged; "
                    f"cannot ingest {file_path}"
                )
            interpretation = read_container(file_path)
            interpretation.name = stem
            interpretation.validate()
            self._interpretations[stem] = interpretation
            for obj in interpretation.media_objects():
                obj.name = f"{stem}/{obj.name}"
                self.add_object(
                    obj, interpretation=stem, source_file=file_path,
                )
            added.append(stem)
        return added

    def stats(self) -> dict[str, Any]:
        return {
            "objects": len(self._entries),
            "interpretations": len(self._interpretations),
            "multimedia_objects": len(self._multimedia),
            "derived_objects": sum(
                1 for e in self._entries.values() if e.object.is_derived
            ),
            "blob_store": self.blobs.stats(),
        }
