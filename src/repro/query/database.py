"""The media database catalog.

The paper's VideoClip example (§4): "a VideoClip object could possess, in
addition to character-valued attributes such as the title and name of the
director, a video-valued attribute containing the actual content". The
catalog models exactly that: media objects carry *domain attributes*
(title, director, language, topic...) alongside their media-valued
content, and multimedia objects, interpretations and the provenance graph
are registered beside them.

Queries run on one of two backends. The **linear** backend scans the
live Python objects — always available, always correct, the oracle. The
**indexed** backend (``MediaDatabase(index=True)``) writes every catalog
mutation through to a :class:`~repro.query.index.TemporalIndex` and
serves selections, temporal predicates and lineage axes from indexed
SQLite relations. Every dual-backend query takes ``backend="auto" |
"index" | "linear"``; ``auto`` uses the index when one is attached and
the query is expressible there, falling back to the linear scan
otherwise — so exotic filter values lose speed, never answers.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.blob.store import BlobStore
from repro.core.composition import MultimediaObject
from repro.core.interpretation import Interpretation
from repro.core.intervals import Interval
from repro.core.media_object import MediaObject
from repro.core.media_types import MediaKind
from repro.core.provenance import ProvenanceGraph
from repro.errors import CatalogError, QueryError, QueryIndexError
from repro.obs.instrument import Instrumented, Observability
from repro.query.index import TemporalIndex


class CatalogEntry:
    """One cataloged media object with its domain attributes."""

    def __init__(self, obj: MediaObject, attributes: dict[str, Any]):
        self.object = obj
        self.attributes = dict(attributes)

    def matches(self, **filters: Any) -> bool:
        for key, expected in filters.items():
            if self.attributes.get(key) != expected:
                return False
        return True

    def __repr__(self) -> str:
        return f"CatalogEntry({self.object.name!r}, {self.attributes})"


class MediaDatabase(Instrumented):
    """A catalog of BLOBs, interpretations, media and multimedia objects.

    With ``index=True`` (or ``index="/path/to.db"`` for a file-backed
    index) a :class:`~repro.query.index.TemporalIndex` shadows the
    catalog: mutations write through synchronously, and ``objects()``,
    the temporal predicates and the lineage axes gain an indexed fast
    path. The linear scan stays available via ``backend="linear"`` as
    the correctness oracle.

    Instrumentable: an attached sink counts catalog lookups and misses,
    and records each :meth:`objects` query's candidate/match counts —
    filter selectivity, the input to the index decision. The sink
    propagates to the blob store, cataloged interpretations and the
    index.
    """

    def __init__(self, name: str = "media-db",
                 blob_store: BlobStore | None = None,
                 obs: Observability | None = None,
                 index: bool | str = False):
        self.name = name
        self.blobs = blob_store or BlobStore()
        self.provenance = ProvenanceGraph()
        self._entries: dict[str, CatalogEntry] = {}
        self._interpretations: dict[str, Interpretation] = {}
        self._multimedia: dict[str, MultimediaObject] = {}
        self._index: TemporalIndex | None = None
        if index:
            path = index if isinstance(index, str) else ":memory:"
            self._index = TemporalIndex(path)
        if obs is not None:
            self.instrument(obs)

    @property
    def index(self) -> TemporalIndex | None:
        """The attached relational index, if any."""
        return self._index

    def _instrument_children(self, obs: Observability) -> None:
        self.blobs.instrument(obs)
        for interpretation in self._interpretations.values():
            interpretation.instrument(obs)
        if self._index is not None:
            self._index.instrument(obs)

    def _use_index(self, backend: str) -> bool:
        if backend not in ("auto", "index", "linear"):
            raise QueryError(
                f"unknown backend {backend!r}; use 'auto', 'index' or 'linear'"
            )
        if backend == "linear":
            return False
        if self._index is None:
            if backend == "index":
                raise QueryIndexError(
                    f"database {self.name!r} has no index; construct with "
                    "MediaDatabase(index=True)"
                )
            return False
        return True

    # -- media objects -----------------------------------------------------------

    def add_object(self, obj: MediaObject, *, verify: bool = False,
                   **attributes: Any) -> CatalogEntry:
        """Catalog a media object with domain attributes.

        The object's derivation lineage (if any) is registered in the
        provenance graph automatically. With ``verify`` the static
        graph checker runs first and a structurally broken object
        (derivation cycle, dangling input, kind mismatch) is refused
        with :class:`~repro.errors.PlanRejectedError` instead of
        poisoning the catalog. When an index is attached the object,
        its attributes and its derivation chain write through in the
        same call.
        """
        if obj.name in self._entries:
            raise CatalogError(f"object {obj.name!r} already cataloged")
        if verify:
            self._verify(obj)
        entry = CatalogEntry(obj, attributes)
        self._entries[obj.name] = entry
        self.provenance.register(obj)
        if self._index is not None:
            self._index.index_object(obj, entry.attributes)
            if obj.is_derived:
                self._index.index_provenance(obj)
        return entry

    def get_object(self, name: str) -> MediaObject:
        return self._entry(name).object

    def attributes_of(self, name: str) -> dict[str, Any]:
        return dict(self._entry(name).attributes)

    def set_attribute(self, name: str, key: str, value: Any) -> None:
        """Set one domain attribute, writing through to the index.

        Without the write-through an indexed query issued after the
        mutation would answer from the stale relation — the catalog and
        the index must never disagree.
        """
        self._entry(name).attributes[key] = value
        if self._index is not None:
            self._index.set_attribute(name, key, value)

    @staticmethod
    def _verify(target) -> None:
        """Refuse structurally broken graphs at the catalog door."""
        from repro.analysis.graph import blocking_diagnostics, check_media_graph
        from repro.errors import PlanRejectedError

        report = check_media_graph(target)
        blocking = blocking_diagnostics(report, "check")
        if blocking:
            raise PlanRejectedError(
                f"refusing to catalog {getattr(target, 'name', target)!r}: "
                + "; ".join(str(d) for d in blocking),
                diagnostics=tuple(blocking),
            )

    def _entry(self, name: str) -> CatalogEntry:
        self._obs.metrics.counter("query.catalog.lookups").inc()
        try:
            return self._entries[name]
        except KeyError:
            self._obs.metrics.counter("query.catalog.misses").inc()
            raise CatalogError(
                f"no object named {name!r}; have: "
                f"{', '.join(sorted(self._entries)) or '(none)'}"
            ) from None

    def objects(
        self,
        kind: MediaKind | None = None,
        media_type: str | None = None,
        where: Callable[[CatalogEntry], bool] | None = None,
        backend: str = "auto",
        **attribute_filters: Any,
    ) -> list[MediaObject]:
        """Select cataloged objects by kind, type and domain attributes.

        Name-sorted on both backends. ``where`` (an arbitrary Python
        predicate) always runs on the linear scan; attribute equality,
        kind and media-type filters use the index when attached.
        """
        if self._use_index(backend) and where is None:
            names = self._index.object_names(kind, media_type,
                                             attribute_filters)
            if names is not None:
                return [self._entries[name].object for name in names]
        with self._obs.tracer.span(
            "query.objects",
            filters=",".join(sorted(attribute_filters)) or "(none)",
        ) as span:
            result = []
            for entry in self._entries.values():
                obj = entry.object
                if kind is not None and obj.kind is not kind:
                    continue
                if media_type is not None and obj.media_type.name != media_type:
                    continue
                if not entry.matches(**attribute_filters):
                    continue
                if where is not None and not where(entry):
                    continue
                result.append(obj)
            metrics = self._obs.metrics
            metrics.counter("query.objects.calls").inc()
            metrics.counter("query.objects.candidates").inc(len(self._entries))
            metrics.counter("query.objects.matches").inc(len(result))
            span.set(candidates=len(self._entries), matches=len(result))
            return sorted(result, key=lambda o: o.name)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- interpretations ------------------------------------------------------------

    def add_interpretation(self, interpretation: Interpretation,
                           verify: bool = False) -> Interpretation:
        """Catalog an interpretation and its sequences as media objects.

        ``verify`` additionally runs the static graph checker (placement
        bounds are always validated, with or without it).
        """
        if interpretation.name in self._interpretations:
            raise CatalogError(
                f"interpretation {interpretation.name!r} already cataloged"
            )
        if verify:
            self._verify(interpretation)
        interpretation.validate()
        self._interpretations[interpretation.name] = interpretation
        if self._obs.enabled:
            interpretation.instrument(self._obs)
        for obj in interpretation.media_objects():
            if obj.name not in self._entries:
                self.add_object(obj, interpretation=interpretation.name)
        return interpretation

    def get_interpretation(self, name: str) -> Interpretation:
        try:
            return self._interpretations[name]
        except KeyError:
            raise CatalogError(f"no interpretation named {name!r}") from None

    def interpretations(self) -> list[str]:
        return sorted(self._interpretations)

    # -- multimedia objects -----------------------------------------------------------

    def add_multimedia(self, multimedia: MultimediaObject,
                       verify: bool = False) -> MultimediaObject:
        """Catalog a multimedia object; ``verify`` gates it behind the
        static graph checker (cycles and dangling inputs are refused).
        When an index is attached the composition tree is encoded
        immediately (and re-encoded lazily if the object's version
        counter later moves)."""
        if multimedia.name in self._multimedia:
            raise CatalogError(
                f"multimedia object {multimedia.name!r} already cataloged"
            )
        if verify:
            self._verify(multimedia)
        self._multimedia[multimedia.name] = multimedia
        if self._index is not None:
            self._index.ensure_multimedia(multimedia)
        return multimedia

    def get_multimedia(self, name: str) -> MultimediaObject:
        try:
            return self._multimedia[name]
        except KeyError:
            raise CatalogError(f"no multimedia object named {name!r}") from None

    def multimedia(self) -> list[str]:
        return sorted(self._multimedia)

    def refresh_index(self) -> None:
        """Force re-encoding of every cataloged composition.

        Top-level ``add`` calls are caught automatically through the
        version counter; mutations *inside* nested component objects
        are not visible from the root, so call this after editing a
        composition's interior.
        """
        if self._index is None:
            raise QueryIndexError(
                f"database {self.name!r} has no index to refresh"
            )
        for multimedia in self._multimedia.values():
            self._index.reindex_multimedia(multimedia)

    # -- temporal predicates -----------------------------------------------------------

    def _indexed_multimedia(self, name: str) -> MultimediaObject:
        multimedia = self.get_multimedia(name)
        self._index.ensure_multimedia(multimedia)
        return multimedia

    def components_overlapping(self, name: str, label: str,
                               backend: str = "auto") -> list[str]:
        """Labels of ``name``'s components sharing time with ``label``."""
        from repro.query import temporal

        if self._use_index(backend):
            self._indexed_multimedia(name)
            return self._index.components_overlapping(name, label)
        return temporal.components_overlapping(self.get_multimedia(name), label)

    def components_during(self, name: str, start, end,
                          backend: str = "auto") -> list[str]:
        """Labels of ``name``'s components intersecting ``[start, end)``."""
        from repro.query import temporal

        if self._use_index(backend):
            self._indexed_multimedia(name)
            return self._index.components_during(name, start, end)
        return temporal.components_during(self.get_multimedia(name), start, end)

    def occurrences_of(self, object_name: str, backend: str = "auto",
                       ) -> list[tuple[str, str, Interval]]:
        """Every leaf placement of ``object_name`` across all cataloged
        compositions: ``(multimedia, path, absolute interval)`` in
        (multimedia name, document order)."""
        if self._use_index(backend):
            for multimedia in self._multimedia.values():
                self._index.ensure_multimedia(multimedia)
            return self._index.occurrences_of(object_name)
        result = []
        for mm_name in sorted(self._multimedia):
            for path, obj, interval in self._multimedia[mm_name].flatten():
                if obj.name == object_name:
                    result.append((mm_name, path, interval))
        return result

    def component_descendants(self, name: str, path: str = "",
                              backend: str = "auto") -> list[str]:
        """Paths of every relationship below ``path`` in ``name``'s
        composition tree, document order. An empty path addresses the
        root (the whole tree)."""
        if self._use_index(backend):
            self._indexed_multimedia(name)
            return self._index.component_descendants(name, path)
        multimedia = self.get_multimedia(name)
        all_paths = _composition_paths(multimedia)
        if path == "":
            return [p for p, _ in all_paths]
        for i, (p, post) in enumerate(all_paths):
            if p == path:
                return [q for q, _ in all_paths[i + 1:post]]
        raise QueryError(f"{name!r} has no component path {path!r}")

    def duration_rollup(self, name: str) -> list[dict[str, Any]]:
        """Window-function duration statistics over ``name``'s top-level
        components (indexed backends only)."""
        if self._index is None:
            raise QueryIndexError(
                "duration_rollup needs an index; construct with "
                "MediaDatabase(index=True)"
            )
        self._indexed_multimedia(name)
        return self._index.duration_rollup(name)

    def fidelity_rollup(self) -> list[dict[str, Any]]:
        """Catalog-wide kind/media-type quality census (indexed only)."""
        if self._index is None:
            raise QueryIndexError(
                "fidelity_rollup needs an index; construct with "
                "MediaDatabase(index=True)"
            )
        return self._index.fidelity_rollup()

    # -- lineage queries ---------------------------------------------------------------

    def lineage(self, name: str,
                backend: str = "auto") -> list[MediaObject]:
        """"Keep track of, and query, manipulations to media objects."

        Transitive derivation inputs of ``name``, nearest first (ties
        by name then object id) on both backends.
        """
        obj = self.get_object(name)
        if self._use_index(backend):
            return [self.provenance.get(node)
                    for node, _, _ in self._index.ancestors_of(obj.object_id)]
        return _ranked(self.provenance, obj,
                       self.provenance.lineage(obj), "up")

    def derived_from(self, name: str,
                     backend: str = "auto") -> list[MediaObject]:
        """Objects transitively derived from ``name``, nearest first."""
        obj = self.get_object(name)
        if self._use_index(backend):
            return [self.provenance.get(node)
                    for node, _, _ in self._index.descendants_of(obj.object_id)]
        return _ranked(self.provenance, obj,
                       self.provenance.descendants(obj), "down")

    # -- clip repositories --------------------------------------------------------

    def ingest_directory(self, path, pattern: str = "*.rmf",
                         verify: bool = False) -> list[str]:
        """Ingest a directory of container files — §1.1's "clip media"
        repositories, "often loosely organized collections of files",
        brought under the catalog.

        Each matching file is loaded as an interpretation named after the
        file stem; its sequences are cataloged as ``<stem>/<sequence>``
        (different clips routinely reuse track names like ``video1``)
        with ``source_file`` attributes. Returns the interpretation
        names added, in file order.

        Ingest is **per-file atomic**: every check for a file runs
        before its first catalog mutation, so a failing file leaves no
        partial state (files ingested before it remain cataloged). The
        loaded interpretation is **copied on rename** — the container's
        objects are never mutated in place, so callers holding
        references to a previously loaded interpretation see no
        aliasing and a retried ingest cannot double-prefix names.
        ``verify`` gates each file behind the static graph checker,
        exactly like :meth:`add_interpretation`.
        """
        import glob
        import os

        from repro.storage.container import read_container

        added = []
        with self._obs.tracer.span(
            "query.ingest", directory=str(path), pattern=pattern,
        ) as span:
            for file_path in sorted(
                glob.glob(os.path.join(str(path), pattern))
            ):
                stem = os.path.splitext(os.path.basename(file_path))[0]
                try:
                    self._ingest_file(file_path, stem, verify)
                except Exception:
                    self._obs.metrics.counter("query.ingest.failures").inc(
                        file=os.path.basename(file_path)
                    )
                    span.set(ingested=len(added), failed_at=stem)
                    raise
                added.append(stem)
            span.set(ingested=len(added))
        return added

    def _ingest_file(self, file_path: str, stem: str, verify: bool) -> None:
        """Load, validate and catalog one container file atomically.

        Order matters: every raise happens before the first mutation.
        """
        from repro.storage.container import read_container

        if stem in self._interpretations:
            raise CatalogError(
                f"interpretation {stem!r} already cataloged; "
                f"cannot ingest {file_path}"
            )
        source = read_container(file_path)
        # Copy-on-rename: a fresh Interpretation over the same BLOB and
        # sequence tables, named after the file stem. ``source`` (and
        # anything aliasing it) is never touched.
        interpretation = Interpretation(source.blob, stem)
        for sequence_name in source.names():
            interpretation.add_sequence(source.sequence(sequence_name))
        interpretation.validate()
        if verify:
            self._verify(interpretation)
        objects = interpretation.media_objects()
        for obj in objects:
            # Fresh InterpretedMediaObject instances — renaming them
            # cannot alias any caller-visible object.
            obj.name = f"{stem}/{obj.name}"
            if obj.name in self._entries:
                raise CatalogError(
                    f"object {obj.name!r} already cataloged; "
                    f"cannot ingest {file_path}"
                )
        # All checks passed — commit.
        self._interpretations[stem] = interpretation
        if self._obs.enabled:
            interpretation.instrument(self._obs)
        for obj in objects:
            self.add_object(obj, interpretation=stem, source_file=file_path)
        metrics = self._obs.metrics
        metrics.counter("query.ingest.files").inc()
        metrics.counter("query.ingest.objects").inc(len(objects))

    def stats(self) -> dict[str, Any]:
        stats = {
            "objects": len(self._entries),
            "interpretations": len(self._interpretations),
            "multimedia_objects": len(self._multimedia),
            "derived_objects": sum(
                1 for e in self._entries.values() if e.object.is_derived
            ),
            "blob_store": self.blobs.stats(),
        }
        if self._index is not None:
            stats["index"] = self._index.census()
        return stats


def _ranked(provenance: ProvenanceGraph, obj: MediaObject,
            related: list[MediaObject], direction: str) -> list[MediaObject]:
    """Order a lineage/descendants result by (depth, name, object id).

    BFS order depends on dict insertion history; both backends instead
    rank by minimum derivation distance with deterministic tie-breaks,
    so indexed and linear answers are byte-identical.
    """
    step = (provenance.antecedents if direction == "up"
            else provenance.derivatives)
    depth: dict[str, int] = {obj.object_id: 0}
    frontier = [obj]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in step(node):
                if neighbor.object_id not in depth:
                    depth[neighbor.object_id] = depth[node.object_id] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return sorted(
        related,
        key=lambda o: (depth.get(o.object_id, len(depth)), o.name,
                       o.object_id),
    )


def _composition_paths(multimedia: MultimediaObject) -> list[tuple[str, int]]:
    """All relationship paths in document (pre) order.

    Each entry is ``(path, subtree_end)`` where ``subtree_end`` is the
    index one past the node's last descendant — the linear mirror of
    the index's pre/post range.
    """
    result: list[tuple[str, int]] = []

    def walk(node: MultimediaObject, prefix: str) -> None:
        for r in node.relationships:
            path = f"{prefix}/{r.label}" if prefix else r.label
            slot = len(result)
            result.append((path, 0))
            if isinstance(r.component, MultimediaObject):
                walk(r.component, path)
            result[slot] = (path, len(result))

    walk(multimedia, "")
    return result
