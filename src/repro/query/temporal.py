"""Temporal predicates over multimedia compositions.

Queries in the style of "what is on screen while the narration plays":
Allen-relation filters over a multimedia object's timeline (Definition 7
plus the interval algebra of :mod:`repro.core.intervals`).

Each scan-based predicate accepts an optional ``index=`` — a
:class:`~repro.query.index.TemporalIndex` — and then answers from the
indexed relations (candidate narrowing through the float B-tree, exact
rational re-check) instead of walking the timeline. Results are
identical on both paths; the linear scan is the oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.composition import MultimediaObject
from repro.core.intervals import Interval, IntervalRelation, relate
from repro.core.rational import as_rational
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.index import TemporalIndex


def components_overlapping(multimedia: MultimediaObject, label: str,
                           index: "TemporalIndex | None" = None) -> list[str]:
    """Labels of components sharing any presentation time with ``label``."""
    if index is not None:
        index.ensure_multimedia(multimedia)
        return index.components_overlapping(multimedia.name, label)
    target = _interval_of(multimedia, label)
    result = []
    for other_label, interval in multimedia.timeline():
        if other_label == label:
            continue
        if interval.intersects(target):
            result.append(other_label)
    return result


def components_during(multimedia: MultimediaObject, start, end,
                      index: "TemporalIndex | None" = None) -> list[str]:
    """Labels of components presented (at least partly) within [start, end)."""
    if index is not None:
        index.ensure_multimedia(multimedia)
        return index.components_during(multimedia.name, start, end)
    window = Interval(as_rational(start), as_rational(end))
    return [
        label for label, interval in multimedia.timeline()
        if interval.intersects(window)
    ]


def relation_matrix(
    multimedia: MultimediaObject,
) -> dict[tuple[str, str], IntervalRelation]:
    """The Allen relation between every ordered pair of components."""
    timeline = multimedia.timeline()
    matrix: dict[tuple[str, str], IntervalRelation] = {}
    for label_a, interval_a in timeline:
        for label_b, interval_b in timeline:
            if label_a == label_b:
                continue
            matrix[(label_a, label_b)] = relate(interval_a, interval_b)
    return matrix


def gaps_in_presentation(multimedia: MultimediaObject) -> list[Interval]:
    """Timeline ranges where no component is presented."""
    timeline = sorted(multimedia.timeline(), key=lambda x: x[1].start)
    gaps: list[Interval] = []
    cursor = None
    for _, interval in timeline:
        if cursor is None:
            cursor = interval.end
            continue
        if interval.start > cursor:
            gaps.append(Interval(cursor, interval.start))
        cursor = max(cursor, interval.end)
    return gaps


def _interval_of(multimedia: MultimediaObject, label: str) -> Interval:
    for other_label, interval in multimedia.timeline():
        if other_label == label:
            return interval
    raise QueryError(f"{multimedia.name!r} has no component {label!r}")
