"""Deterministic observability: metrics, spans and the hook protocol.

The storage/engine/query stack simulates time exactly — fault schedules
are pure functions of a seed, playback arithmetic is rational — so its
observability can be exact too. This package records *what happened
inside* a run (per-page read counts, retry/backoff spans, buffer
high-water marks, expansion costs, query selectivity) without breaking
that determinism: same seed, byte-identical trace and metric exports.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms;
* :mod:`repro.obs.tracing` — :class:`Tracer` whose timestamps come from
  a simulated clock or a monotonic :class:`LogicalClock`, never the
  wall clock;
* :mod:`repro.obs.instrument` — :class:`Observability` (the bundle) and
  the :class:`Instrumented` mixin the stack's classes adopt;
* :mod:`repro.obs.export` — nested-dict, JSON-lines and aligned-table
  exporters.

Usage::

    from repro.obs import Observability
    from repro.obs.export import to_table

    obs = Observability()
    player = Player(cost_model, obs=obs)
    player.play(interpretation)
    print(to_table(obs))
"""

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import LogicalClock, Span, TraceContext, Tracer
from repro.obs.events import (
    DEFAULT_EVENT_CAPACITY,
    Event,
    FlightRecorder,
    Severity,
)
from repro.obs.instrument import (
    NULL_OBS,
    Instrumented,
    NullObservability,
    Observability,
)
from repro.obs.slo import (
    Slo,
    SloPolicy,
    SloVerdict,
    default_slo_policy,
    report_measurements,
    worst_verdicts,
)
from repro.obs.profile import (
    STAGE_BUCKETS,
    STAGE_METRIC,
    STAGES,
    PipelineProfile,
    SpanSelfTime,
    StageStats,
    profile_stages,
    self_time_breakdown,
    self_time_table,
)
from repro.obs.export import (
    events_to_table,
    metrics_rows,
    spans_to_table,
    to_chrome_trace,
    to_dict,
    to_json_lines,
    to_table,
    trace_events,
)
# Telemetry is re-exported lazily (PEP 562): it is the one obs module
# that needs repro.core (exact-rational scrape times), and repro.core
# reaches back through repro.blob into this package at import time —
# an eager import here would be a cycle for anyone importing
# repro.blob first.
_TELEMETRY_NAMES = frozenset({
    "DEFAULT_SCRAPE_INTERVAL",
    "Alert",
    "AlertManager",
    "BurnRateRule",
    "Telemetry",
    "TelemetryStore",
    "default_burn_rate_rules",
})


def __getattr__(name):
    if name in _TELEMETRY_NAMES:
        from repro.obs import telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")


__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LogicalClock",
    "Span",
    "TraceContext",
    "Tracer",
    "DEFAULT_EVENT_CAPACITY",
    "Event",
    "FlightRecorder",
    "Severity",
    "NULL_OBS",
    "Instrumented",
    "NullObservability",
    "Observability",
    "Slo",
    "SloPolicy",
    "SloVerdict",
    "default_slo_policy",
    "report_measurements",
    "worst_verdicts",
    "STAGE_BUCKETS",
    "STAGE_METRIC",
    "STAGES",
    "PipelineProfile",
    "SpanSelfTime",
    "StageStats",
    "profile_stages",
    "self_time_breakdown",
    "self_time_table",
    "events_to_table",
    "metrics_rows",
    "spans_to_table",
    "to_chrome_trace",
    "to_dict",
    "to_json_lines",
    "to_table",
    "trace_events",
    "DEFAULT_SCRAPE_INTERVAL",
    "Alert",
    "AlertManager",
    "BurnRateRule",
    "Telemetry",
    "TelemetryStore",
    "default_burn_rate_rules",
]
