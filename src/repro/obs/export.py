"""Snapshot exporters: nested dict, JSON lines, aligned text table.

All three formats are deterministic renderings of the same nested-dict
snapshot (:meth:`repro.obs.instrument.Observability.snapshot`): keys are
sorted, timestamps are exact strings or logical ticks, floats keep their
``repr``. Byte-identical runs produce byte-identical exports in every
format — asserted by the test suite, relied on by the benchmarks.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.obs.instrument import Observability


def to_dict(obs: Observability) -> dict[str, Any]:
    """The canonical nested-dict snapshot (metrics + spans)."""
    return obs.snapshot()


def to_json_lines(obs: Observability) -> str:
    """One JSON object per line: metrics first (sorted), then spans.

    Line shapes: ``{"metric": name, "type": ..., "series": [...]}`` and
    ``{"span": name, "span_id": ..., ...}``. Keys are sorted within
    every object, making the output stable enough to diff or hash.
    """
    lines = []
    snapshot = obs.snapshot()
    for name in sorted(snapshot["metrics"]):
        body = {"metric": name, **snapshot["metrics"][name]}
        lines.append(json.dumps(body, sort_keys=True))
    for span in snapshot["spans"]:
        lines.append(json.dumps({"span": span["name"], **span},
                                sort_keys=True))
    return "\n".join(lines)


def _format_labels(labels: Mapping[str, Any] | None) -> str:
    if not labels:
        return ""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def _format_value(entry: Mapping[str, Any]) -> str:
    value = entry["value"]
    if isinstance(value, Mapping):  # histogram
        return (
            f"count={value['count']} sum={value['sum']:.6g} "
            f"buckets={value['counts']}"
        )
    return str(value)


def metrics_rows(obs: Observability) -> list[tuple[str, str, str, str]]:
    """Flatten a snapshot to ``(metric, type, labels, value)`` rows."""
    rows = []
    for name, body in sorted(obs.snapshot()["metrics"].items()):
        for entry in body["series"]:
            rows.append((
                name,
                body["type"],
                _format_labels(entry.get("labels")),
                _format_value(entry),
            ))
    return rows


def to_table(obs: Observability, title: str | None = None) -> str:
    """Aligned text table of every metric series, benchmark-style."""
    from repro.bench.reporting import table_text

    return table_text(
        ("metric", "type", "labels", "value"),
        metrics_rows(obs),
        title=title,
    )


def spans_to_table(obs: Observability, title: str | None = None,
                   limit: int | None = None) -> str:
    """Aligned text table of recorded spans (first ``limit`` rows)."""
    from repro.bench.reporting import table_text

    spans = obs.snapshot()["spans"]
    shown = spans if limit is None else spans[:limit]
    rows = [
        (
            span["span_id"],
            "" if span["parent_id"] is None else span["parent_id"],
            span["name"],
            span["start"],
            span["end"],
            _format_labels(span["attributes"]),
        )
        for span in shown
    ]
    return table_text(
        ("id", "parent", "span", "start", "end", "attributes"),
        rows,
        title=title,
    )
