"""Snapshot exporters: nested dict, JSON lines, tables, Chrome traces.

All formats are deterministic renderings of the same nested-dict
snapshot (:meth:`repro.obs.instrument.Observability.snapshot`): keys are
sorted, timestamps are exact strings or logical ticks, floats keep their
``repr``. Byte-identical runs produce byte-identical exports in every
format — asserted by the test suite, relied on by the benchmarks.

:func:`to_chrome_trace` renders spans and flight-recorder events in the
Chrome ``trace_event`` JSON format, loadable in ``chrome://tracing`` or
Perfetto; see its docstring for the time/track mapping.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.obs.events import events_rows
from repro.obs.instrument import Observability
from repro.obs.metrics import export_value


def to_dict(obs: Observability) -> dict[str, Any]:
    """The canonical nested-dict snapshot (metrics + spans + events)."""
    return obs.snapshot()


def to_json_lines(obs: Observability) -> str:
    """One JSON object per line: metrics (sorted), spans, then events.

    Line shapes: ``{"metric": name, "type": ..., "series": [...]}``,
    ``{"span": name, "span_id": ..., ...}`` and ``{"event": name,
    "seq": ..., ...}``. Keys are sorted within every object, making the
    output stable enough to diff or hash.
    """
    lines = []
    snapshot = obs.snapshot()
    for name in sorted(snapshot["metrics"]):
        body = {"metric": name, **snapshot["metrics"][name]}
        lines.append(json.dumps(body, sort_keys=True))
    for span in snapshot["spans"]:
        lines.append(json.dumps({"span": span["name"], **span},
                                sort_keys=True))
    for event in snapshot["events"]:
        lines.append(json.dumps({"event": event["name"], **event},
                                sort_keys=True))
    return "\n".join(lines)


def _format_labels(labels: Mapping[str, Any] | None) -> str:
    if not labels:
        return ""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def _format_value(entry: Mapping[str, Any]) -> str:
    value = entry["value"]
    if isinstance(value, Mapping):  # histogram
        return (
            f"count={value['count']} sum={value['sum']:.6g} "
            f"buckets={value['counts']}"
        )
    return str(value)


def metrics_rows(obs: Observability) -> list[tuple[str, str, str, str]]:
    """Flatten a snapshot to ``(metric, type, labels, value)`` rows."""
    rows = []
    for name, body in sorted(obs.snapshot()["metrics"].items()):
        for entry in body["series"]:
            rows.append((
                name,
                body["type"],
                _format_labels(entry.get("labels")),
                _format_value(entry),
            ))
    return rows


def to_table(obs: Observability, title: str | None = None) -> str:
    """Aligned text table of every metric series, benchmark-style."""
    from repro.bench.reporting import table_text

    return table_text(
        ("metric", "type", "labels", "value"),
        metrics_rows(obs),
        title=title,
    )


def spans_to_table(obs: Observability, title: str | None = None,
                   limit: int | None = None) -> str:
    """Aligned text table of recorded spans (first ``limit`` rows)."""
    from repro.bench.reporting import table_text

    spans = obs.snapshot()["spans"]
    shown = spans if limit is None else spans[:limit]
    rows = [
        (
            span["span_id"],
            "" if span["parent_id"] is None else span["parent_id"],
            span["name"],
            span["start"],
            span["end"],
            _format_labels(span["attributes"]),
        )
        for span in shown
    ]
    return table_text(
        ("id", "parent", "span", "start", "end", "attributes"),
        rows,
        title=title,
    )


def events_to_table(obs: Observability, title: str | None = None,
                    min_severity=None, limit: int | None = None) -> str:
    """Aligned text table of flight-recorder events (newest last)."""
    from repro.bench.reporting import table_text

    events = obs.events.events(min_severity=min_severity)
    if limit is not None:
        events = events[-limit:]
    return table_text(
        ("seq", "at", "severity", "component", "event", "attributes"),
        events_rows(events),
        title=title,
    )


def _trace_ts(value: Any) -> float:
    """A trace_event timestamp (microseconds) from a recorded time.

    Logical ticks map to one microsecond each; simulated clock values
    (exact rationals) are seconds and scale by 10**6. Both conversions
    are deterministic for identical inputs.
    """
    if isinstance(value, int):
        return float(value)
    return float(value) * 1_000_000.0


def _time_domain(value: Any) -> str:
    return "logical" if isinstance(value, int) else "simulated"


def trace_events(obs: Observability) -> list[dict[str, Any]]:
    """Chrome ``trace_event`` rows for the recorded spans and events.

    Mapping:

    * every finished span becomes a complete ("X") event with ``ts`` /
      ``dur`` in microseconds;
    * track (``tid``) assignment is by correlation first: a span or
      event carrying a ``trace_id`` attribute (stamped by
      :class:`~repro.obs.tracing.TraceContext`) lands on that trace's
      own track regardless of which component recorded it — one
      causally-linked per-session track across router, shards, player
      and page store. A ``scope`` attribute (a fleet shard's tagged
      view) is the next tiebreak, giving each shard a stable track;
    * otherwise the structural fallback keeps nesting well-formed
      despite the two time domains: a span shares a track with its
      nearest ancestor in a *different* time domain (so one VOD
      session's simulated spans land on that session's track), falling
      back to its tree root — per-session playbacks that all start at
      simulated t=0 therefore never interleave on one track;
    * flight-recorder events become instant ("i") events on one track
      per trace / (component, time-domain);
    * the full list is sorted by ``(ts, -dur)``, so ``ts`` is monotonic
      on every track and an enclosing span always precedes its
      same-time-domain children (a cross-domain parent lives on a
      different track, where ordering against its children is
      meaningless).
    """
    spans = [s for s in obs.tracer.spans if s.end is not None]
    by_id = {s.span_id: s for s in spans}

    def anchor(span) -> tuple:
        """Track key: trace id, scope, nearest differing-domain
        ancestor, else tree root."""
        domain = _time_domain(span.start)
        trace_id = span.attributes.get("trace_id")
        if trace_id is not None:
            return ("trace", str(trace_id))
        scope = span.attributes.get("scope")
        if scope is not None:
            return ("scope", str(scope), domain)
        node = span
        root = span
        while node.parent_id is not None and node.parent_id in by_id:
            node = by_id[node.parent_id]
            root = node
            if _time_domain(node.start) != domain:
                return ("span", node.span_id, domain)
        return ("span", root.span_id, domain)

    track_ids: dict[tuple, int] = {}

    def tid_for(key: tuple) -> int:
        if key not in track_ids:
            track_ids[key] = len(track_ids) + 1
        return track_ids[key]

    rows: list[dict[str, Any]] = []
    for span in spans:
        start = _trace_ts(span.start)
        duration = max(_trace_ts(span.end) - start, 0.0)
        args: dict[str, Any] = {
            key: export_value(span.attributes[key])
            for key in sorted(span.attributes)
        }
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        rows.append({
            "name": span.name,
            "cat": _time_domain(span.start),
            "ph": "X",
            "ts": start,
            "dur": duration,
            "pid": 1,
            "tid": tid_for(anchor(span)),
            "args": args,
        })
    for event in obs.events.events():
        args = {
            key: export_value(event.attributes[key])
            for key in sorted(event.attributes)
        }
        args["seq"] = event.seq
        args["severity"] = event.severity.name
        trace_id = event.attributes.get("trace_id")
        if trace_id is not None:
            event_key: tuple = ("trace", str(trace_id))
        else:
            event_key = ("events", event.component,
                         _time_domain(event.at))
        rows.append({
            "name": f"{event.component}:{event.name}",
            "cat": event.severity.name,
            "ph": "i",
            "s": "t",
            "ts": _trace_ts(event.at),
            "pid": 1,
            "tid": tid_for(event_key),
            "args": args,
        })
    rows.sort(key=lambda r: (r["ts"], -r.get("dur", 0.0)))
    names = []
    for key, tid in sorted(track_ids.items(), key=lambda kv: kv[1]):
        if key[0] == "trace":
            label = f"trace:{key[1]}"
        elif key[0] == "scope":
            label = f"scope:{key[1]}:{key[2]}"
        elif key[0] == "span":
            root = by_id[key[1]]
            label = f"{key[2]}:{root.name}#{root.span_id}"
        else:
            label = f"events:{key[1]}:{key[2]}"
        names.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": label},
        })
    return names + rows


def to_chrome_trace(obs: Observability) -> str:
    """The trace_event JSON document (chrome://tracing / Perfetto)."""
    return json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": trace_events(obs)},
        sort_keys=True,
    )
