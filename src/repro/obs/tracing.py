"""Deterministic span tracing.

A :class:`Tracer` records :class:`Span` rows — named, timestamped,
attributed intervals — for retries, backoffs, expansions and query
evaluations. Timestamps never come from the wall clock: they are either

* supplied explicitly by the instrumented code from its *simulated*
  clock (the playback engine's exact rational time), via
  :meth:`Tracer.record`; or
* drawn from a :class:`LogicalClock` — a monotonic counter that ticks
  once per observation — for code with no simulated time of its own,
  via :meth:`Tracer.span` / :meth:`Tracer.event`.

Either way a same-seed run replays the same sequence of observations
and therefore the same timestamps, so exported traces are bit-identical
across runs (the determinism the fault plans already guarantee for
storage behaviour).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Callable

from repro.obs.metrics import export_value


class LogicalClock:
    """A monotonic logical counter standing in for time.

    ``tick()`` advances and returns the counter; ``now()`` peeks. The
    unit is "observations so far", which is meaningless as a duration
    but totally ordered and perfectly reproducible.
    """

    def __init__(self, start: int = 0):
        self._now = start

    def now(self) -> int:
        return self._now

    def tick(self) -> int:
        self._now += 1
        return self._now

    def __repr__(self) -> str:
        return f"LogicalClock(t={self._now})"


@dataclass(frozen=True)
class TraceContext:
    """Identity of one causally-linked unit of work.

    The ``trace_id`` stamps every span and event recorded while the
    context is pushed (via :meth:`Tracer.push_context` /
    :meth:`~repro.obs.events.FlightRecorder.push_context`, usually
    through :meth:`~repro.obs.instrument.Observability.trace`), so a
    session crossing router → shard → player → page store renders as
    one correlated track in the Chrome-trace export.

    Derived, never random: :meth:`for_session` hashes the session's
    request identity, so same-seed runs mint identical ids.
    """

    trace_id: str
    client: str | None = None
    title: str | None = None

    @classmethod
    def for_session(cls, client: str, title: str) -> "TraceContext":
        digest = blake2b(
            f"{client}\x00{title}".encode(), digest_size=8,
        ).hexdigest()
        return cls(trace_id=digest, client=client, title=title)

    def attributes(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id}


@dataclass
class Span:
    """One recorded interval: name, [start, end], attributes.

    ``span_id`` is assigned in creation order; ``parent_id`` links
    nested spans (None at the root). Times are whatever the clock
    supplied — exact :class:`~repro.core.rational.Rational` seconds from
    a simulated clock, or logical ticks.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: Any
    end: Any = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def export(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": export_value(self.start),
            "end": export_value(self.end),
            "attributes": {
                key: export_value(self.attributes[key])
                for key in sorted(self.attributes)
            },
        }


class Tracer:
    """Collects spans; see the module docstring for the time contract."""

    def __init__(self, clock: Callable[[], Any] | None = None):
        """``clock`` overrides the time source for :meth:`span` /
        :meth:`event` (any zero-argument callable, e.g. a simulated
        clock's ``now``); by default a private :class:`LogicalClock`
        ticks once per observation."""
        self._logical = LogicalClock()
        self._clock = clock
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._context: list[TraceContext] = []

    def _time(self) -> Any:
        if self._clock is not None:
            return self._clock()
        return self._logical.tick()

    def _next_id(self) -> int:
        return len(self.spans)

    def push_context(self, context: TraceContext) -> None:
        """Stamp subsequent spans with ``context`` until popped."""
        self._context.append(context)

    def pop_context(self) -> TraceContext:
        return self._context.pop()

    def _open(self, name: str, start: Any, attributes: dict[str, Any]) -> Span:
        for frame in reversed(self._context):
            for key, value in frame.attributes().items():
                attributes.setdefault(key, value)
        span = Span(
            span_id=self._next_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=start,
            attributes=attributes,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any):
        """Context manager: a span from entry to exit, clock-timed.

        Yields the :class:`Span` so the body can attach attributes
        discovered mid-flight (``span.set(bytes=n)``).
        """
        span = self._open(name, self._time(), attributes)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self._time()

    def record(self, name: str, start: Any, end: Any,
               **attributes: Any) -> Span:
        """A completed span with explicit (simulated-time) endpoints."""
        span = self._open(name, start, attributes)
        span.end = end
        return span

    def event(self, name: str, at: Any = None, **attributes: Any) -> Span:
        """A zero-length span marking an instant."""
        moment = self._time() if at is None else at
        span = self._open(name, moment, attributes)
        span.end = moment
        return span

    def __len__(self) -> int:
        return len(self.spans)

    def named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def export(self) -> list[dict[str, Any]]:
        """Spans in creation order, each a sorted-key dict."""
        return [span.export() for span in self.spans]
