"""Declarative service-level objectives over simulated playback.

The paper's runtime claim — derivation and composition are only usable
if playback meets real-time deadlines (§4.2, §5) — becomes testable
once the deadlines are stated as objectives. An :class:`Slo` names one
measurable property of a playback run (startup latency, deadline-miss
rate, rebuffer ratio, delivered-quality floor), a threshold and a
direction; an :class:`SloPolicy` evaluates a set of them over one
:class:`~repro.engine.player.PlaybackReport`'s exact arithmetic and
returns :class:`SloVerdict` rows.

Alerting is burn-rate style: ``burn`` is how much of the objective's
error budget the measured value consumes (1.0 = exactly at threshold).
A verdict whose burn crosses ``warn_burn`` is a WARNING before the SLO
is even violated; a violated SLO is an ERROR, escalating to CRITICAL at
``critical_burn``. The :class:`~repro.engine.player.Player` records
each non-OK verdict as a flight-recorder event stamped with the
simulated clock, so the event log answers *when* a session started
burning its budget.

Everything here is arithmetic over the report's rationals and floats —
same-seed runs produce byte-identical verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.events import Severity

#: Measurement keys an :class:`Slo` may target. Each is derived from a
#: PlaybackReport by :func:`report_measurements`.
MEASUREMENTS = (
    "startup_seconds",
    "deadline_miss_rate",
    "rebuffer_ratio",
    "delivered_quality",
)


@dataclass(frozen=True, kw_only=True)
class Slo:
    """One objective: ``measurement`` must stay on the right side of
    ``threshold``.

    ``objective`` is the direction: ``"max"`` means the measurement
    must stay at or below the threshold (latency, miss rates),
    ``"min"`` means at or above (quality floors). ``warn_burn`` /
    ``critical_burn`` set the burn-rate alert thresholds.
    """

    name: str
    measurement: str
    threshold: float
    objective: str = "max"
    description: str = ""
    warn_burn: float = 0.75
    critical_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.measurement not in MEASUREMENTS:
            raise ObservabilityError(
                f"SLO {self.name!r} targets unknown measurement "
                f"{self.measurement!r}; have: {', '.join(MEASUREMENTS)}"
            )
        if self.objective not in ("max", "min"):
            raise ObservabilityError(
                f"SLO {self.name!r} objective must be 'max' or 'min', "
                f"got {self.objective!r}"
            )
        if self.threshold < 0:
            raise ObservabilityError(
                f"SLO {self.name!r} threshold must be non-negative"
            )
        if not 0 < self.warn_burn <= 1.0:
            raise ObservabilityError(
                f"SLO {self.name!r} warn_burn must be in (0, 1]"
            )
        if self.critical_burn < 1.0:
            raise ObservabilityError(
                f"SLO {self.name!r} critical_burn must be >= 1.0"
            )

    def burn(self, measured: float) -> float:
        """Error-budget consumption: 1.0 at the threshold exactly.

        For a ``max`` objective, burn = measured / threshold. For a
        ``min`` objective the budget is the allowed shortfall below
        1.0, so burn = (1 - measured) / (1 - threshold); a threshold of
        1.0 burns in whole units of violation instead.
        """
        if self.objective == "max":
            if self.threshold > 0:
                return measured / self.threshold
            return 0.0 if measured <= 0 else self.critical_burn
        budget = 1.0 - self.threshold
        shortfall = 1.0 - measured
        if budget > 0:
            return max(0.0, shortfall / budget)
        return 0.0 if shortfall <= 0 else self.critical_burn

    def evaluate(self, measured: float) -> "SloVerdict":
        if self.objective == "max":
            ok = measured <= self.threshold
        else:
            ok = measured >= self.threshold
        burn = self.burn(measured)
        if not ok:
            severity = (Severity.CRITICAL if burn >= self.critical_burn
                        else Severity.ERROR)
        elif burn >= self.warn_burn:
            severity = Severity.WARNING
        else:
            severity = Severity.INFO
        return SloVerdict(
            slo=self.name,
            measurement=self.measurement,
            measured=measured,
            threshold=self.threshold,
            objective=self.objective,
            ok=ok,
            burn=burn,
            severity=severity,
        )


@dataclass(frozen=True)
class SloVerdict:
    """Outcome of evaluating one SLO against one run."""

    slo: str
    measurement: str
    measured: float
    threshold: float
    objective: str
    ok: bool
    burn: float
    severity: Severity

    def export(self) -> dict:
        return {
            "slo": self.slo,
            "measurement": self.measurement,
            "measured": self.measured,
            "threshold": self.threshold,
            "objective": self.objective,
            "ok": self.ok,
            "burn": self.burn,
            "severity": self.severity.name,
        }

    def summary(self) -> str:
        status = "OK" if self.ok else self.severity.name
        sign = "<=" if self.objective == "max" else ">="
        return (
            f"{self.slo}: {status} "
            f"({self.measured:.6g} {sign} {self.threshold:.6g}, "
            f"burn {self.burn:.2f})"
        )


class SloPolicy:
    """An ordered set of SLOs evaluated together over one report."""

    def __init__(self, slos: list[Slo] | tuple[Slo, ...]):
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ObservabilityError(
                f"duplicate SLO names in policy: {names}"
            )
        self.slos = tuple(slos)

    def __len__(self) -> int:
        return len(self.slos)

    def __iter__(self):
        return iter(self.slos)

    def evaluate(self, measurements: dict[str, float]) -> list[SloVerdict]:
        verdicts = []
        for slo in self.slos:
            measured = measurements.get(slo.measurement)
            if measured is None:
                continue
            verdicts.append(slo.evaluate(measured))
        return verdicts

    def evaluate_report(self, report) -> list[SloVerdict]:
        """Evaluate against a :class:`~repro.engine.player.PlaybackReport`."""
        return self.evaluate(report_measurements(report))


def report_measurements(report) -> dict[str, float]:
    """The SLO measurement vector of one playback report.

    ``rebuffer_ratio`` is total per-element lateness over programme
    duration — the fraction of the presentation the viewer spent
    waiting past a deadline.
    """
    duration = report.duration
    if duration > 0 and report.per_read:
        total_late = sum(late for _, _, late in report.per_read)
        rebuffer = float(total_late / duration)
    else:
        rebuffer = 0.0
    return {
        "startup_seconds": float(report.startup_delay),
        "deadline_miss_rate": float(report.underrun_fraction),
        "rebuffer_ratio": rebuffer,
        "delivered_quality": float(report.delivered_quality),
    }


def default_slo_policy() -> SloPolicy:
    """The stock serving objectives, grounded in the paper's regime.

    Startup within 2 s (a 1994 optical drive's seek+spin budget; §4.1
    treats layout-induced startup as the tolerable cost of interleaved
    capture), at most 5% of deadlines missed (§5's jitter-removal claim
    presumes misses are rare enough to buffer away), at most 2% of the
    programme spent rebuffering, and delivered quality no lower than
    the 0.5 fraction §2.2's scalable streams can shed before the
    content stops being "the same" media object.
    """
    return SloPolicy([
        Slo(name="startup-latency", measurement="startup_seconds",
            threshold=2.0, objective="max",
            description="first-frame latency stays within 2 s"),
        Slo(name="deadline-miss-rate", measurement="deadline_miss_rate",
            threshold=0.05, objective="max",
            description="at most 5% of element deadlines are missed"),
        Slo(name="rebuffer-ratio", measurement="rebuffer_ratio",
            threshold=0.02, objective="max",
            description="at most 2% of the programme is spent waiting"),
        Slo(name="delivered-quality", measurement="delivered_quality",
            threshold=0.5, objective="min",
            description="scalable adaptation keeps at least half fidelity"),
    ])


def worst_verdicts(verdict_lists) -> list[SloVerdict]:
    """Per SLO name, the highest-burn verdict across many sessions.

    The aggregation :meth:`~repro.engine.vod.VodServer.health` reports:
    one row per objective, showing the worst any session did. Rows keep
    first-seen SLO order.
    """
    worst: dict[str, SloVerdict] = {}
    order: list[str] = []
    for verdicts in verdict_lists:
        for verdict in verdicts:
            if verdict.slo not in worst:
                order.append(verdict.slo)
                worst[verdict.slo] = verdict
            elif verdict.burn > worst[verdict.slo].burn:
                worst[verdict.slo] = verdict
    return [worst[name] for name in order]
