"""Stage-level pipeline profiler over the metrics/span record.

"Where did the time go?" has two deterministic answers in this stack:

* **Stage attribution** — the player decomposes every element's charged
  cost with the :class:`~repro.engine.player.CostModel` and observes the
  parts into the ``pipeline.stage_seconds`` histogram, labeled by
  pipeline stage: ``page_read`` (seek + transfer), ``decode`` (decoder
  work), ``derivation_expand`` (estimated cost of materializing derived
  components while planning), ``compose`` (temporal composition —
  pointer arithmetic in this model, so it counts components but charges
  zero simulated time), and ``deliver`` (time spent getting the stream
  out beyond raw read/decode work: startup buffering, retry backoffs,
  wasted fault probes). :func:`profile_stages` folds the histogram into
  per-stage totals, shares and deterministic p50/p99 quantiles.

* **Self-time breakdown** — :func:`self_time_breakdown` walks the span
  tree and charges each span name its total minus its children's
  durations (children on a different time domain — logical ticks under
  simulated seconds or vice versa — are skipped rather than subtracted
  across units).

Both views are pure functions of the observability record, so
same-seed runs profile byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.instrument import Observability
from repro.obs.metrics import Histogram, export_value

#: Pipeline stages in presentation order.
STAGES = ("page_read", "decode", "derivation_expand", "compose", "deliver")

#: The histogram the player observes per-stage seconds into.
STAGE_METRIC = "pipeline.stage_seconds"

#: Fixed per-stage time boundaries (seconds): sub-0.1 ms decode slices
#: through multi-second recovery stalls.
STAGE_BUCKETS: tuple[float, ...] = (
    0.00001, 0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


@dataclass(frozen=True)
class StageStats:
    """One stage's attribution: how often, how long, how skewed."""

    stage: str
    count: int
    total_seconds: float
    p50: float
    p99: float
    share: float

    def export(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "p50": self.p50,
            "p99": self.p99,
            "share": self.share,
        }


@dataclass(frozen=True)
class PipelineProfile:
    """Per-stage attribution of one run's simulated time."""

    stages: tuple[StageStats, ...]

    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.stages)

    def stage(self, name: str) -> StageStats | None:
        for stats in self.stages:
            if stats.stage == name:
                return stats
        return None

    def dominant_stage(self) -> str | None:
        """The stage charged the most simulated time (ties resolve to
        pipeline order); None when nothing was attributed."""
        best: StageStats | None = None
        for stats in self.stages:
            if stats.total_seconds > 0 and (
                    best is None or stats.total_seconds > best.total_seconds):
                best = stats
        return best.stage if best is not None else None

    def rows(self) -> list[tuple]:
        return [
            (s.stage, s.count, f"{s.total_seconds:.6f}",
             f"{s.p50 * 1000:.3f}", f"{s.p99 * 1000:.3f}",
             f"{s.share:.1%}")
            for s in self.stages
        ]

    def table(self, title: str | None = None) -> str:
        from repro.bench.reporting import table_text

        return table_text(
            ("stage", "count", "total s", "p50 ms", "p99 ms", "share"),
            self.rows(),
            title=title or "pipeline stage profile",
        )

    def export(self) -> list[dict[str, Any]]:
        return [s.export() for s in self.stages]


def profile_stages(obs: Observability) -> PipelineProfile:
    """Fold the stage histogram into a :class:`PipelineProfile`.

    Stages never observed are omitted; an uninstrumented (or stage-free)
    run profiles to an empty tuple.
    """
    if not obs.enabled or STAGE_METRIC not in obs.metrics:
        return PipelineProfile(stages=())
    histogram = obs.metrics.get(STAGE_METRIC)
    if not isinstance(histogram, Histogram):
        return PipelineProfile(stages=())
    totals = {
        stage: histogram.sum(stage=stage)
        for stage in STAGES
        if histogram.count(stage=stage)
    }
    grand_total = sum(totals.values())
    stats = []
    for stage in STAGES:
        count = histogram.count(stage=stage)
        if not count:
            continue
        total = totals[stage]
        stats.append(StageStats(
            stage=stage,
            count=count,
            total_seconds=total,
            p50=histogram.quantile(0.5, stage=stage),
            p99=histogram.quantile(0.99, stage=stage),
            share=(total / grand_total) if grand_total > 0 else 0.0,
        ))
    return PipelineProfile(stages=tuple(stats))


@dataclass(frozen=True)
class SpanSelfTime:
    """Aggregated wall of one span name: total vs. self (minus children)."""

    name: str
    count: int
    total: Any
    self_time: Any

    def export(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total": export_value(self.total),
            "self": export_value(self.self_time),
        }


def _domain(value: Any) -> str:
    return "logical" if isinstance(value, int) else "simulated"


def self_time_breakdown(obs: Observability) -> list[SpanSelfTime]:
    """Per span name: occurrence count, total duration and self time.

    Self time subtracts only children in the parent's own time domain —
    a simulated-seconds child under a logical-tick parent contributes to
    totals under its own name but never corrupts the parent's
    arithmetic with mixed units. Unfinished spans are skipped. Rows are
    sorted by name.
    """
    spans = [s for s in obs.tracer.spans
             if s.end is not None and _domain(s.start) == _domain(s.end)]
    by_id = {s.span_id: s for s in spans}
    child_time: dict[int, Any] = {}
    for span in spans:
        parent = by_id.get(span.parent_id) if span.parent_id is not None \
            else None
        if parent is None or _domain(parent.start) != _domain(span.start):
            continue
        duration = span.end - span.start
        child_time[parent.span_id] = (
            child_time.get(parent.span_id, 0) + duration
        )
    totals: dict[str, list] = {}
    for span in spans:
        duration = span.end - span.start
        self_time = duration - child_time.get(span.span_id, 0)
        entry = totals.setdefault(span.name, [0, 0, 0])
        entry[0] += 1
        entry[1] = entry[1] + duration
        entry[2] = entry[2] + self_time
    return [
        SpanSelfTime(name=name, count=entry[0], total=entry[1],
                     self_time=entry[2])
        for name, entry in sorted(totals.items())
    ]


def self_time_table(obs: Observability, title: str | None = None) -> str:
    """Aligned text table of the self-time breakdown."""
    from repro.bench.reporting import table_text

    rows = [
        (row.name, row.count, export_value(row.total),
         export_value(row.self_time))
        for row in self_time_breakdown(obs)
    ]
    return table_text(
        ("span", "count", "total", "self"),
        rows,
        title=title or "span self-time breakdown",
    )
