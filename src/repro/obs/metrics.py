"""Deterministic metrics: counters, gauges and fixed-bucket histograms.

The registry is the numerical half of :mod:`repro.obs`. Three metric
kinds cover the stack's needs:

* :class:`Counter` — monotonically increasing totals (page reads, retry
  attempts, injected faults);
* :class:`Gauge` — last-value or high-water readings (buffer occupancy,
  cataloged objects);
* :class:`Histogram` — distributions over *fixed* bucket boundaries
  declared at creation time (per-read lateness). Fixed boundaries are
  what makes snapshots comparable across runs and machines.

Determinism contract: metric values derive only from the instrumented
code's own (simulated or logical) arithmetic — never wall clock, never
process state — and every export path iterates in sorted order, so two
identical runs produce byte-identical snapshots.

Naming scheme: dotted ``subsystem.noun.event`` (``blob.page.reads``,
``engine.play.retries``), with variation expressed as labels
(``kind="transient"``, ``sequence="video1"``) rather than name suffixes.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import ObservabilityError

#: Default histogram boundaries (seconds): spans sub-millisecond jitter
#: through multi-second stalls. Values above the last boundary land in
#: the implicit +inf overflow bucket.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def export_value(value: Any) -> Any:
    """A JSON-stable representation of a metric or timestamp value.

    Integers, floats, bools and None pass through (float ``repr`` is
    deterministic for identical inputs); everything else — notably
    :class:`~repro.core.rational.Rational` timestamps — becomes its
    exact ``str`` so no precision is lost.
    """
    if value is None or isinstance(value, (bool, int, float)):
        return value
    return str(value)


class Metric:
    """Common labeled-series bookkeeping for all metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, Any] = {}

    def labels_seen(self) -> list[LabelKey]:
        return sorted(self._series)

    def _export_series(self, key: LabelKey, value: Any) -> dict[str, Any]:
        entry: dict[str, Any] = {}
        if key:
            entry["labels"] = dict(key)
        entry["value"] = value
        return entry

    def export(self) -> dict[str, Any]:
        body: dict[str, Any] = {"type": self.kind}
        if self.help:
            body["help"] = self.help
        body["series"] = [
            self._export_series(key, self._export_value(key))
            for key in self.labels_seen()
        ]
        return body

    def _export_value(self, key: LabelKey) -> Any:
        return export_value(self._series[key])


class Counter(Metric):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def inc(self, amount: int = 1, **labels: Any) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> int:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> int:
        """Sum across all label combinations."""
        return sum(self._series.values())


class Gauge(Metric):
    """A point-in-time reading; ``set_max`` keeps high-water marks."""

    kind = "gauge"

    def set(self, value: Any, **labels: Any) -> None:
        self._series[_label_key(labels)] = value

    def set_max(self, value: Any, **labels: Any) -> None:
        """Record ``value`` only if it exceeds the current reading.

        Comparing un-comparable types (a str high-water against an int,
        say) raises :class:`~repro.errors.ObservabilityError` — mixed
        series would make the high-water mark meaningless.
        """
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None:
            self._series[key] = value
            return
        try:
            exceeds = value > current
        except TypeError:
            raise ObservabilityError(
                f"gauge {self.name!r} set_max cannot compare "
                f"{type(value).__name__} against the current "
                f"{type(current).__name__} reading"
            ) from None
        if exceeds:
            self._series[key] = value

    def value(self, default: Any = None, **labels: Any) -> Any:
        return self._series.get(_label_key(labels), default)


class Histogram(Metric):
    """Counts of observations falling into fixed, pre-declared buckets.

    ``buckets`` are ascending upper bounds; an implicit overflow bucket
    catches everything beyond the last boundary. Per series the
    histogram keeps the bucket counts, the observation count and the
    running sum (accumulated in observation order, so it is
    reproducible for identical runs).
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                 help: str = ""):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {self.name!r} needs buckets")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {self.name!r} buckets must be strictly ascending"
            )
        self.buckets = bounds

    def observe(self, value: Any, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = {"counts": [0] * (len(self.buckets) + 1),
                      "count": 0, "sum": 0.0}
            self._series[key] = series
        numeric = float(value)
        slot = len(self.buckets)
        for index, bound in enumerate(self.buckets):
            if numeric <= bound:
                slot = index
                break
        series["counts"][slot] += 1
        series["count"] += 1
        series["sum"] += numeric

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series["count"] if series else 0

    def bucket_counts(self, **labels: Any) -> list[int]:
        series = self._series.get(_label_key(labels))
        if series is None:
            return [0] * (len(self.buckets) + 1)
        return list(series["counts"])

    def sum(self, **labels: Any) -> float:
        """Running sum of observations for one labeled series (0.0 when
        the series has never been observed)."""
        series = self._series.get(_label_key(labels))
        return series["sum"] if series else 0.0

    def overflow_count(self, **labels: Any) -> int:
        """Observations beyond the last declared boundary.

        :meth:`quantile` clamps overflow ranks to the last finite
        boundary — the histogram cannot see past it — so a saturated
        histogram silently understates its tail. This counter makes the
        saturation visible; the telemetry scraper mirrors it into the
        ``telemetry.histogram.overflow`` counter.
        """
        series = self._series.get(_label_key(labels))
        return series["counts"][-1] if series else 0

    def quantile(self, q: float, **labels: Any) -> float:
        """The ``q``-quantile estimated by linear interpolation within
        the bucket containing the target rank.

        Deterministic: a pure function of the bucket counts and the
        declared boundaries. The lower edge of the first bucket is
        taken as 0.0 (or the boundary itself when it is negative); a
        rank landing in the overflow bucket returns the last boundary —
        the histogram cannot see past it. An unobserved series is 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q}"
            )
        series = self._series.get(_label_key(labels))
        if series is None or series["count"] == 0:
            return 0.0
        target = q * series["count"]
        cumulative = 0
        for index, count in enumerate(series["counts"]):
            if count == 0:
                cumulative += count
                continue
            if cumulative + count >= target:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                hi = self.buckets[index]
                lo = self.buckets[index - 1] if index > 0 else min(0.0, hi)
                fraction = (target - cumulative) / count
                return lo + fraction * (hi - lo)
            cumulative += count
        return self.buckets[-1]

    def _export_value(self, key: LabelKey) -> Any:
        series = self._series[key]
        return {
            "buckets": list(self.buckets),
            "counts": list(series["counts"]),
            "count": series["count"],
            "sum": series["sum"],
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name returns the existing metric; requesting it as a
    different kind (or a histogram with different buckets) raises
    :class:`~repro.errors.ObservabilityError` — silent divergence would
    corrupt snapshots.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: type[Metric], factory) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {kind.kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    @staticmethod
    def _fill_help(metric: Metric, help: str) -> Metric:
        # first help wins; a later one only fills an empty slot, so
        # get-or-create call sites may pass help unconditionally
        if help and not metric.help:
            metric.help = help
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._fill_help(
            self._get(name, Counter, lambda: Counter(name, help)), help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._fill_help(
            self._get(name, Gauge, lambda: Gauge(name, help)), help)

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
                  help: str = "") -> Histogram:
        metric = self._fill_help(
            self._get(name, Histogram,
                      lambda: Histogram(name, buckets, help)), help)
        bounds = tuple(float(b) for b in buckets)
        if metric.buckets != bounds:
            raise ObservabilityError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}, requested {bounds}"
            )
        return metric

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ObservabilityError(
                f"no metric named {name!r}; have: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, Any]:
        """Nested-dict export, sorted at every level."""
        return {name: self._metrics[name].export() for name in self.names()}
