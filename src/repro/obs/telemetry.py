"""Clock-driven telemetry: scrapes, a time-series store, burn-rate alerts.

:meth:`MetricsRegistry.snapshot` is a single end-of-run export with no
time axis, and :class:`~repro.obs.slo.SloPolicy` evaluates once per
finished report — neither can say *when* an error budget started
burning while sessions are still streaming. This module adds the time
axis:

* :class:`Telemetry` — a repeating :class:`~repro.engine.kernel.EventLoop`
  event that, every ``interval`` of simulated time, samples the whole
  metrics registry into a :class:`TelemetryStore` and evaluates alert
  rules. The scrape re-schedules itself only while the loop still has
  work pending, so a drained serve ends with one final sample instead
  of an immortal timer.
* :class:`TelemetryStore` — a stdlib-``sqlite3`` time-series store
  following the :mod:`repro.query.sqlutil` conventions (exact-rational
  timestamps as INTEGER pairs, a REAL approximation as a conservative
  prefilter re-judged exactly in Python). Windowed rollups —
  :meth:`~TelemetryStore.delta`, :meth:`~TelemetryStore.rate`,
  :meth:`~TelemetryStore.quantile` via elementwise bucket-count merges
  — are pure functions of the stored rows.
* :class:`AlertManager` — multi-window burn-rate alerting in the
  Prometheus style: each :class:`BurnRateRule` re-expresses an
  :class:`~repro.obs.slo.Slo` objective over a short/long window pair;
  an alert goes *pending* when the short window runs hot, *firing*
  when both windows agree, and *resolved* when the short window cools.
  Every transition is a flight-recorder event stamped with the
  simulated clock and a row in the store's alert log.

Determinism contract (the same one the rest of :mod:`repro.obs`
keeps): scrape times come from the kernel's rational clock, rollups
are exact-or-float arithmetic over stored rows, and
:meth:`TelemetryStore.dump` iterates in sorted order — two same-seed
runs produce byte-identical dumps and alert timelines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.rational import Rational, as_rational
from repro.errors import ObservabilityError
from repro.obs.events import Severity
from repro.obs.slo import Slo, SloPolicy, default_slo_policy

__all__ = [
    "Alert",
    "AlertManager",
    "BurnRateRule",
    "DEFAULT_SCRAPE_INTERVAL",
    "Telemetry",
    "TelemetryStore",
    "default_burn_rate_rules",
]

#: Default scrape cadence (simulated seconds). A quarter second keeps
#: several samples inside the default one-second short window while
#: adding only a handful of events per simulated second of serving.
DEFAULT_SCRAPE_INTERVAL = Rational(1, 4)

#: Relative slack for the REAL prefilter columns, mirroring the
#: TemporalIndex: the float scan may admit extra candidate rows, which
#: the exact re-check below discards — never the reverse.
_EPS_REL = 1e-9

_SCHEMA = """
CREATE TABLE IF NOT EXISTS scrapes (
    scrape_id INTEGER PRIMARY KEY,
    source    TEXT NOT NULL,
    t_num     INTEGER NOT NULL,
    t_den     INTEGER NOT NULL,
    t_approx  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS samples (
    scrape_id INTEGER NOT NULL,
    metric    TEXT NOT NULL,
    labels    TEXT NOT NULL,
    kind      TEXT NOT NULL,
    value     REAL,
    count     INTEGER,
    total     REAL,
    buckets   TEXT
);
CREATE TABLE IF NOT EXISTS hist_bounds (
    metric TEXT PRIMARY KEY,
    bounds TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS alert_log (
    seq        INTEGER PRIMARY KEY,
    alert      TEXT NOT NULL,
    source     TEXT NOT NULL,
    state      TEXT NOT NULL,
    t_num      INTEGER NOT NULL,
    t_den      INTEGER NOT NULL,
    t_approx   REAL NOT NULL,
    burn_short REAL NOT NULL,
    burn_long  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_samples_metric
    ON samples (metric, scrape_id);
CREATE INDEX IF NOT EXISTS idx_scrapes_time
    ON scrapes (t_approx);
"""


def _margin(value: float) -> float:
    return _EPS_REL * (1.0 + abs(value))


class TelemetryStore:
    """An exact-timestamped time series of metric samples in SQLite.

    One row per (scrape, metric, label set). Counters and gauges store
    their reading in ``value``; histograms store the observation
    ``count``, the running ``total`` and the bucket-count vector (the
    fixed boundaries live once per metric in ``hist_bounds``).
    Non-numeric gauge readings are kept as NULL — they have no place
    on a time axis but their presence is still dumped.
    """

    def __init__(self, path: str = ":memory:"):
        # Imported lazily: repro.query pulls in repro.obs at package
        # import, so a top-level import here would be a cycle.
        from repro.query.sqlutil import open_tuned, rational_columns

        self._rational_columns = rational_columns
        self._conn = open_tuned(path)
        self._conn.executescript(_SCHEMA)
        self._scrape_seq = 0
        self._alert_seq = 0
        # Row-fetch memo, invalidated by the next scrape: one alert
        # pass queries the same (metric, at) twice — once per window.
        self._series_cache: dict[tuple, dict[tuple, list[tuple]]] = {}
        # Write-through mirror of the samples table, in insert order:
        # {(source, metric, labels): [(when, value, count, total,
        # buckets), ...]}. Alert evaluation reads at the newest scrape
        # time every quarter-second of simulated time — serving those
        # reads from memory keeps the scrape out of SQLite entirely;
        # time-travel reads (at < newest) still go through SQL.
        self._live: dict[tuple, list[tuple]] = {}
        self._latest: Rational | None = None

    # -- writes ---------------------------------------------------------------

    def record_scrape(self, source: str, at, snapshot: dict[str, Any]) -> int:
        """Store one full registry snapshot taken at simulated ``at``.

        Returns the scrape id. ``snapshot`` is the
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` shape (a
        scoped view's restricted snapshot works identically).
        """
        self._scrape_seq += 1
        self._series_cache.clear()
        scrape_id = self._scrape_seq
        when = as_rational(at)
        self._latest = when
        num, den, approx = self._rational_columns(at)
        self._conn.execute(
            "INSERT INTO scrapes (scrape_id, source, t_num, t_den, t_approx)"
            " VALUES (?, ?, ?, ?, ?)",
            (scrape_id, source, num, den, approx),
        )
        rows = []
        for metric in sorted(snapshot):
            body = snapshot[metric]
            kind = body.get("type", "metric")
            for series in body.get("series", ()):
                labels = json.dumps(series.get("labels", {}), sort_keys=True)
                value = series.get("value")
                if kind == "histogram" and isinstance(value, dict):
                    self._conn.execute(
                        "INSERT OR IGNORE INTO hist_bounds (metric, bounds)"
                        " VALUES (?, ?)",
                        (metric, json.dumps(value["buckets"])),
                    )
                    rows.append((
                        scrape_id, metric, labels, kind, None,
                        value["count"], value["sum"],
                        json.dumps(value["counts"]),
                    ))
                else:
                    numeric = value if isinstance(value, (int, float)) \
                        and not isinstance(value, bool) else None
                    rows.append((
                        scrape_id, metric, labels, kind, numeric,
                        None, None, None,
                    ))
        for _, metric, labels, _, numeric, count, total, buckets in rows:
            self._live.setdefault((source, metric, labels), []).append(
                (when, numeric, count, total, buckets)
            )
        self._conn.executemany(
            "INSERT INTO samples (scrape_id, metric, labels, kind, value,"
            " count, total, buckets) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        return scrape_id

    def record_alert(self, alert: str, source: str, state: str, at,
                     burn_short: float, burn_long: float) -> int:
        """Append one alert transition to the timeline."""
        self._alert_seq += 1
        num, den, approx = self._rational_columns(at)
        self._conn.execute(
            "INSERT INTO alert_log (seq, alert, source, state, t_num,"
            " t_den, t_approx, burn_short, burn_long)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (self._alert_seq, alert, source, state, num, den, approx,
             burn_short, burn_long),
        )
        return self._alert_seq

    # -- reads ----------------------------------------------------------------

    @property
    def scrape_count(self) -> int:
        return self._scrape_seq

    def latest_time(self) -> Rational | None:
        """The newest scrape's simulated time, or None when empty."""
        return self._latest

    def sources(self) -> list[str]:
        return [r[0] for r in self._conn.execute(
            "SELECT DISTINCT source FROM scrapes ORDER BY source"
        )]

    def metrics(self) -> list[str]:
        return [r[0] for r in self._conn.execute(
            "SELECT DISTINCT metric FROM samples ORDER BY metric"
        )]

    def metric_kinds(self) -> dict[str, str]:
        """``{metric: kind}`` for every stored metric."""
        return {r[0]: r[1] for r in self._conn.execute(
            "SELECT DISTINCT metric, kind FROM samples ORDER BY metric"
        )}

    def _matches(self, metric: str, name: str) -> bool:
        """Whether stored ``name`` answers to query ``metric``: exact,
        or a scoped ``<prefix>.<metric>`` (fleet shards prefix every
        metric with their shard name)."""
        return name == metric or name.endswith("." + metric)

    def _series_rows(self, metric: str, at, source: str | None,
                     columns: str) -> dict[tuple, list[tuple]]:
        """Per-(source, metric, labels) sample rows up to exact ``at``.

        The SQL ``t_approx`` bound is the conservative REAL prefilter;
        candidates are re-judged against the exact rational timestamp,
        so float rounding can only widen the scan.
        """
        cache_key = (metric, at, source, columns)
        cached = self._series_cache.get(cache_key)
        if cached is not None:
            return cached
        if self._latest is not None and at >= self._latest:
            # every stored row qualifies: answer from the live mirror
            index = {"m.value": 1, "m.count": 2, "m.total": 3,
                     "m.buckets": 4}[columns]
            grouped = {
                key: [(row[0], row[index]) for row in samples]
                for key, samples in self._live.items()
                if self._matches(metric, key[1])
                and (source is None or key[0] == source)
            }
            self._series_cache[cache_key] = grouped
            return grouped
        hi = float(at)
        # The LIKE arm is a coarse SQL prefilter (its ``_`` wildcard
        # over-matches); _matches() below re-judges exactly.
        clauses = ["s.t_approx <= ?", "(m.metric = ? OR m.metric LIKE ?)"]
        params: list[Any] = [hi + _margin(hi), metric, "%." + metric]
        if source is not None:
            clauses.append("s.source = ?")
            params.append(source)
        query = (
            f"SELECT s.source, m.metric, m.labels, s.t_num, s.t_den,"
            f" {columns} FROM samples m"
            f" JOIN scrapes s ON s.scrape_id = m.scrape_id"
            f" WHERE {' AND '.join(clauses)}"
            f" ORDER BY m.scrape_id"
        )
        grouped: dict[tuple, list[tuple]] = {}
        for row in self._conn.execute(query, params):
            if not self._matches(metric, row[1]):
                continue
            when = Rational(row[3], row[4])
            if when > at:  # prefilter false positive
                continue
            grouped.setdefault((row[0], row[1], row[2]), []).append(
                (when, *row[5:])
            )
        self._series_cache[cache_key] = grouped
        return grouped

    @staticmethod
    def _windowed(samples: list[tuple], start) -> tuple | None:
        """``(last-at-or-before-start, last)`` sample values, or None
        when the series has no samples yet. A series younger than the
        window start contributes from zero."""
        if not samples:
            return None
        baseline = None
        for row in samples:
            if row[0] <= start:
                baseline = row
            else:
                break
        return baseline, samples[-1]

    def delta(self, metric: str, window, at=None, source: str | None = None,
              field: str = "value") -> float:
        """Counter increase over the trailing ``window`` ending at ``at``
        (default: the newest scrape), summed across matching series.

        ``field`` selects the sampled column: ``"value"`` for counters
        and gauges, ``"count"`` / ``"total"`` for histogram observation
        counts and running sums. A series first seen inside the window
        contributes its whole reading (counters start at zero).
        """
        if field not in ("value", "count", "total"):
            raise ObservabilityError(
                f"delta field must be value, count or total, got {field!r}"
            )
        at = self.latest_time() if at is None else as_rational(at)
        if at is None:
            return 0.0
        window = as_rational(window)
        if window <= 0:
            raise ObservabilityError(f"window must be positive, got {window}")
        start = at - window
        total = 0.0
        column = {"value": "m.value", "count": "m.count",
                  "total": "m.total"}[field]
        for samples in self._series_rows(metric, at, source, column).values():
            bracket = self._windowed(samples, start)
            if bracket is None:
                continue
            baseline, last = bracket
            if last[1] is None:
                continue
            before = baseline[1] if baseline is not None and \
                baseline[1] is not None else 0.0
            total += last[1] - before
        return total

    def rate(self, metric: str, window, at=None, source: str | None = None,
             field: str = "value") -> float:
        """Per-second rate: :meth:`delta` over the window length."""
        return self.delta(metric, window, at=at, source=source,
                          field=field) / float(as_rational(window))

    def quantile(self, metric: str, q: float, window, at=None,
                 source: str | None = None) -> float:
        """Windowed quantile of a histogram metric.

        Merges the elementwise bucket-count *deltas* over the window
        across every matching series, then interpolates within the
        merged counts exactly as
        :meth:`~repro.obs.metrics.Histogram.quantile` does (overflow
        ranks clamp to the last finite boundary). 0.0 when the window
        saw no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        at = self.latest_time() if at is None else as_rational(at)
        if at is None:
            return 0.0
        window = as_rational(window)
        if window <= 0:
            raise ObservabilityError(f"window must be positive, got {window}")
        start = at - window
        merged: list[int] = []
        bounds: tuple[float, ...] | None = None
        for (_, name, _), samples in self._series_rows(
                metric, at, source, "m.buckets").items():
            bracket = self._windowed(samples, start)
            if bracket is None or bracket[1][1] is None:
                continue
            if bounds is None:
                row = self._conn.execute(
                    "SELECT bounds FROM hist_bounds WHERE metric = ?",
                    (name,),
                ).fetchone()
                if row is None:
                    continue
                bounds = tuple(json.loads(row[0]))
            baseline, last = bracket
            last_counts = json.loads(last[1])
            if baseline is not None and baseline[1] is not None:
                base_counts = json.loads(baseline[1])
            else:
                base_counts = [0] * len(last_counts)
            if not merged:
                merged = [0] * len(last_counts)
            for i, (lo, hi_c) in enumerate(zip(base_counts, last_counts)):
                merged[i] += hi_c - lo
        count = sum(merged)
        if not merged or count == 0 or bounds is None:
            return 0.0
        target = q * count
        cumulative = 0
        for index, bucket_count in enumerate(merged):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(bounds):
                    return bounds[-1]
                hi = bounds[index]
                lo = bounds[index - 1] if index > 0 else min(0.0, hi)
                fraction = (target - cumulative) / bucket_count
                return lo + fraction * (hi - lo)
            cumulative += bucket_count
        return bounds[-1]

    def series(self, metric: str, source: str | None = None,
               field: str = "value") -> dict[tuple, list[tuple]]:
        """Every matching series as ``{(source, metric, labels):
        [(time, value), ...]}`` — the dashboard's raw feed."""
        at = self.latest_time()
        if at is None:
            return {}
        column = {"value": "m.value", "count": "m.count",
                  "total": "m.total"}[field]
        return self._series_rows(metric, at, source, column)

    def alert_rows(self) -> list[dict[str, Any]]:
        """The alert timeline in transition order, exact timestamps."""
        return [
            {
                "seq": seq, "alert": alert, "source": source,
                "state": state, "at": str(Rational(num, den)),
                "burn_short": burn_short, "burn_long": burn_long,
            }
            for seq, alert, source, state, num, den, burn_short, burn_long
            in self._conn.execute(
                "SELECT seq, alert, source, state, t_num, t_den,"
                " burn_short, burn_long FROM alert_log ORDER BY seq"
            )
        ]

    def dump(self) -> str:
        """The whole store as deterministic JSON lines.

        Fixed table order, fixed row order, sorted keys, exact
        timestamps as ``num/den`` strings — the byte-identity oracle
        for same-seed runs.
        """
        lines = []
        for sid, source, num, den in self._conn.execute(
                "SELECT scrape_id, source, t_num, t_den FROM scrapes"
                " ORDER BY scrape_id"):
            lines.append(json.dumps(
                {"scrape": sid, "source": source,
                 "at": str(Rational(num, den))},
                sort_keys=True))
        for row in self._conn.execute(
                "SELECT scrape_id, metric, labels, kind, value, count,"
                " total, buckets FROM samples"
                " ORDER BY scrape_id, metric, labels"):
            sid, metric, labels, kind, value, count, total, buckets = row
            body: dict[str, Any] = {"scrape": sid, "metric": metric,
                                    "labels": json.loads(labels),
                                    "kind": kind}
            if kind == "histogram":
                body["count"] = count
                body["sum"] = total
                body["counts"] = json.loads(buckets) if buckets else []
            else:
                body["value"] = value
            lines.append(json.dumps(body, sort_keys=True))
        for metric, bounds in self._conn.execute(
                "SELECT metric, bounds FROM hist_bounds ORDER BY metric"):
            lines.append(json.dumps(
                {"histogram": metric, "buckets": json.loads(bounds)},
                sort_keys=True))
        for row in self.alert_rows():
            lines.append(json.dumps(row, sort_keys=True))
        return "\n".join(lines) + "\n"

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"TelemetryStore({self._scrape_seq} scrapes, "
            f"{self._alert_seq} alert transitions)"
        )


# -- burn-rate rules -----------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class BurnRateRule:
    """One SLO objective re-expressed over sliding windows.

    The measured value is ``delta(numerator) / delta(denominator)``
    over each window — or, with ``denominator=None``, the numerator's
    per-second rate. The rule runs hot in a window when
    ``slo.burn(measured) >= burn_threshold``. Short/long window pairs
    are the Prometheus multi-window idiom: the short window reacts,
    the long window confirms, and their conjunction gates *firing* so
    a single bad scrape cannot page.
    """

    name: str
    slo: Slo
    numerator: str
    denominator: str | None = None
    short_window: Any = Rational(1)
    long_window: Any = Rational(4)
    burn_threshold: float = 1.0
    numerator_field: str = "value"
    denominator_field: str = "value"

    def __post_init__(self) -> None:
        short = as_rational(self.short_window)
        long = as_rational(self.long_window)
        if short <= 0 or long <= 0:
            raise ObservabilityError(
                f"rule {self.name!r} windows must be positive"
            )
        if short >= long:
            raise ObservabilityError(
                f"rule {self.name!r} short window {short} must be shorter "
                f"than long window {long}"
            )
        if self.burn_threshold <= 0:
            raise ObservabilityError(
                f"rule {self.name!r} burn_threshold must be positive"
            )

    def measured(self, store: TelemetryStore, source: str | None,
                 at, window) -> float:
        numerator = store.delta(self.numerator, window, at=at, source=source,
                                field=self.numerator_field)
        if self.denominator is None:
            return numerator / float(as_rational(window))
        denominator = store.delta(self.denominator, window, at=at,
                                  source=source,
                                  field=self.denominator_field)
        return numerator / denominator if denominator > 0 else 0.0

    def burn(self, store: TelemetryStore, source: str | None,
             at, window) -> float:
        return self.slo.burn(self.measured(store, source, at, window))


def default_burn_rate_rules(
        policy: SloPolicy | None = None) -> tuple[BurnRateRule, ...]:
    """Stock rules re-expressing the serving SLOs over windows.

    Only the objectives with a natural windowed reading are covered:
    deadline-miss rate (underruns over elements) and rebuffer ratio
    (lateness seconds accrued per second of serving). Startup latency
    and delivered quality remain per-report verdicts.
    """
    policy = default_slo_policy() if policy is None else policy
    by_name = {slo.name: slo for slo in policy}
    rules = []
    miss = by_name.get("deadline-miss-rate")
    if miss is not None:
        rules.append(BurnRateRule(
            name="deadline-miss-burn", slo=miss,
            numerator="engine.play.underruns",
            denominator="engine.play.elements",
        ))
    rebuffer = by_name.get("rebuffer-ratio")
    if rebuffer is not None:
        rules.append(BurnRateRule(
            name="rebuffer-burn", slo=rebuffer,
            numerator="engine.play.lateness_seconds",
            numerator_field="total",
        ))
    return tuple(rules)


# -- alert lifecycle -----------------------------------------------------------

#: Alert states. Transitions always pass through *pending*; *resolved*
#: is re-armable (a later hot short window restarts at pending).
INACTIVE = "inactive"
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"

_TRANSITION_SEVERITY = {
    PENDING: Severity.WARNING,
    FIRING: Severity.ERROR,
    RESOLVED: Severity.INFO,
    INACTIVE: Severity.DEBUG,
}


@dataclass
class Alert:
    """One rule's lifecycle against one source."""

    name: str
    source: str
    state: str = INACTIVE
    since: Any = None
    burn_short: float = 0.0
    burn_long: float = 0.0
    transitions: list[tuple] = field(default_factory=list)

    def export(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "source": self.source,
            "state": self.state,
            "since": None if self.since is None else str(self.since),
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "transitions": [
                {"state": state, "at": str(at)}
                for state, at in self.transitions
            ],
        }


def _next_state(state: str, hot_short: bool, hot_long: bool) -> str:
    if state in (INACTIVE, RESOLVED):
        return PENDING if hot_short else state
    if state == PENDING:
        if not hot_short:
            return INACTIVE
        return FIRING if hot_long else PENDING
    # firing
    return RESOLVED if not hot_short else FIRING


class AlertManager:
    """Evaluates burn-rate rules at scrape time, tracks alert state.

    One :class:`Alert` per (rule, source). Every state change is
    recorded in the store's alert log and — when a flight recorder is
    supplied — as a ``telemetry`` event at the scrape's simulated
    time. ``on_transition``, when set, is called as
    ``on_transition(alert, at)`` after each change; tests and
    dashboards use it to observe health mid-serve.
    """

    def __init__(self, rules: tuple[BurnRateRule, ...],
                 store: TelemetryStore):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ObservabilityError(
                f"duplicate burn-rate rule names: {names}"
            )
        self.rules = tuple(rules)
        self.store = store
        self._alerts: dict[tuple[str, str], Alert] = {}
        self.on_transition: Callable[[Alert, Any], None] | None = None

    def evaluate(self, source: str, at, events=None, metrics=None) -> list[Alert]:
        """Run every rule against ``source`` at simulated ``at``.

        Returns the alerts that changed state this evaluation.
        """
        changed = []
        for rule in self.rules:
            burn_short = rule.burn(self.store, source, at, rule.short_window)
            burn_long = rule.burn(self.store, source, at, rule.long_window)
            hot_short = burn_short >= rule.burn_threshold
            hot_long = burn_long >= rule.burn_threshold
            key = (rule.name, source)
            alert = self._alerts.get(key)
            if alert is None:
                alert = self._alerts[key] = Alert(name=rule.name,
                                                  source=source)
            alert.burn_short = burn_short
            alert.burn_long = burn_long
            state = _next_state(alert.state, hot_short, hot_long)
            if state == alert.state:
                continue
            alert.state = state
            alert.since = at
            alert.transitions.append((state, at))
            self.store.record_alert(rule.name, source, state, at,
                                    burn_short, burn_long)
            if events is not None:
                events.record(
                    _TRANSITION_SEVERITY[state], "telemetry",
                    f"alert.{state}", at=at, alert=rule.name,
                    source=source, burn_short=burn_short,
                    burn_long=burn_long,
                )
            if metrics is not None:
                metrics.counter(
                    "telemetry.alert.transitions",
                    help="alert state changes, labeled by new state",
                ).inc(state=state)
            if self.on_transition is not None:
                self.on_transition(alert, at)
            changed.append(alert)
        return changed

    def all(self) -> list[Alert]:
        """Every tracked alert, sorted by (rule, source)."""
        return [self._alerts[key] for key in sorted(self._alerts)]

    def for_source(self, source: str) -> list[Alert]:
        return [a for a in self.all() if a.source == source]

    def firing(self, source: str | None = None) -> list[Alert]:
        return [a for a in self.all() if a.state == FIRING
                and (source is None or a.source == source)]

    def active(self, source: str | None = None) -> list[Alert]:
        """Alerts currently pending or firing."""
        return [a for a in self.all() if a.state in (PENDING, FIRING)
                and (source is None or a.source == source)]

    def __repr__(self) -> str:
        return (
            f"AlertManager({len(self.rules)} rules, "
            f"{len(self.firing())} firing)"
        )


# -- the scraper ---------------------------------------------------------------


def _base_registry(metrics):
    """Unwrap nested ScopedMetrics views down to the real registry."""
    while hasattr(metrics, "registry"):
        metrics = metrics.registry
    return metrics


class Telemetry:
    """The clock-driven scraper tying store and alerts to a serve.

    :meth:`attach` schedules the first scrape ``interval`` after the
    loop's current time; each scrape samples the registry, evaluates
    the alert rules, and re-schedules itself only while the loop still
    has other work pending — the timer never keeps a finished serve
    alive. :meth:`drain` cools remaining active alerts after the
    workload finishes by scheduling further scrapes over an idle loop.

    One Telemetry may serve a whole fleet: each shard attaches with
    its own ``source`` name and scoped sink, and the shared store
    keeps per-source series.
    """

    def __init__(self, *, interval=DEFAULT_SCRAPE_INTERVAL,
                 store: TelemetryStore | None = None,
                 rules: tuple[BurnRateRule, ...] | None = None,
                 policy: SloPolicy | None = None):
        self.interval = as_rational(interval)
        if self.interval <= 0:
            raise ObservabilityError(
                f"scrape interval must be positive, got {interval}"
            )
        self.store = store if store is not None else TelemetryStore()
        if rules is None:
            rules = default_burn_rate_rules(policy)
        self.alerts = AlertManager(rules, self.store)
        self._overflow_seen: dict[tuple[str, tuple], int] = {}

    def attach(self, loop, obs, source: str) -> None:
        """Schedule the repeating scrape on ``loop`` for ``obs``."""
        loop.after(self.interval, self._scrape, loop, obs, source)

    def _scrape(self, loop, obs, source: str) -> None:
        self.sample(obs, source, at=loop.clock.now())
        if loop.pending > 0:
            loop.after(self.interval, self._scrape, loop, obs, source)

    def sample(self, obs, source: str, at) -> int:
        """Take one sample now: overflow check, snapshot, alert pass."""
        self._note_overflow(obs)
        scrape_id = self.store.record_scrape(source, at,
                                             obs.metrics.snapshot())
        self.alerts.evaluate(source, at, events=obs.events,
                             metrics=obs.metrics)
        return scrape_id

    def _note_overflow(self, obs) -> None:
        """Mirror histogram overflow-bucket growth into a counter.

        ``Histogram.quantile`` clamps overflow ranks to the last finite
        boundary; this counter makes that saturation visible in the
        time series instead of silent.
        """
        registry = _base_registry(obs.metrics)
        names = getattr(obs.metrics, "names", lambda: [])()
        overflow = None
        for name in names:
            metric = registry.get(name)
            if getattr(metric, "kind", "") != "histogram" or \
                    name.endswith("telemetry.histogram.overflow"):
                continue
            for key in metric.labels_seen():
                seen = self._overflow_seen.get((name, key), 0)
                current = metric.overflow_count(**dict(key))
                if current > seen:
                    if overflow is None:
                        overflow = obs.metrics.counter(
                            "telemetry.histogram.overflow",
                            help="observations beyond the last histogram"
                                 " boundary, by metric",
                        )
                    overflow.inc(current - seen, metric=name)
                    self._overflow_seen[(name, key)] = current

    def drain(self, loop, obs, source: str, limit: int = 64) -> int:
        """Scrape an idle loop until ``source`` has no active alerts.

        Each extra scrape advances the simulated clock one interval;
        with no new traffic the windows empty, burns cool, and pending
        alerts cancel while firing ones resolve — all before the serve
        returns. ``limit`` bounds the cool-down against pathological
        windows. Returns the number of extra scrapes taken.
        """
        taken = 0
        while taken < limit and self.alerts.active(source):
            loop.after(self.interval, self.sample_once, loop, obs, source)
            loop.run()
            taken += 1
        return taken

    def sample_once(self, loop, obs, source: str) -> None:
        """One non-rescheduling scrape (the drain's step)."""
        self.sample(obs, source, at=loop.clock.now())

    def __repr__(self) -> str:
        return (
            f"Telemetry(interval={self.interval}, "
            f"{self.store._scrape_seq} scrapes, "
            f"{len(self.alerts.rules)} rules)"
        )
