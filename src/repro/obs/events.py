"""A deterministic, bounded flight recorder of structured events.

Metrics say *how often* and spans say *how long*; the flight recorder
says *what happened, in order* — every fault, retry, eviction,
degradation and deadline miss, as a structured :class:`Event` with a
severity, a timestamp from the same simulated/logical time sources the
tracer uses, the emitting component and free-form attributes.

The buffer is a bounded ring: when full, recording a new event drops
the oldest one (``dropped`` counts the losses), so the recorder keeps
the *newest* window of history at a fixed memory cost — the post-hoc
"what went wrong just before the report" view a long serving run needs.

Determinism contract (same as the rest of :mod:`repro.obs`): sequence
numbers are assigned in emission order, timestamps come from simulated
clocks or a private :class:`~repro.obs.tracing.LogicalClock`, never the
wall clock, and exports iterate in ring order with sorted keys — two
same-seed runs produce byte-identical event logs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Iterable

from repro.errors import ObservabilityError
from repro.obs.metrics import export_value
from repro.obs.tracing import LogicalClock

#: Default ring capacity: enough for a serving run's interesting tail
#: without unbounded growth.
DEFAULT_EVENT_CAPACITY = 1024


class Severity(IntEnum):
    """Event severity, ordered so recorders and views can filter on it."""

    DEBUG = 10
    INFO = 20
    WARNING = 30
    ERROR = 40
    CRITICAL = 50

    @classmethod
    def coerce(cls, value: "Severity | int | str") -> "Severity":
        """A :class:`Severity` from an enum member, int level or name."""
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[str(value).upper()]
        except KeyError:
            raise ObservabilityError(
                f"unknown severity {value!r}; use one of "
                f"{', '.join(m.name for m in cls)}"
            ) from None


@dataclass
class Event:
    """One recorded occurrence.

    ``seq`` is the global emission index (monotonic even across ring
    drops); ``at`` is a simulated-clock value or a logical tick,
    whatever the emitter supplied — the same time contract spans obey.
    """

    seq: int
    at: Any
    severity: Severity
    component: str
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)

    def export(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "at": export_value(self.at),
            "severity": self.severity.name,
            "component": self.component,
            "name": self.name,
            "attributes": {
                key: export_value(self.attributes[key])
                for key in sorted(self.attributes)
            },
        }


class FlightRecorder:
    """Bounded ring buffer of :class:`Event` rows.

    ``clock`` (any zero-argument callable) supplies timestamps for
    events recorded without an explicit ``at``; by default a private
    :class:`LogicalClock` ticks once per event.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY,
                 clock: Callable[[], Any] | None = None):
        if capacity < 1:
            raise ObservabilityError(
                f"flight recorder needs capacity >= 1 event, got {capacity}"
            )
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._logical = LogicalClock()
        self._clock = clock
        self._seq = 0
        self._context: list[Any] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def push_context(self, context: Any) -> None:
        """Stamp subsequent events with the
        :class:`~repro.obs.tracing.TraceContext` until popped."""
        self._context.append(context)

    def pop_context(self) -> Any:
        return self._context.pop()

    def record(self, severity: Severity | int | str, component: str,
               name: str, at: Any = None, **attributes: Any) -> Event:
        """Append an event; a full ring drops its oldest entry."""
        if at is None:
            at = self._clock() if self._clock is not None else \
                self._logical.tick()
        for frame in reversed(self._context):
            for key, value in frame.attributes().items():
                attributes.setdefault(key, value)
        event = Event(
            seq=self._seq,
            at=at,
            severity=Severity.coerce(severity),
            component=component,
            name=name,
            attributes=attributes,
        )
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    def events(self, min_severity: Severity | int | str | None = None,
               component: str | None = None,
               name: str | None = None) -> list[Event]:
        """Retained events in emission order, optionally filtered."""
        floor = None if min_severity is None else Severity.coerce(min_severity)
        return [
            e for e in self._events
            if (floor is None or e.severity >= floor)
            and (component is None or e.component == component)
            and (name is None or e.name == name)
        ]

    def recent(self, count: int,
               min_severity: Severity | int | str | None = None) -> list[Event]:
        """The newest ``count`` events (after severity filtering)."""
        matched = self.events(min_severity=min_severity)
        return matched[-count:] if count > 0 else []

    def export(self) -> list[dict[str, Any]]:
        """Retained events in emission order, each a sorted-key dict."""
        return [event.export() for event in self._events]


def events_rows(events: Iterable[Event]) -> list[tuple]:
    """Flatten events to ``(seq, at, severity, component, name, attrs)``
    rows for the benchmark-style table renderers."""
    rows = []
    for event in events:
        attrs = ",".join(
            f"{k}={export_value(event.attributes[k])}"
            for k in sorted(event.attributes)
        )
        rows.append((
            event.seq, export_value(event.at), event.severity.name,
            event.component, event.name, attrs,
        ))
    return rows
