"""The hook protocol connecting the stack to an observability sink.

:class:`Observability` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.tracing.Tracer`; :class:`Instrumented` is the
mixin instrumentable classes adopt. The default sink is :data:`NULL_OBS`,
whose metrics and tracer are inert no-ops — uninstrumented code pays one
attribute load and a no-op call per hook, and never accumulates state.

Wiring is explicit and propagates downward: calling
``instrument(obs)`` on a container (a :class:`~repro.blob.store.BlobStore`,
a :class:`~repro.query.database.MediaDatabase`) re-instruments the
components it owns via the ``_instrument_children`` hook, so one call at
the top of an object graph observes the whole stack.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from repro.obs.events import DEFAULT_EVENT_CAPACITY, Event, FlightRecorder, Severity
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, TraceContext, Tracer


class Observability:
    """A metrics registry, a tracer and a flight recorder, exported
    together.

    ``clock`` (optional) is handed to the tracer and the flight
    recorder as their time source — pass a simulated clock's ``now`` to
    put spans and events on simulated time. ``event_capacity`` bounds
    the flight-recorder ring when no explicit recorder is supplied.
    """

    enabled = True

    #: Flat scope prefix of this sink — None at the root, the dotted
    #: prefix on views minted by :meth:`scoped`.
    scope: str | None = None

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 events: FlightRecorder | None = None,
                 clock: Callable[[], Any] | None = None,
                 event_capacity: int = DEFAULT_EVENT_CAPACITY):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(clock=clock)
        self.events = events if events is not None else FlightRecorder(
            capacity=event_capacity, clock=clock,
        )
        self._scopes: set[str] = set()

    def snapshot(self) -> dict[str, Any]:
        """The full nested-dict export: metrics, spans and events."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.export(),
            "events": self.events.export(),
        }

    @contextmanager
    def trace(self, context: TraceContext):
        """Stamp every span and event recorded in the body with the
        context's trace id, correlating work across components."""
        self.tracer.push_context(context)
        self.events.push_context(context)
        try:
            yield context
        finally:
            self.events.pop_context()
            self.tracer.pop_context()

    def scoped(self, prefix: str) -> "Observability":
        """A view of this sink with every metric name under ``prefix.``.

        Components sharing one registry — fleet shards, most notably —
        get disjoint metric namespaces while the export stays one
        sorted snapshot. Spans and events land in the shared tracer
        and flight recorder tagged with a ``scope`` attribute, so the
        Chrome-trace export can give each scope its own track. Scoping
        a scoped view composes prefixes.

        A flat prefix may be claimed only once per root sink: two
        shards scoping to the same name would silently interleave
        their series, so the second claim raises
        :class:`~repro.errors.ObservabilityError`.
        """
        view = Observability.__new__(Observability)
        view.metrics = ScopedMetrics(self.metrics, prefix)  # type: ignore[assignment]
        flat = _flat_prefix(view.metrics)
        if flat in self._scopes:
            from repro.errors import ObservabilityError

            raise ObservabilityError(
                f"scope {flat!r} already claimed on this sink; shards "
                f"sharing a registry need distinct prefixes"
            )
        self._scopes.add(flat)
        view._scopes = self._scopes
        view.scope = flat
        view.tracer = ScopedTracer(self.tracer, flat)  # type: ignore[assignment]
        view.events = ScopedFlightRecorder(self.events, flat)  # type: ignore[assignment]
        return view

    def __repr__(self) -> str:
        return (
            f"Observability({len(self.metrics.names())} metrics, "
            f"{len(self.tracer)} spans, {len(self.events)} events)"
        )


class ScopedMetrics:
    """A prefixing view over a :class:`MetricsRegistry`.

    Every metric created or looked up through the view has
    ``<prefix>.`` prepended to its name in the underlying registry.
    The view mirrors the registry surface the stack relies on —
    create (``counter``/``gauge``/``histogram``), ``get``, ``in``,
    ``names`` and ``snapshot`` — with ``names``/``snapshot``
    restricted to the view's own namespace (full prefixed names, so
    snapshots splice cleanly into the shared export).
    """

    def __init__(self, registry: MetricsRegistry, prefix: str):
        from repro.errors import ObservabilityError

        if not prefix:
            raise ObservabilityError("scoped metrics need a non-empty prefix")
        self.registry = registry
        self.prefix = prefix

    def scoped_name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str, help: str = ""):
        return self.registry.counter(self.scoped_name(name), help)

    def gauge(self, name: str, help: str = ""):
        return self.registry.gauge(self.scoped_name(name), help)

    def histogram(self, name: str, buckets: Any = None, help: str = ""):
        if buckets is None:
            return self.registry.histogram(self.scoped_name(name), help=help)
        return self.registry.histogram(
            self.scoped_name(name), buckets, help,
        )

    def get(self, name: str):
        return self.registry.get(self.scoped_name(name))

    def __contains__(self, name: str) -> bool:
        return self.scoped_name(name) in self.registry

    def names(self) -> list[str]:
        marker = f"{self.prefix}."
        return [n for n in self.registry.names() if n.startswith(marker)]

    def snapshot(self) -> dict[str, Any]:
        return {
            name: self.registry.get(name).export() for name in self.names()
        }

    def __repr__(self) -> str:
        return f"ScopedMetrics({self.prefix!r}, {len(self.names())} metrics)"


def _flat_prefix(metrics: ScopedMetrics) -> str:
    """The full dotted prefix of a (possibly nested) scoped view."""
    parts = []
    node: Any = metrics
    while isinstance(node, ScopedMetrics):
        parts.append(node.prefix)
        node = node.registry
    return ".".join(reversed(parts))


class ScopedTracer:
    """A tagging view over a shared :class:`~repro.obs.tracing.Tracer`.

    Spans land in the underlying tracer with a ``scope`` attribute
    (explicit attributes win; nested scoping keeps the innermost —
    i.e. fullest — prefix because each view wraps the *root* tracer
    with its flat prefix). Everything else delegates.
    """

    def __init__(self, tracer: Any, scope: str):
        self.base = getattr(tracer, "base", tracer)
        self.scope = scope

    @property
    def spans(self):
        return self.base.spans

    @contextmanager
    def span(self, name: str, **attributes: Any):
        attributes.setdefault("scope", self.scope)
        with self.base.span(name, **attributes) as span:
            yield span

    def record(self, name: str, start: Any, end: Any,
               **attributes: Any) -> Span:
        attributes.setdefault("scope", self.scope)
        return self.base.record(name, start, end, **attributes)

    def event(self, name: str, at: Any = None, **attributes: Any) -> Span:
        attributes.setdefault("scope", self.scope)
        return self.base.event(name, at=at, **attributes)

    def push_context(self, context: TraceContext) -> None:
        self.base.push_context(context)

    def pop_context(self) -> TraceContext:
        return self.base.pop_context()

    def named(self, name: str) -> list[Span]:
        return self.base.named(name)

    def __len__(self) -> int:
        return len(self.base)

    def export(self) -> list[dict[str, Any]]:
        return self.base.export()

    def __repr__(self) -> str:
        return f"ScopedTracer({self.scope!r})"


class ScopedFlightRecorder:
    """A tagging view over a shared
    :class:`~repro.obs.events.FlightRecorder`; same contract as
    :class:`ScopedTracer`."""

    def __init__(self, events: Any, scope: str):
        self.base = getattr(events, "base", events)
        self.scope = scope

    @property
    def capacity(self) -> int:
        return self.base.capacity

    @property
    def dropped(self) -> int:
        return self.base.dropped

    def record(self, severity: Any, component: str, name: str,
               at: Any = None, **attributes: Any) -> Event:
        attributes.setdefault("scope", self.scope)
        return self.base.record(severity, component, name, at=at,
                                **attributes)

    def push_context(self, context: TraceContext) -> None:
        self.base.push_context(context)

    def pop_context(self) -> TraceContext:
        return self.base.pop_context()

    def events(self, min_severity: Any = None, component: str | None = None,
               name: str | None = None) -> list[Event]:
        return self.base.events(min_severity=min_severity,
                                component=component, name=name)

    def recent(self, count: int, min_severity: Any = None) -> list[Event]:
        return self.base.recent(count, min_severity=min_severity)

    def __len__(self) -> int:
        return len(self.base)

    def export(self) -> list[dict[str, Any]]:
        return self.base.export()

    def __repr__(self) -> str:
        return f"ScopedFlightRecorder({self.scope!r})"


class _NullMetric:
    """Accepts every metric call and records nothing."""

    def inc(self, amount: int = 1, **labels: Any) -> None:
        pass

    def set(self, value: Any, **labels: Any) -> None:
        pass

    def set_max(self, value: Any, **labels: Any) -> None:
        pass

    def observe(self, value: Any, **labels: Any) -> None:
        pass

    def value(self, default: Any = None, **labels: Any) -> Any:
        return default

    def total(self) -> int:
        return 0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()
_NULL_SPAN = Span(span_id=-1, parent_id=None, name="null", start=0, end=0)


class _NullMetricsRegistry:
    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets: Any = None,
                  help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}


class _NullTracer:
    spans: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any):
        yield _NULL_SPAN

    def record(self, name: str, start: Any, end: Any,
               **attributes: Any) -> Span:
        return _NULL_SPAN

    def event(self, name: str, at: Any = None, **attributes: Any) -> Span:
        return _NULL_SPAN

    def push_context(self, context: Any) -> None:
        pass

    def pop_context(self) -> None:
        return None

    def named(self, name: str) -> list[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def export(self) -> list[dict[str, Any]]:
        return []


_NULL_EVENT = Event(seq=-1, at=0, severity=Severity.DEBUG,
                    component="null", name="null")


class _NullFlightRecorder:
    capacity = 0
    dropped = 0

    def record(self, severity: Any, component: str, name: str,
               at: Any = None, **attributes: Any) -> Event:
        return _NULL_EVENT

    def push_context(self, context: Any) -> None:
        pass

    def pop_context(self) -> None:
        return None

    def events(self, min_severity: Any = None, component: str | None = None,
               name: str | None = None) -> list[Event]:
        return []

    def recent(self, count: int, min_severity: Any = None) -> list[Event]:
        return []

    def __len__(self) -> int:
        return 0

    def export(self) -> list[dict[str, Any]]:
        return []


class NullObservability(Observability):
    """The disabled sink: shares the metrics/tracer/events API, records
    nothing."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = _NullMetricsRegistry()  # type: ignore[assignment]
        self.tracer = _NullTracer()  # type: ignore[assignment]
        self.events = _NullFlightRecorder()  # type: ignore[assignment]

    def scoped(self, prefix: str) -> "NullObservability":
        """Scoping an inert sink is a no-op: nothing is recorded anyway."""
        return self


#: Shared inert sink; the default for every :class:`Instrumented` object.
NULL_OBS = NullObservability()


class Instrumented:
    """Mixin giving a class an observability hook.

    ``self.obs`` is always usable — :data:`NULL_OBS` until
    :meth:`instrument` attaches a live sink. Subclasses that own other
    instrumented components override ``_instrument_children`` to
    propagate the sink downward.
    """

    _obs: Observability = NULL_OBS

    @property
    def obs(self) -> Observability:
        return self._obs

    def instrument(self, obs: Observability | None) -> "Instrumented":
        """Attach (or, with None, detach) an observability sink.

        Returns ``self`` so construction chains:
        ``BlobStore().instrument(obs)``.
        """
        self._obs = NULL_OBS if obs is None else obs
        self._instrument_children(self._obs)
        return self

    def _instrument_children(self, obs: Observability) -> None:
        """Propagate the sink to owned components (override as needed)."""
