"""The hook protocol connecting the stack to an observability sink.

:class:`Observability` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.tracing.Tracer`; :class:`Instrumented` is the
mixin instrumentable classes adopt. The default sink is :data:`NULL_OBS`,
whose metrics and tracer are inert no-ops — uninstrumented code pays one
attribute load and a no-op call per hook, and never accumulates state.

Wiring is explicit and propagates downward: calling
``instrument(obs)`` on a container (a :class:`~repro.blob.store.BlobStore`,
a :class:`~repro.query.database.MediaDatabase`) re-instruments the
components it owns via the ``_instrument_children`` hook, so one call at
the top of an object graph observes the whole stack.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from repro.obs.events import DEFAULT_EVENT_CAPACITY, Event, FlightRecorder, Severity
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


class Observability:
    """A metrics registry, a tracer and a flight recorder, exported
    together.

    ``clock`` (optional) is handed to the tracer and the flight
    recorder as their time source — pass a simulated clock's ``now`` to
    put spans and events on simulated time. ``event_capacity`` bounds
    the flight-recorder ring when no explicit recorder is supplied.
    """

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 events: FlightRecorder | None = None,
                 clock: Callable[[], Any] | None = None,
                 event_capacity: int = DEFAULT_EVENT_CAPACITY):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(clock=clock)
        self.events = events if events is not None else FlightRecorder(
            capacity=event_capacity, clock=clock,
        )

    def snapshot(self) -> dict[str, Any]:
        """The full nested-dict export: metrics, spans and events."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.export(),
            "events": self.events.export(),
        }

    def scoped(self, prefix: str) -> "Observability":
        """A view of this sink with every metric name under ``prefix.``.

        Components sharing one registry — fleet shards, most notably —
        get disjoint metric namespaces while the export stays one
        sorted snapshot. The tracer and flight recorder are shared
        (spans and events carry their own attributes); only the metric
        namespace splits. Scoping a scoped view composes prefixes.
        """
        view = Observability.__new__(Observability)
        view.metrics = ScopedMetrics(self.metrics, prefix)  # type: ignore[assignment]
        view.tracer = self.tracer
        view.events = self.events
        return view

    def __repr__(self) -> str:
        return (
            f"Observability({len(self.metrics.names())} metrics, "
            f"{len(self.tracer)} spans, {len(self.events)} events)"
        )


class ScopedMetrics:
    """A prefixing view over a :class:`MetricsRegistry`.

    Every metric created or looked up through the view has
    ``<prefix>.`` prepended to its name in the underlying registry.
    The view mirrors the registry surface the stack relies on —
    create (``counter``/``gauge``/``histogram``), ``get``, ``in``,
    ``names`` and ``snapshot`` — with ``names``/``snapshot``
    restricted to the view's own namespace (full prefixed names, so
    snapshots splice cleanly into the shared export).
    """

    def __init__(self, registry: MetricsRegistry, prefix: str):
        from repro.errors import ObservabilityError

        if not prefix:
            raise ObservabilityError("scoped metrics need a non-empty prefix")
        self.registry = registry
        self.prefix = prefix

    def scoped_name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str, help: str = ""):
        return self.registry.counter(self.scoped_name(name), help)

    def gauge(self, name: str, help: str = ""):
        return self.registry.gauge(self.scoped_name(name), help)

    def histogram(self, name: str, buckets: Any = None, help: str = ""):
        if buckets is None:
            return self.registry.histogram(self.scoped_name(name), help=help)
        return self.registry.histogram(
            self.scoped_name(name), buckets, help,
        )

    def get(self, name: str):
        return self.registry.get(self.scoped_name(name))

    def __contains__(self, name: str) -> bool:
        return self.scoped_name(name) in self.registry

    def names(self) -> list[str]:
        marker = f"{self.prefix}."
        return [n for n in self.registry.names() if n.startswith(marker)]

    def snapshot(self) -> dict[str, Any]:
        return {
            name: self.registry.get(name).export() for name in self.names()
        }

    def __repr__(self) -> str:
        return f"ScopedMetrics({self.prefix!r}, {len(self.names())} metrics)"


class _NullMetric:
    """Accepts every metric call and records nothing."""

    def inc(self, amount: int = 1, **labels: Any) -> None:
        pass

    def set(self, value: Any, **labels: Any) -> None:
        pass

    def set_max(self, value: Any, **labels: Any) -> None:
        pass

    def observe(self, value: Any, **labels: Any) -> None:
        pass

    def value(self, default: Any = None, **labels: Any) -> Any:
        return default

    def total(self) -> int:
        return 0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()
_NULL_SPAN = Span(span_id=-1, parent_id=None, name="null", start=0, end=0)


class _NullMetricsRegistry:
    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets: Any = None,
                  help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}


class _NullTracer:
    spans: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any):
        yield _NULL_SPAN

    def record(self, name: str, start: Any, end: Any,
               **attributes: Any) -> Span:
        return _NULL_SPAN

    def event(self, name: str, at: Any = None, **attributes: Any) -> Span:
        return _NULL_SPAN

    def named(self, name: str) -> list[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def export(self) -> list[dict[str, Any]]:
        return []


_NULL_EVENT = Event(seq=-1, at=0, severity=Severity.DEBUG,
                    component="null", name="null")


class _NullFlightRecorder:
    capacity = 0
    dropped = 0

    def record(self, severity: Any, component: str, name: str,
               at: Any = None, **attributes: Any) -> Event:
        return _NULL_EVENT

    def events(self, min_severity: Any = None, component: str | None = None,
               name: str | None = None) -> list[Event]:
        return []

    def recent(self, count: int, min_severity: Any = None) -> list[Event]:
        return []

    def __len__(self) -> int:
        return 0

    def export(self) -> list[dict[str, Any]]:
        return []


class NullObservability(Observability):
    """The disabled sink: shares the metrics/tracer/events API, records
    nothing."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = _NullMetricsRegistry()  # type: ignore[assignment]
        self.tracer = _NullTracer()  # type: ignore[assignment]
        self.events = _NullFlightRecorder()  # type: ignore[assignment]

    def scoped(self, prefix: str) -> "NullObservability":
        """Scoping an inert sink is a no-op: nothing is recorded anyway."""
        return self


#: Shared inert sink; the default for every :class:`Instrumented` object.
NULL_OBS = NullObservability()


class Instrumented:
    """Mixin giving a class an observability hook.

    ``self.obs`` is always usable — :data:`NULL_OBS` until
    :meth:`instrument` attaches a live sink. Subclasses that own other
    instrumented components override ``_instrument_children`` to
    propagate the sink downward.
    """

    _obs: Observability = NULL_OBS

    @property
    def obs(self) -> Observability:
        return self._obs

    def instrument(self, obs: Observability | None) -> "Instrumented":
        """Attach (or, with None, detach) an observability sink.

        Returns ``self`` so construction chains:
        ``BlobStore().instrument(obs)``.
        """
        self._obs = NULL_OBS if obs is None else obs
        self._instrument_children(self._obs)
        return self

    def _instrument_children(self, obs: Observability) -> None:
        """Propagate the sink to owned components (override as needed)."""
