"""A byte-budgeted, cost-driven cache of expanded derived objects.

§4.2: "The decision of whether to store a derived object or to expand
and instead store a non-derived object often hinges upon resource
availability: if expansion can be done in real time then the derived
object is all that needs be stored." The :class:`DerivationCache` turns
that decision into an admission policy: an expansion is worth keeping
when it is *expensive to recompute relative to the bytes it occupies*,
where expense is estimated from the existing playback
:class:`~repro.engine.player.CostModel` — the same arithmetic the
engine charges for reading the inputs and the result.

Policy, all deterministic:

* **Benefit** of a cached expansion = the CostModel seconds to redo it,
  estimated as one non-contiguous read of the inputs' bytes plus the
  expanded bytes (decode included when the model charges it).
* **Admission**: an expansion cheaper than ``min_benefit_seconds`` is
  never cached ("real-time feasible — store only the derivation
  object"); one larger than the whole budget never fits; otherwise it
  is admitted only if room can be made by evicting entries of *lower*
  benefit density (benefit per byte). A newcomer never displaces
  something more valuable per byte than itself.
* **Eviction order**: ascending (density, last-use) — the least
  valuable, least recently used expansion goes first. Pure function of
  the call sequence, so same-seed runs evict identically.

This replaces the per-object unbounded ``_expanded`` memo on
:class:`~repro.core.media_object.DerivedMediaObject`: attach a cache
(``derived.attach_cache(cache)``, or hand one to the
:class:`~repro.engine.player.Player` / :class:`~repro.engine.vod.VodServer`)
and all materialization state lives here, under one global byte budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.media_object import (
    DerivedMediaObject,
    InterpretedMediaObject,
    MediaObject,
)
from repro.engine.player import CostModel
from repro.errors import CacheError
from repro.obs.events import Severity
from repro.obs.instrument import Instrumented, Observability

#: Fixed per-entry size histogram boundaries (bytes).
ENTRY_BUCKETS: tuple[float, ...] = (
    1024.0, 16384.0, 131072.0, 1048576.0, 8388608.0, 67108864.0,
)

#: Default budget: 64 MiB of expanded media.
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024


def object_bytes(obj: MediaObject) -> int:
    """Deterministic, cheap byte-size estimate of a media object.

    Never expands a derivation and never reads BLOB payloads: interpreted
    objects are sized from their placement tables, derived objects from
    their derivation objects ("orders of magnitude smaller"), stream- and
    value-backed objects from the data they already hold.
    """
    if isinstance(obj, InterpretedMediaObject):
        return obj.interpretation.sequence(obj.sequence_name).total_size()
    if isinstance(obj, DerivedMediaObject):
        return obj.derivation_object.storage_size()
    if obj.media_type.kind.is_time_based:
        return obj.stream().total_size()
    value = obj.value()
    try:
        return len(value)
    except TypeError:
        return len(repr(value))


@dataclass
class _Entry:
    expanded: MediaObject
    size: int
    benefit_seconds: float
    density: float
    last_use: int


class DerivationCache(Instrumented):
    """Global store for expanded derived media objects, keyed by object id."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 cost_model: CostModel | None = None,
                 min_benefit_seconds: float = 0.0,
                 obs: Observability | None = None):
        if budget_bytes < 1:
            raise CacheError(
                f"derivation cache needs a positive byte budget, "
                f"got {budget_bytes}"
            )
        if min_benefit_seconds < 0:
            raise CacheError("min_benefit_seconds must be non-negative")
        self.budget_bytes = budget_bytes
        self.cost_model = cost_model or CostModel()
        self.min_benefit_seconds = min_benefit_seconds
        self._entries: dict[str, _Entry] = {}
        self._occupancy = 0
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejections = 0
        if obs is not None:
            self.instrument(obs)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj: MediaObject | str) -> bool:
        return self._key(obj) in self._entries

    @property
    def occupancy_bytes(self) -> int:
        return self._occupancy

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def keys(self) -> list[str]:
        """Cached object ids in ascending (density, last-use) eviction
        order — the next victim first."""
        return [
            key for key, _ in sorted(
                self._entries.items(),
                key=lambda kv: (kv[1].density, kv[1].last_use),
            )
        ]

    def stats(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "occupancy_bytes": self._occupancy,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "rejections": self.rejections,
        }

    def manifest(self) -> dict:
        """JSON-safe snapshot of the cache's *metadata* for a checkpoint.

        Records which expansions were resident with their sizes,
        benefits and recency — not the expanded bytes themselves, which
        can be recomputed from the derivation objects. A restored
        server re-expands on demand; the manifest tells it (and the
        operator reading the checkpoint) exactly what warm state was
        lost at the crash. Deterministic: entries sort by key.
        """
        return {
            "budget_bytes": self.budget_bytes,
            "min_benefit_seconds": self.min_benefit_seconds,
            "occupancy_bytes": self._occupancy,
            "entries": [
                {
                    "key": key,
                    "size": entry.size,
                    "benefit_seconds": entry.benefit_seconds,
                    "density": entry.density,
                    "last_use": entry.last_use,
                }
                for key, entry in sorted(self._entries.items())
            ],
            "counters": {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejections": self.rejections,
            },
        }

    # -- cost model ---------------------------------------------------------------

    def benefit_seconds(self, derived: DerivedMediaObject,
                        expanded_size: int) -> float:
        """Estimated seconds to recompute ``derived`` from scratch."""
        input_bytes = sum(
            object_bytes(obj) for obj in derived.derivation_object.inputs
        )
        return float(self.cost_model.element_cost(
            input_bytes + expanded_size, contiguous=False,
        ))

    # -- cache operations ---------------------------------------------------------

    @staticmethod
    def _key(obj: MediaObject | str) -> str:
        return obj if isinstance(obj, str) else obj.object_id

    def _kind(self, derived: DerivedMediaObject) -> str:
        return derived.derivation_object.derivation.name

    def get(self, derived: DerivedMediaObject) -> MediaObject | None:
        """The cached expansion of ``derived``, or None; a hit renews
        recency."""
        entry = self._entries.get(self._key(derived))
        metrics = self._obs.metrics
        if entry is None:
            self.misses += 1
            metrics.counter("cache.derivation.misses").inc(
                derivation=self._kind(derived)
            )
        else:
            self.hits += 1
            self._tick += 1
            entry.last_use = self._tick
            metrics.counter("cache.derivation.hits").inc(
                derivation=self._kind(derived)
            )
        metrics.gauge("cache.derivation.hit_ratio").set(self.hit_ratio)
        return entry.expanded if entry is not None else None

    def put(self, derived: DerivedMediaObject,
            expanded: MediaObject) -> bool:
        """Offer an expansion for admission; returns True when cached."""
        key = self._key(derived)
        kind = self._kind(derived)
        existing = self._entries.get(key)
        if existing is not None:
            self._tick += 1
            existing.expanded = expanded
            existing.last_use = self._tick
            return True
        size = object_bytes(expanded)
        benefit = self.benefit_seconds(derived, size)
        if benefit < self.min_benefit_seconds:
            # Cheap to recompute in real time: store only the
            # derivation object (§4.2).
            return self._reject(kind, "cheap")
        if size > self.budget_bytes:
            return self._reject(kind, "too_large")
        density = benefit / max(size, 1)
        victims = self._plan_evictions(size, density)
        if victims is None:
            return self._reject(kind, "low_value")
        for victim in victims:
            self._evict(victim)
        self._tick += 1
        self._entries[key] = _Entry(
            expanded=expanded, size=size, benefit_seconds=benefit,
            density=density, last_use=self._tick,
        )
        self._occupancy += size
        metrics = self._obs.metrics
        metrics.counter("cache.derivation.admissions").inc(derivation=kind)
        metrics.histogram(
            "cache.derivation.entry_bytes", buckets=ENTRY_BUCKETS,
        ).observe(size)
        self._observe_occupancy()
        return True

    def materialize(self, derived: DerivedMediaObject) -> MediaObject:
        """Get-or-expand: the cached expansion when present, otherwise a
        fresh expansion offered for admission."""
        cached = self.get(derived)
        if cached is not None:
            return cached
        expanded = derived.expand()
        self.put(derived, expanded)
        return expanded

    def discard(self, obj: MediaObject | str) -> bool:
        """Drop one cached expansion, if present."""
        entry = self._entries.pop(self._key(obj), None)
        if entry is None:
            return False
        self._occupancy -= entry.size
        self._observe_occupancy()
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._occupancy = 0
        self._observe_occupancy()

    # -- internals -----------------------------------------------------------------

    def _reject(self, kind: str, reason: str) -> bool:
        self.rejections += 1
        self._obs.metrics.counter("cache.derivation.rejections").inc(
            derivation=kind, reason=reason,
        )
        self._obs.events.record(
            Severity.WARNING, "cache.derivation", "put.rejected",
            derivation=kind, reason=reason,
        )
        return False

    def _plan_evictions(self, need: int, density: float) -> list[str] | None:
        """Victims (in eviction order) freeing room for ``need`` bytes,
        or None when doing so would displace a more valuable entry."""
        if self._occupancy + need <= self.budget_bytes:
            return []
        victims: list[str] = []
        freed = 0
        for key in self.keys():
            if self._occupancy - freed + need <= self.budget_bytes:
                break
            entry = self._entries[key]
            if entry.density > density:
                return None
            victims.append(key)
            freed += entry.size
        if self._occupancy - freed + need > self.budget_bytes:
            return None
        return victims

    def _evict(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._occupancy -= entry.size
        self.evictions += 1
        self._obs.metrics.counter("cache.derivation.evictions").inc()
        self._obs.events.record(
            Severity.DEBUG, "cache.derivation", "entry.evicted",
            key=key, bytes=entry.size,
        )

    def _observe_occupancy(self) -> None:
        metrics = self._obs.metrics
        metrics.gauge("cache.derivation.entries").set(len(self._entries))
        metrics.gauge("cache.derivation.occupancy_bytes").set(self._occupancy)

    def __repr__(self) -> str:
        return (
            f"DerivationCache({len(self._entries)} entries, "
            f"{self._occupancy}/{self.budget_bytes} bytes)"
        )
