"""Caching between storage and delivery.

The paper's §4.2 derivation mechanism explicitly trades storage for
recomputation; this package supplies the two bounded caches that make
the trade measurable and fast:

* :class:`~repro.cache.pool.BufferPool` — a bounded LRU page cache with
  pin/unpin and write-through invalidation, read through by
  :class:`~repro.blob.pages.PageStore` so repeated playback of the same
  interpretation stops re-reading and re-checksumming every page;
* :class:`~repro.cache.derivations.DerivationCache` — a global,
  byte-budgeted cache of expanded derived objects whose admission and
  eviction policy is driven by the playback
  :class:`~repro.engine.player.CostModel` (cache what is expensive to
  recompute relative to the bytes it occupies — the paper's
  materialize-vs-expand decision).

Both are deterministic: hit/miss/eviction behaviour is a pure function
of the call sequence, so same-seed runs export byte-identical
observability snapshots with caching enabled.
"""

from repro.cache.pool import OCCUPANCY_BUCKETS, BufferPool
from repro.cache.derivations import (
    DEFAULT_BUDGET_BYTES,
    ENTRY_BUCKETS,
    DerivationCache,
    object_bytes,
)

__all__ = [
    "BufferPool",
    "OCCUPANCY_BUCKETS",
    "DerivationCache",
    "DEFAULT_BUDGET_BYTES",
    "ENTRY_BUCKETS",
    "object_bytes",
]
