"""A bounded LRU page cache between :class:`~repro.blob.pages.PageStore`
and its backing pager.

The paper treats BLOB layout as "a performance issue and not directly
relevant to data modeling" (§4.1) — the buffer pool is exactly that
performance issue. Repeated playback of the same interpretation walks
the same placement tables and therefore the same pages; without a pool
every walk re-reads and re-checksums every page through the pager. With
one, warm replay is served from memory.

Semantics:

* **Bounded**: at most ``capacity_pages`` entries; inserting into a full
  pool evicts the least-recently-used *unpinned* entry.
* **Deterministic eviction**: recency is a pure function of the
  get/put sequence (an insertion-ordered dict, touched on hit), so two
  identical runs evict identically — the obs determinism contract
  extends through the cache.
* **Pin/unpin**: pinned pages are never evicted by capacity pressure
  (a reader gathering a multi-page element pins the pages it is
  walking). Pins nest; explicit :meth:`invalidate` removes a page
  regardless of pins — an invalidated page's bytes are stale by
  definition.
* **Write-through invalidation**: the pool never holds dirty data. The
  owning store writes to the pager first and then either refreshes the
  cached copy (full-page write) or invalidates it (partial write,
  free, reuse).

The pool keeps its own hit/miss/eviction tallies so it is useful
without an observability sink; with one attached it additionally
exports ``cache.pool.*`` counters, a hit-ratio gauge and a fixed-bucket
byte-occupancy histogram.
"""

from __future__ import annotations

from repro.errors import CacheError
from repro.obs.events import Severity
from repro.obs.instrument import Instrumented, Observability

#: Fixed byte-occupancy histogram boundaries: page-ish through tens of
#: megabytes. Fixed at module level so snapshots are comparable across
#: runs and pool sizes.
OCCUPANCY_BUCKETS: tuple[float, ...] = (
    4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0, 16777216.0, 67108864.0,
)


class BufferPool(Instrumented):
    """A bounded, deterministic LRU cache of page images."""

    def __init__(self, capacity_pages: int,
                 obs: Observability | None = None):
        if capacity_pages < 1:
            raise CacheError(
                f"buffer pool needs capacity >= 1 page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        # Insertion order is recency order: oldest first. A hit re-inserts.
        self._pages: dict[int, bytes] = {}
        self._pins: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejections = 0
        if obs is not None:
            self.instrument(obs)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._pages

    def pages(self) -> list[int]:
        """Cached page numbers in eviction order (oldest first)."""
        return list(self._pages)

    @property
    def occupancy_bytes(self) -> int:
        return sum(len(data) for data in self._pages.values())

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def is_pinned(self, page_no: int) -> bool:
        return self._pins.get(page_no, 0) > 0

    def stats(self) -> dict:
        return {
            "capacity_pages": self.capacity_pages,
            "cached_pages": len(self._pages),
            "occupancy_bytes": self.occupancy_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
            "pinned_pages": sum(1 for c in self._pins.values() if c > 0),
        }

    # -- cache operations ---------------------------------------------------------

    def get(self, page_no: int) -> bytes | None:
        """The cached bytes of ``page_no``, or None; a hit renews recency."""
        data = self._pages.get(page_no)
        metrics = self._obs.metrics
        if data is None:
            self.misses += 1
            metrics.counter("cache.pool.misses").inc()
        else:
            self.hits += 1
            metrics.counter("cache.pool.hits").inc()
            # Touch: move to the most-recent end.
            del self._pages[page_no]
            self._pages[page_no] = data
        metrics.gauge("cache.pool.hit_ratio").set(self.hit_ratio)
        return data

    def put(self, page_no: int, data: bytes) -> bool:
        """Insert (or refresh) a page image; returns False when a full
        pool of pinned pages forced a rejection."""
        data = bytes(data)
        if page_no in self._pages:
            del self._pages[page_no]
            self._pages[page_no] = data
            self._observe_occupancy()
            return True
        while len(self._pages) >= self.capacity_pages:
            victim = self._eviction_victim()
            if victim is None:
                self.rejections += 1
                self._obs.metrics.counter("cache.pool.rejections").inc()
                self._obs.events.record(
                    Severity.WARNING, "cache.pool", "put.rejected",
                    page=page_no, pinned=len(self._pins),
                )
                return False
            del self._pages[victim]
            self.evictions += 1
            self._obs.metrics.counter("cache.pool.evictions").inc()
            self._obs.events.record(
                Severity.DEBUG, "cache.pool", "page.evicted",
                page=victim, for_page=page_no,
            )
        self._pages[page_no] = data
        self._observe_occupancy()
        return True

    def _eviction_victim(self) -> int | None:
        """Oldest unpinned page, or None when every entry is pinned."""
        for page_no in self._pages:
            if self._pins.get(page_no, 0) == 0:
                return page_no
        return None

    def invalidate(self, page_no: int) -> bool:
        """Drop ``page_no`` if cached (regardless of pins); stale bytes
        must never be served after the page is rewritten or reused."""
        if page_no not in self._pages:
            return False
        del self._pages[page_no]
        self.invalidations += 1
        self._obs.metrics.counter("cache.pool.invalidations").inc()
        return True

    def clear(self) -> None:
        """Drop every entry and every pin."""
        self.invalidations += len(self._pages)
        if self._pages:
            self._obs.metrics.counter("cache.pool.invalidations").inc(
                len(self._pages)
            )
        self._pages.clear()
        self._pins.clear()

    # -- pinning ---------------------------------------------------------------

    def pin(self, page_no: int) -> None:
        """Protect ``page_no`` from eviction until unpinned (pins nest)."""
        self._pins[page_no] = self._pins.get(page_no, 0) + 1

    def unpin(self, page_no: int) -> None:
        count = self._pins.get(page_no, 0)
        if count <= 0:
            raise CacheError(f"page {page_no} is not pinned")
        if count == 1:
            del self._pins[page_no]
        else:
            self._pins[page_no] = count - 1

    # -- observability ---------------------------------------------------------

    def _observe_occupancy(self) -> None:
        metrics = self._obs.metrics
        occupancy = self.occupancy_bytes
        metrics.gauge("cache.pool.pages").set(len(self._pages))
        metrics.gauge("cache.pool.occupancy_bytes").set(occupancy)
        metrics.histogram(
            "cache.pool.occupancy_bytes_distribution",
            buckets=OCCUPANCY_BUCKETS,
        ).observe(occupancy)

    def __repr__(self) -> str:
        return (
            f"BufferPool({len(self._pages)}/{self.capacity_pages} pages, "
            f"{self.hits} hits, {self.misses} misses)"
        )
