"""Provenance: tracking and querying derivation chains (§4.2).

"By storing derivation objects it is possible to keep track of, and
query, manipulations to media objects" — and "information about the
various production steps and their ordering are especially useful if
earlier steps need to be repeated or undone".

:class:`ProvenanceGraph` is a DAG over media objects. Edges run from each
derived object's inputs to the derived object. Registration walks
derivation objects recursively, so registering the final object of a
production pipeline captures the whole chain (Figure 4a's instance
diagram, programmatically).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.media_object import DerivedMediaObject, MediaObject
from repro.errors import MediaModelError


class ProvenanceGraph:
    """A DAG of media objects linked by derivation."""

    def __init__(self) -> None:
        self._objects: dict[str, MediaObject] = {}
        self._inputs: dict[str, tuple[str, ...]] = {}
        self._outputs: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------------

    def register(self, obj: MediaObject) -> MediaObject:
        """Add ``obj`` and, recursively, everything it derives from."""
        if obj.object_id in self._objects:
            return obj
        self._objects[obj.object_id] = obj
        self._outputs.setdefault(obj.object_id, set())
        if isinstance(obj, DerivedMediaObject):
            inputs = obj.derivation_object.inputs
            self._inputs[obj.object_id] = tuple(i.object_id for i in inputs)
            for parent in inputs:
                self.register(parent)
                self._outputs[parent.object_id].add(obj.object_id)
        else:
            self._inputs[obj.object_id] = ()
        return obj

    def register_all(self, objects: Iterable[MediaObject]) -> None:
        for obj in objects:
            self.register(obj)

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj: MediaObject) -> bool:
        return obj.object_id in self._objects

    def get(self, object_id: str) -> MediaObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise MediaModelError(f"unknown object id {object_id!r}") from None

    def by_name(self, name: str) -> MediaObject:
        matches = [o for o in self._objects.values() if o.name == name]
        if not matches:
            raise MediaModelError(f"no registered object named {name!r}")
        if len(matches) > 1:
            raise MediaModelError(f"ambiguous name {name!r} ({len(matches)} objects)")
        return matches[0]

    # -- queries -------------------------------------------------------------------

    def antecedents(self, obj: MediaObject) -> list[MediaObject]:
        """Direct inputs of ``obj`` (empty for non-derived objects)."""
        return [self.get(i) for i in self._inputs.get(obj.object_id, ())]

    def derivatives(self, obj: MediaObject) -> list[MediaObject]:
        """Objects directly derived from ``obj``."""
        return [self.get(i) for i in sorted(self._outputs.get(obj.object_id, ()))]

    def lineage(self, obj: MediaObject) -> list[MediaObject]:
        """All transitive antecedents, nearest first (BFS order)."""
        seen: dict[str, MediaObject] = {}
        frontier = [obj.object_id]
        while frontier:
            next_frontier = []
            for oid in frontier:
                for parent_id in self._inputs.get(oid, ()):
                    if parent_id not in seen:
                        seen[parent_id] = self.get(parent_id)
                        next_frontier.append(parent_id)
            frontier = next_frontier
        return list(seen.values())

    def descendants(self, obj: MediaObject) -> list[MediaObject]:
        """All objects transitively derived from ``obj`` (BFS order)."""
        seen: dict[str, MediaObject] = {}
        frontier = [obj.object_id]
        while frontier:
            next_frontier = []
            for oid in frontier:
                for child_id in sorted(self._outputs.get(oid, ())):
                    if child_id not in seen:
                        seen[child_id] = self.get(child_id)
                        next_frontier.append(child_id)
            frontier = next_frontier
        return list(seen.values())

    def roots(self) -> list[MediaObject]:
        """Non-derived objects: the "raw material" of the production."""
        return [
            o for oid, o in self._objects.items() if not self._inputs[oid]
        ]

    def production_order(self) -> list[MediaObject]:
        """Topological order: every object after all of its antecedents.

        This is "the various production steps and their ordering" — replay
        the derivations in this order to rebuild everything.
        """
        in_degree = {oid: len(parents) for oid, parents in self._inputs.items()}
        ready = sorted(oid for oid, deg in in_degree.items() if deg == 0)
        order: list[MediaObject] = []
        while ready:
            oid = ready.pop(0)
            order.append(self._objects[oid])
            for child in sorted(self._outputs[oid]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._objects):
            raise MediaModelError("derivation graph contains a cycle")
        return order

    def derivation_steps(self, obj: MediaObject) -> list[str]:
        """Human-readable production steps leading to ``obj``.

        >>> # e.g. ["fade(videoc1, videoc2)", "concat(cut1, fade, cut2)"]
        """
        chain = [o for o in reversed(self.lineage(obj))] + [obj]
        steps = []
        for o in chain:
            if isinstance(o, DerivedMediaObject):
                dobj = o.derivation_object
                args = ", ".join(i.name for i in dobj.inputs)
                steps.append(f"{o.name} = {dobj.derivation.name}({args})")
        return steps
