"""Media objects (§3.1-3.2): machine-readable representations of artifacts.

A *media object* pairs a media descriptor with access to its content. The
model distinguishes:

* **non-derived** media objects — their elements are stored, reached
  through the interpretation of a BLOB or held directly as a timed
  stream;
* **derived** media objects — their elements are "calculated when
  needed" from other media objects via a derivation object (§4.2).

Identity matters: interpretation, derivation and composition all relate
media objects, so each object carries a unique id used by the provenance
graph and the database catalog.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.core.descriptors import MediaDescriptor
from repro.core.media_types import MediaKind, MediaType
from repro.core.streams import TimedStream
from repro.errors import MediaModelError
from repro.obs.instrument import Instrumented

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.derivations import DerivationCache
    from repro.core.derivation import DerivationObject

_ids = itertools.count(1)


def _next_id(prefix: str) -> str:
    return f"{prefix}{next(_ids)}"


class MediaObject:
    """Base class: a named, typed, described representation of an artifact.

    Subclasses provide content access: :meth:`stream` for time-based
    kinds, :meth:`value` for still kinds (images, text).
    """

    def __init__(
        self,
        media_type: MediaType,
        descriptor: MediaDescriptor,
        name: str | None = None,
    ):
        media_type.validate_media_descriptor(descriptor)
        self.media_type = media_type
        self.descriptor = descriptor
        self.object_id = _next_id("mo")
        self.name = name or self.object_id

    @property
    def kind(self) -> MediaKind:
        return self.media_type.kind

    @property
    def is_derived(self) -> bool:
        return False

    def stream(self) -> TimedStream:
        """The object's timed stream (time-based kinds only)."""
        raise MediaModelError(
            f"{type(self).__name__} {self.name!r} has no timed stream"
        )

    def value(self) -> Any:
        """The object's value (still kinds only)."""
        raise MediaModelError(f"{type(self).__name__} {self.name!r} has no value")

    def __repr__(self) -> str:
        derived = ", derived" if self.is_derived else ""
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self.media_type.name}{derived})"
        )


class StreamMediaObject(MediaObject):
    """A non-derived media object holding its timed stream directly.

    This is the in-memory form: freshly captured or fully expanded
    material. Objects whose elements live in a BLOB use
    :class:`InterpretedMediaObject` instead.
    """

    def __init__(
        self,
        media_type: MediaType,
        descriptor: MediaDescriptor,
        stream: TimedStream,
        name: str | None = None,
    ):
        super().__init__(media_type, descriptor, name)
        if stream.media_type.name != media_type.name:
            raise MediaModelError(
                f"stream type {stream.media_type.name!r} does not match "
                f"object type {media_type.name!r}"
            )
        self._stream = stream

    def stream(self) -> TimedStream:
        return self._stream


class StillMediaObject(MediaObject):
    """A non-derived, non-time-based media object (image, text)."""

    def __init__(
        self,
        media_type: MediaType,
        descriptor: MediaDescriptor,
        value: Any,
        name: str | None = None,
    ):
        super().__init__(media_type, descriptor, name)
        if media_type.kind.is_time_based:
            raise MediaModelError(
                f"{media_type.name} is time-based; use a stream-backed object"
            )
        self._value = value

    def value(self) -> Any:
        return self._value


class InterpretedMediaObject(MediaObject):
    """A non-derived media object reached through a BLOB interpretation.

    The object does not copy element data: :meth:`stream` materializes a
    timed stream whose element payloads are read from the BLOB through
    the interpretation's placement table (Definition 5). An optional
    ``decode`` hook turns stored bytes into domain payloads (decoded
    frames, sample arrays), so derivations can consume BLOB-resident
    media directly.
    """

    def __init__(self, interpretation, sequence_name: str, decode=None):
        sequence = interpretation.sequence(sequence_name)
        super().__init__(
            sequence.media_type, sequence.media_descriptor, name=sequence_name
        )
        self.interpretation = interpretation
        self.sequence_name = sequence_name
        self.decode = decode

    def stream(self) -> TimedStream:
        return self.interpretation.materialize(
            self.sequence_name, decode=self.decode
        )

    def stream_lazy(self) -> TimedStream:
        """Stream with placement-only elements (payloads not read)."""
        return self.interpretation.materialize(
            self.sequence_name, read_payloads=False
        )


class DerivedMediaObject(MediaObject, Instrumented):
    """A derived media object (§4.2): content computed on demand.

    Holds a :class:`~repro.core.derivation.DerivationObject` — "the
    information needed to compute a derived object, references to the
    media objects and parameter values used". :meth:`stream`/:meth:`value`
    expand it; :meth:`materialize` expands once and caches, modeling the
    decision to store the expansion when real-time expansion is
    infeasible.

    Materialization state lives in one of two places. Standalone, the
    object keeps a private single-expansion memo (the original
    behaviour). With a :class:`~repro.cache.derivations.DerivationCache`
    attached (:meth:`attach_cache`, or implicitly through a
    cache-carrying :class:`~repro.engine.player.Player`), the memo is
    bypassed entirely: expansions are offered to the cache, which admits
    and evicts them under a global byte budget using its cost-driven
    policy — the §4.2 materialize-vs-expand decision made continuously.

    Instrumentable: with a sink attached, expansions, cache hits and
    materializations are counted per derivation kind and each expansion
    is a logical-clock span — the data behind the §4.2 store-or-expand
    decision.
    """

    def __init__(
        self,
        media_type: MediaType,
        descriptor: MediaDescriptor,
        derivation_object: "DerivationObject",
        name: str | None = None,
    ):
        super().__init__(media_type, descriptor, name)
        self.derivation_object = derivation_object
        self._expanded: MediaObject | None = None
        self._cache: "DerivationCache | None" = None

    @property
    def is_derived(self) -> bool:
        return True

    @property
    def is_materialized(self) -> bool:
        if self._cache is not None:
            return self in self._cache
        return self._expanded is not None

    def attach_cache(self, cache: "DerivationCache | None") -> "DerivedMediaObject":
        """Route materialization through ``cache`` (None detaches).

        Attaching moves any existing memoized expansion into the cache
        (subject to its admission policy) and clears the memo, so the
        unbounded per-object memo is fully replaced by the shared,
        byte-budgeted cache. Returns ``self`` for chaining.
        """
        if cache is not None and self._expanded is not None:
            cache.put(self, self._expanded)
        self._cache = cache
        if cache is not None:
            self._expanded = None
        return self

    def expand(self) -> MediaObject:
        """Compute the non-derived equivalent (never cached)."""
        kind = self.derivation_object.derivation.name
        with self._obs.tracer.span(
            "core.expand", derivation=kind, object=self.name,
        ):
            self._obs.metrics.counter("core.derivation.expansions").inc(
                derivation=kind
            )
            return self.derivation_object.expand()

    def materialize(self) -> MediaObject:
        """Expand once and cache — "store a non-derived object" (§4.2)."""
        kind = self.derivation_object.derivation.name
        if self._cache is not None:
            cached = self._cache.get(self)
            if cached is not None:
                self._obs.metrics.counter("core.derivation.cache_hits").inc(
                    derivation=kind
                )
                return cached
            expanded = self.expand()
            self._cache.put(self, expanded)
            self._obs.metrics.counter(
                "core.derivation.materializations"
            ).inc(derivation=kind)
            return expanded
        if self._expanded is None:
            self._expanded = self.expand()
            self._obs.metrics.counter(
                "core.derivation.materializations"
            ).inc(derivation=kind)
        return self._expanded

    def discard_materialization(self) -> None:
        """Drop the cached expansion, keeping only the derivation object."""
        self._expanded = None
        if self._cache is not None:
            self._cache.discard(self)

    def _target(self) -> MediaObject:
        if self._cache is not None:
            return self.materialize()
        if self._expanded is not None:
            self._obs.metrics.counter("core.derivation.cache_hits").inc(
                derivation=self.derivation_object.derivation.name
            )
            return self._expanded
        return self.expand()

    def stream(self) -> TimedStream:
        return self._target().stream()

    def value(self) -> Any:
        return self._target().value()

    def antecedents(self) -> list[MediaObject]:
        """The media objects this object is derived from."""
        return list(self.derivation_object.inputs)
