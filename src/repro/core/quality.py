"""Descriptive quality factors (§2.2 "Quality Factors").

Lossy codecs are tuned by numeric parameters (quantizer scales, bit
allocations) that "should not be visible at the data modeling level".
Instead, attributes carry *descriptive quality factors* — "broadcast
quality", "VHS quality", "CD quality" — and the mapping from factor to
low-level codec parameters lives here, below the model.

A :class:`QualityLadder` is an ordered scale of named factors, each
bound to the codec parameters that realize it and to nominal data-rate
expectations used by resource allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import QualityError


@dataclass(frozen=True, slots=True)
class QualityFactor:
    """One named quality level.

    Parameters
    ----------
    name:
        The descriptive label visible at the data-modeling level.
    rank:
        Position in the ladder; higher means better quality.
    codec_params:
        The hidden low-level parameters realizing this quality
        (e.g. ``{"jpeg_quality": 35}``), keyed by parameter name.
    nominal_bits_per_unit:
        Expected encoded bits per pixel (video/image) or per sample
        (audio); used for resource estimates, not enforced.
    """

    name: str
    rank: int
    codec_params: Mapping[str, Any] = field(default_factory=dict)
    nominal_bits_per_unit: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise QualityError("quality factor name must be non-empty")
        object.__setattr__(self, "codec_params", dict(self.codec_params))

    def __lt__(self, other: "QualityFactor") -> bool:
        if not isinstance(other, QualityFactor):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "QualityFactor") -> bool:
        if not isinstance(other, QualityFactor):
            return NotImplemented
        return self.rank <= other.rank

    def __str__(self) -> str:
        return self.name


class QualityLadder:
    """An ordered scale of quality factors for one medium.

    >>> VIDEO_QUALITY.get("VHS quality").rank < VIDEO_QUALITY.get("broadcast quality").rank
    True
    """

    def __init__(self, medium: str, factors: list[QualityFactor]):
        if not factors:
            raise QualityError("a quality ladder needs at least one factor")
        ranks = [f.rank for f in factors]
        if len(set(ranks)) != len(ranks):
            raise QualityError("quality ranks must be distinct")
        names = [f.name for f in factors]
        if len(set(names)) != len(names):
            raise QualityError("quality names must be distinct")
        self.medium = medium
        self._by_name = {f.name: f for f in factors}
        self._ordered = sorted(factors, key=lambda f: f.rank)

    def get(self, name: str) -> QualityFactor:
        try:
            return self._by_name[name]
        except KeyError:
            raise QualityError(
                f"unknown {self.medium} quality {name!r}; "
                f"known: {', '.join(f.name for f in self._ordered)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def ordered(self) -> list[QualityFactor]:
        """Factors from lowest to highest quality."""
        return list(self._ordered)

    def lowest(self) -> QualityFactor:
        return self._ordered[0]

    def highest(self) -> QualityFactor:
        return self._ordered[-1]

    def at_most(self, name: str) -> list[QualityFactor]:
        """All factors no better than ``name`` (for scalable delivery)."""
        ceiling = self.get(name)
        return [f for f in self._ordered if f.rank <= ceiling.rank]

    def codec_params(self, name: str) -> dict[str, Any]:
        """The hidden codec parameters realizing quality ``name``."""
        return dict(self.get(name).codec_params)


#: Video quality ladder; jpeg_quality feeds the JPEG-like codec's
#: quantization scaling, nominal bits-per-pixel follows the paper's
#: Figure 2 arithmetic ("about 0.5 bits per pixel ... will give VHS
#: quality").
VIDEO_QUALITY = QualityLadder("video", [
    QualityFactor("preview quality", 10, {"jpeg_quality": 10}, 0.25),
    QualityFactor("VHS quality", 20, {"jpeg_quality": 35}, 0.5),
    QualityFactor("broadcast quality", 30, {"jpeg_quality": 75}, 1.5),
    QualityFactor("production quality", 40, {"jpeg_quality": 92}, 3.0),
    QualityFactor("lossless quality", 50, {"jpeg_quality": 100}, 12.0),
])

#: Audio quality ladder; bits-per-unit is bits per sample per channel.
AUDIO_QUALITY = QualityLadder("audio", [
    QualityFactor("phone quality", 10, {"sample_rate": 8000, "sample_size": 8}, 8),
    QualityFactor("AM quality", 20, {"sample_rate": 22050, "sample_size": 8}, 8),
    QualityFactor("FM quality", 30, {"sample_rate": 32000, "sample_size": 16}, 16),
    QualityFactor("CD quality", 40, {"sample_rate": 44100, "sample_size": 16}, 16),
    QualityFactor("DAT quality", 50, {"sample_rate": 48000, "sample_size": 16}, 16),
])
