"""Generic timing operations on timed streams.

These are the media-independent primitives behind "derivations changing
timing" (§4.2): temporal translation ("uniformly incrementing element
start times"), scaling ("uniformly scaling element durations and start
times"), selection, concatenation and merging. They apply "to video
sequences, audio sequences or any other time-based value".

All operations are non-destructive: they return new streams sharing the
(immutable) elements of their inputs, never copying payloads.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.elements import MediaElement
from repro.core.rational import Rational, as_rational
from repro.core.streams import TimedStream, TimedTuple
from repro.errors import StreamError


def translate(stream: TimedStream, offset_ticks: int) -> TimedStream:
    """Temporal translation: add ``offset_ticks`` to every start time."""
    tuples = [
        TimedTuple(t.element, t.start + offset_ticks, t.duration)
        for t in stream
    ]
    return TimedStream(
        stream.media_type, tuples,
        time_system=stream.time_system, validate_constraints=False,
    )


def scale(stream: TimedStream, factor) -> TimedStream:
    """Temporal scaling: multiply starts and durations by ``factor``.

    ``factor`` must be a positive rational and must keep every start and
    duration integral (scale by 2, or by 1/2 on even timings); otherwise
    the stream cannot be expressed in its time system and a
    :class:`StreamError` is raised. To play a stream slower or faster
    without this restriction, rescale its *time system* instead (the
    mapping ``D_f``), which is what players do.
    """
    factor = as_rational(factor)
    if factor <= 0:
        raise StreamError(f"scale factor must be positive, got {factor}")
    tuples = []
    for t in stream:
        start = Rational(t.start) * factor
        duration = Rational(t.duration) * factor
        if start.denominator != 1 or duration.denominator != 1:
            raise StreamError(
                f"scaling by {factor} does not preserve integral ticks "
                f"(start {t.start} -> {start}); rescale the time system instead"
            )
        tuples.append(TimedTuple(t.element, int(start), int(duration)))
    return TimedStream(
        stream.media_type, tuples,
        time_system=stream.time_system, validate_constraints=False,
    )


def select_range(
    stream: TimedStream,
    start_tick: int,
    end_tick: int,
    rebase: bool = True,
) -> TimedStream:
    """Select the tuples lying entirely within ``[start_tick, end_tick)``.

    This is the "cut" primitive of edit lists: selection by time range.
    With ``rebase`` the result is translated so it starts at tick 0.
    """
    if end_tick < start_tick:
        raise StreamError(f"empty range: [{start_tick}, {end_tick})")
    kept = [
        t for t in stream
        if t.start >= start_tick and (t.end <= end_tick if t.duration else t.start < end_tick)
    ]
    if rebase:
        kept = [TimedTuple(t.element, t.start - start_tick, t.duration) for t in kept]
    return TimedStream(
        stream.media_type, kept,
        time_system=stream.time_system, validate_constraints=False,
    )


def select_elements(
    stream: TimedStream,
    indices: Sequence[int],
    rebase: bool = True,
) -> TimedStream:
    """Select tuples by element index, keeping their relative order."""
    tuples = [stream.tuples[i] for i in indices]
    for prev, cur in zip(tuples, tuples[1:]):
        if cur.start < prev.start:
            raise StreamError("selected indices must be time-ordered")
    if rebase and tuples:
        base = tuples[0].start
        tuples = [TimedTuple(t.element, t.start - base, t.duration) for t in tuples]
    return TimedStream(
        stream.media_type, tuples,
        time_system=stream.time_system, validate_constraints=False,
    )


def concat(*streams: TimedStream) -> TimedStream:
    """Concatenate streams end-to-start in time.

    All inputs must share the media type and the time system ("an audio
    sequence cannot be concatenated to a video sequence", §4.2). Each
    stream is rebased to begin where the previous one ends.
    """
    if not streams:
        raise StreamError("concat requires at least one stream")
    first = streams[0]
    for s in streams[1:]:
        if s.media_type.name != first.media_type.name:
            raise StreamError(
                f"cannot concatenate {s.media_type.name} to "
                f"{first.media_type.name}"
            )
        if s.time_system != first.time_system:
            raise StreamError("cannot concatenate streams in different time systems")
    tuples: list[TimedTuple] = []
    cursor = 0
    for s in streams:
        offset = cursor - s.start
        for t in s:
            tuples.append(TimedTuple(t.element, t.start + offset, t.duration))
        cursor += s.span_ticks
    return TimedStream(
        first.media_type, tuples,
        time_system=first.time_system, validate_constraints=False,
    )


def merge(*streams: TimedStream) -> TimedStream:
    """Merge streams on a common timeline, interleaving by start time.

    Unlike :func:`concat`, start times are preserved; the result may be
    non-continuous (overlaps where inputs coincide). This is how chords
    are assembled from per-voice note streams.
    """
    if not streams:
        raise StreamError("merge requires at least one stream")
    first = streams[0]
    for s in streams[1:]:
        if s.media_type.name != first.media_type.name:
            raise StreamError(
                f"cannot merge {s.media_type.name} with {first.media_type.name}"
            )
        if s.time_system != first.time_system:
            raise StreamError("cannot merge streams in different time systems")
    tuples = sorted(
        (t for s in streams for t in s),
        key=lambda t: (t.start, t.end),
    )
    return TimedStream(
        first.media_type, tuples,
        time_system=first.time_system, validate_constraints=False,
    )


def map_elements(
    stream: TimedStream,
    transform: Callable[[MediaElement], MediaElement],
) -> TimedStream:
    """Apply ``transform`` to every element, preserving all timing.

    The primitive behind "derivations changing the content" whose timing
    is untouched (filters, normalization).
    """
    tuples = [
        TimedTuple(transform(t.element), t.start, t.duration) for t in stream
    ]
    return TimedStream(
        stream.media_type, tuples,
        time_system=stream.time_system, validate_constraints=False,
    )


def gaps(stream: TimedStream) -> list[tuple[int, int]]:
    """Uncovered ``[from_tick, to_tick)`` ranges between consecutive elements."""
    result = []
    covered_until: int | None = None
    for t in stream:
        if covered_until is not None and t.start > covered_until:
            result.append((covered_until, t.start))
        covered_until = t.end if covered_until is None else max(covered_until, t.end)
    return result


def overlaps(stream: TimedStream) -> list[tuple[int, int]]:
    """Index pairs ``(i, j)`` of tuples that overlap in time (``i < j``).

    Two tuples overlap when the later one starts strictly before the
    earlier one ends. Start times are non-decreasing, so for each ``i``
    the scan stops at the first ``j`` starting at/after ``i``'s end.
    """
    result = []
    tuples = stream.tuples
    for i, a in enumerate(tuples):
        for j in range(i + 1, len(tuples)):
            b = tuples[j]
            if b.start >= a.end:
                break
            result.append((i, j))
    return result


def retime(
    stream: TimedStream,
    target_media_type=None,
    target_system=None,
) -> TimedStream:
    """Re-express a stream in another time system (and optionally type).

    Each start/end is converted through continuous time and rounded to
    the nearest target tick. Used by type-changing derivations (music at
    1920 Hz ticks synthesized to audio at 44100 Hz).
    """
    media_type = target_media_type or stream.media_type
    system = target_system or media_type.time_system or stream.time_system
    tuples = []
    for t in stream:
        start = stream.time_system.rescale(t.start, system)
        end = stream.time_system.rescale(t.end, system)
        tuples.append(TimedTuple(t.element, start, max(0, end - start)))
    return TimedStream(
        media_type, tuples, time_system=system, validate_constraints=False,
    )
