"""Interpretation: the mapping from BLOBs to media objects (Definition 5).

"An interpretation, I, of a BLOB B, is a mapping from B to a set of media
objects. For each object, I specifies the object's descriptor and its
placement in B. If the object is a media sequence then for each media
element I specifies the element's order within the sequence, its start
time, duration and element descriptor."

The logical view of an interpretation is a *placement table* per
sequence, exactly as in the paper's §4.1 example::

    video1(elementNumber, elementSize, blobPlacement)
    audio1(elementNumber, blobPlacement)

and, for heterogeneous/non-continuous objects::

    video1(elementNumber, startTime, duration,
           elementDescriptor, elementSize, blobPlacement)

Interpretation "supports the timed stream abstraction by encapsulating
information about the low-level encoding and BLOB placement of media
elements": :meth:`Interpretation.materialize` turns a placement table
plus the BLOB into a :class:`~repro.core.streams.TimedStream` whose
payloads are the placed byte spans (optionally decoded by a codec).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.blob.blob import Blob
from repro.core.descriptors import ElementDescriptor, MediaDescriptor
from repro.core.elements import MediaElement
from repro.core.media_types import MediaType
from repro.core.streams import TimedStream, TimedTuple
from repro.core.time_system import DiscreteTimeSystem
from repro.errors import InterpretationError
from repro.obs.instrument import Instrumented


@dataclass(frozen=True, slots=True)
class PlacementEntry:
    """One row of a placement table.

    ``element_number`` is the element's order within the sequence;
    ``start``/``duration`` are discrete time values; ``blob_offset`` and
    ``size`` give the element's placement in the BLOB. Placement order in
    the BLOB may differ from element order — that is how MPEG-style
    out-of-order key elements are represented (§2.2).
    """

    element_number: int
    start: int
    duration: int
    size: int
    blob_offset: int
    element_descriptor: ElementDescriptor | None = None

    def __post_init__(self) -> None:
        if self.element_number < 0:
            raise InterpretationError("element_number must be non-negative")
        if self.duration < 0:
            raise InterpretationError("duration must be non-negative")
        if self.size < 0 or self.blob_offset < 0:
            raise InterpretationError("placement must be non-negative")

    @property
    def end(self) -> int:
        return self.start + self.duration


class InterpretedSequence:
    """The placement table for one media object within a BLOB.

    Rows are kept in element-number order (i.e. time order); the BLOB
    placement column is free to jump around, which covers interleaving,
    padding skips and out-of-order storage.
    """

    def __init__(
        self,
        name: str,
        media_type: MediaType,
        media_descriptor: MediaDescriptor,
        entries: Iterable[PlacementEntry],
        time_system: DiscreteTimeSystem | None = None,
    ):
        media_type.validate_media_descriptor(media_descriptor)
        self.name = name
        self.media_type = media_type
        self.media_descriptor = media_descriptor
        self.time_system = time_system or media_type.time_system
        if self.time_system is None:
            raise InterpretationError(
                f"sequence {name!r}: time-based placement needs a time system"
            )
        rows = sorted(entries, key=lambda e: e.element_number)
        numbers = [e.element_number for e in rows]
        if len(set(numbers)) != len(numbers):
            raise InterpretationError(
                f"sequence {name!r}: duplicate element numbers"
            )
        for prev, cur in zip(rows, rows[1:]):
            if cur.start < prev.start:
                raise InterpretationError(
                    f"sequence {name!r}: element {cur.element_number} starts "
                    f"at {cur.start}, before element {prev.element_number} "
                    f"at {prev.start}"
                )
        self._entries: tuple[PlacementEntry, ...] = tuple(rows)
        self._starts = [e.start for e in rows]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> tuple[PlacementEntry, ...]:
        return self._entries

    # -- logical table view ------------------------------------------------------

    def is_heterogeneous(self) -> bool:
        descriptors = {e.element_descriptor for e in self._entries}
        return len(descriptors) > 1

    def is_variable_size(self) -> bool:
        sizes = {e.size for e in self._entries}
        return len(sizes) > 1

    def is_continuous(self) -> bool:
        return all(
            cur.start == prev.end
            for prev, cur in zip(self._entries, self._entries[1:])
        )

    def table_columns(self) -> tuple[str, ...]:
        """The minimal logical columns, per the paper's §4.1 example.

        Homogeneous constant-size continuous sequences only need
        ``(elementNumber, blobPlacement)``; variable sizes add
        ``elementSize``; heterogeneous or non-continuous sequences need
        the full table.
        """
        full = not self.is_continuous() or self.is_heterogeneous()
        if full:
            return ("elementNumber", "startTime", "duration",
                    "elementDescriptor", "elementSize", "blobPlacement")
        if self.is_variable_size():
            return ("elementNumber", "elementSize", "blobPlacement")
        return ("elementNumber", "blobPlacement")

    def table(self) -> list[tuple]:
        """Render the placement table with exactly :meth:`table_columns`."""
        columns = self.table_columns()
        rows = []
        for e in self._entries:
            values = {
                "elementNumber": e.element_number,
                "startTime": e.start,
                "duration": e.duration,
                "elementDescriptor": e.element_descriptor,
                "elementSize": e.size,
                "blobPlacement": e.blob_offset,
            }
            rows.append(tuple(values[c] for c in columns))
        return rows

    # -- lookup --------------------------------------------------------------------

    def entry(self, element_number: int) -> PlacementEntry:
        lo = bisect.bisect_left(
            [e.element_number for e in self._entries], element_number
        )
        if lo < len(self._entries) and self._entries[lo].element_number == element_number:
            return self._entries[lo]
        raise InterpretationError(
            f"sequence {self.name!r} has no element {element_number}"
        )

    def entries_at_tick(self, tick: int) -> list[PlacementEntry]:
        """Placement rows covering ``tick`` ("the element occurring at a
        specific time")."""
        hi = bisect.bisect_right(self._starts, tick)
        result = []
        for e in self._entries[:hi]:
            if e.duration == 0 and e.start == tick:
                result.append(e)
            elif e.start <= tick < e.end:
                result.append(e)
        return result

    def total_size(self) -> int:
        return sum(e.size for e in self._entries)

    def span_ticks(self) -> int:
        if not self._entries:
            return 0
        return max(e.end for e in self._entries) - self._entries[0].start


class Interpretation(Instrumented):
    """Definition 5: a mapping from a BLOB to a set of media objects.

    Instrumentable (:class:`~repro.obs.instrument.Instrumented`):
    attaching an observability sink counts materializations, element
    reads and bytes pulled through placement tables — the §4.2
    expansion-cost side of the store-or-expand decision.
    """

    def __init__(self, blob: Blob, name: str = "interpretation"):
        self.blob = blob
        self.name = name
        self._sequences: dict[str, InterpretedSequence] = {}

    # -- construction -----------------------------------------------------------

    def add_sequence(self, sequence: InterpretedSequence) -> InterpretedSequence:
        if sequence.name in self._sequences:
            raise InterpretationError(
                f"interpretation already maps sequence {sequence.name!r}"
            )
        self._sequences[sequence.name] = sequence
        return sequence

    def add(
        self,
        name: str,
        media_type: MediaType,
        media_descriptor: MediaDescriptor,
        entries: Iterable[PlacementEntry],
        time_system: DiscreteTimeSystem | None = None,
    ) -> InterpretedSequence:
        """Convenience wrapper building and adding a sequence."""
        return self.add_sequence(InterpretedSequence(
            name, media_type, media_descriptor, entries, time_system
        ))

    # -- access ------------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._sequences)

    def sequence(self, name: str) -> InterpretedSequence:
        try:
            return self._sequences[name]
        except KeyError:
            raise InterpretationError(
                f"interpretation has no sequence {name!r}; have: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._sequences

    def media_objects(self) -> list:
        """One :class:`InterpretedMediaObject` per mapped sequence."""
        from repro.core.media_object import InterpretedMediaObject

        return [InterpretedMediaObject(self, name) for name in self.names()]

    # -- materialization ------------------------------------------------------------

    def materialize(
        self,
        name: str,
        read_payloads: bool = True,
        decode: Callable[[bytes, PlacementEntry], object] | None = None,
    ) -> TimedStream:
        """Turn a placement table into a timed stream.

        With ``read_payloads`` each element's payload is the placed byte
        span (optionally passed through ``decode``); without it the
        elements carry placement sizes but no data — enough for timing
        queries and scheduling without touching the BLOB.
        """
        sequence = self.sequence(name)
        with self._obs.tracer.span(
            "core.materialize", interpretation=self.name, sequence=name,
        ) as span:
            tuples = []
            bytes_read = 0
            for e in sequence:
                payload = None
                if read_payloads:
                    raw = self.blob.read(e.blob_offset, e.size)
                    payload = decode(raw, e) if decode else raw
                    bytes_read += e.size
                element = MediaElement(
                    payload=payload, size=e.size, descriptor=e.element_descriptor
                )
                tuples.append(TimedTuple(element, e.start, e.duration))
            span.set(elements=len(tuples), bytes=bytes_read)
            metrics = self._obs.metrics
            metrics.counter("core.interpretation.materializations").inc(
                sequence=name
            )
            metrics.counter("core.interpretation.bytes_read").inc(bytes_read)
            return TimedStream(
                sequence.media_type,
                tuples,
                time_system=sequence.time_system,
                validate_constraints=False,
            )

    def read_element(self, name: str, element_number: int) -> bytes:
        """Read one element's bytes through its placement row."""
        entry = self.sequence(name).entry(element_number)
        metrics = self._obs.metrics
        metrics.counter("core.interpretation.element_reads").inc(sequence=name)
        metrics.counter("core.interpretation.bytes_read").inc(entry.size)
        return self.blob.read(entry.blob_offset, entry.size)

    def iter_stream(
        self,
        name: str,
        decode: Callable[[bytes, PlacementEntry], object] | None = None,
    ):
        """Lazily yield ``(TimedTuple, PlacementEntry)`` pairs in time order.

        Unlike :meth:`materialize`, BLOB reads happen one element at a
        time as the caller advances — "continuous access to timed
        streams" (§2.2) without holding a 10-minute movie in memory.
        """
        sequence = self.sequence(name)
        metrics = self._obs.metrics
        for entry in sequence:
            metrics.counter("core.interpretation.element_reads").inc(
                sequence=name
            )
            metrics.counter("core.interpretation.bytes_read").inc(entry.size)
            raw = self.blob.read(entry.blob_offset, entry.size)
            payload = decode(raw, entry) if decode else raw
            element = MediaElement(
                payload=payload, size=entry.size,
                descriptor=entry.element_descriptor,
            )
            yield TimedTuple(element, entry.start, entry.duration), entry

    # -- alternative views ------------------------------------------------------------

    def restrict(self, names: Sequence[str], view_name: str | None = None) -> "Interpretation":
        """An alternative interpretation exposing only ``names``.

        "If an interpretation identifies many media objects within a
        BLOB, an alternative interpretation can be constructed by
        removing references to one of the objects ... much like an
        alternative view of the BLOB (e.g., only the audio sequence is
        visible)."
        """
        view = Interpretation(self.blob, view_name or f"{self.name}-view")
        for name in names:
            view.add_sequence(self.sequence(name))
        return view

    def edit_view(
        self,
        name: str,
        keep: Sequence[int],
        view_name: str | None = None,
    ) -> "Interpretation":
        """An alternative interpretation formed by editing a table.

        "From the video1 table, a second interpretation can be formed
        simply by removing table entries or changing their element
        number. The effect resembles video editing which involves
        cutting and reordering video sequences." (§4.1)

        ``keep`` lists the element numbers to retain, in their new
        order; elements are renumbered 0..n-1 and retimed back-to-back
        (keeping their durations). The paper warns that *modifying* an
        interpretation in place risks losing elements, so — following
        its advice — the original is never touched; a new interpretation
        over the same BLOB is returned.
        """
        source = self.sequence(name)
        new_entries = []
        cursor = 0
        for new_number, old_number in enumerate(keep):
            old = source.entry(old_number)
            new_entries.append(PlacementEntry(
                element_number=new_number,
                start=cursor,
                duration=old.duration,
                size=old.size,
                blob_offset=old.blob_offset,
                element_descriptor=old.element_descriptor,
            ))
            cursor += old.duration
        view = Interpretation(self.blob, view_name or f"{self.name}-edit")
        view.add(
            name, source.media_type, source.media_descriptor, new_entries,
            time_system=source.time_system,
        )
        return view

    # -- consistency ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every placement lies inside the BLOB.

        Raises
        ------
        InterpretationError
            If any row's span exceeds the BLOB — the "media elements
            within the BLOB may be effectively lost" failure the paper
            warns about when interpretations and BLOBs drift apart.
        """
        length = len(self.blob)
        for sequence in self._sequences.values():
            for e in sequence:
                if e.blob_offset + e.size > length:
                    raise InterpretationError(
                        f"sequence {sequence.name!r} element "
                        f"{e.element_number} spans [{e.blob_offset}, "
                        f"{e.blob_offset + e.size}) beyond BLOB length {length}"
                    )

    def coverage(self) -> float:
        """Fraction of BLOB bytes referenced by some placement row.

        Less than 1.0 indicates padding or headers (e.g. CD-I sector
        padding); more than 1.0 is impossible but overlapping rows (two
        objects sharing bytes) legitimately push referenced bytes above
        distinct bytes, so bytes are deduplicated before dividing.
        """
        if len(self.blob) == 0:
            return 0.0
        spans = sorted(
            (e.blob_offset, e.blob_offset + e.size)
            for s in self._sequences.values() for e in s
        )
        covered = 0
        cursor = 0
        for begin, end in spans:
            begin = max(begin, cursor)
            if end > begin:
                covered += end - begin
                cursor = end
            cursor = max(cursor, end)
        return covered / len(self.blob)

    def describe(self) -> str:
        """Human-readable summary in the spirit of Figure 2."""
        lines = [f"Interpretation {self.name!r} of BLOB ({len(self.blob)} bytes):"]
        for name in self.names():
            seq = self._sequences[name]
            lines.append(
                f"  {name}: {len(seq)} elements of {seq.media_type.name}, "
                f"table columns {seq.table_columns()}"
            )
        lines.append(f"  coverage: {self.coverage():.1%}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Interpretation({self.name!r}, {len(self._sequences)} sequences, "
            f"blob={len(self.blob)} bytes)"
        )
