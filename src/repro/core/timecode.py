"""SMPTE timecode conversion, including NTSC drop-frame.

Timecode labels frames as ``HH:MM:SS:FF``. For integer frame rates the
mapping from frame number to label is plain arithmetic. NTSC's 30000/1001
rate is handled by *drop-frame* timecode: frame labels 00 and 01 are
skipped at the start of every minute that is not a multiple of ten, so the
labels track wall-clock time to within 3.6 ms per hour while the underlying
frame numbering stays dense.

This module is part of the presentation substrate: interpretation and
composition store discrete time values; timecode is how humans address
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rational import Rational
from repro.core.time_system import DiscreteTimeSystem, NTSC_TIME
from repro.errors import TimeSystemError


@dataclass(frozen=True, slots=True)
class Timecode:
    """An ``HH:MM:SS:FF`` label under a nominal frame rate."""

    hours: int
    minutes: int
    seconds: int
    frames: int
    drop_frame: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.hours:
            raise TimeSystemError("hours must be non-negative")
        if not 0 <= self.minutes < 60:
            raise TimeSystemError("minutes must be in [0, 60)")
        if not 0 <= self.seconds < 60:
            raise TimeSystemError("seconds must be in [0, 60)")
        if self.frames < 0:
            raise TimeSystemError("frames must be non-negative")
        if self.drop_frame and self.seconds == 0 and self.frames in (0, 1):
            if self.minutes % 10 != 0:
                raise TimeSystemError(
                    f"{self} is a dropped label in drop-frame timecode"
                )

    def __str__(self) -> str:
        sep = ";" if self.drop_frame else ":"
        return (
            f"{self.hours:02d}:{self.minutes:02d}:{self.seconds:02d}"
            f"{sep}{self.frames:02d}"
        )


def frame_to_timecode(frame: int, fps: int = 30, drop_frame: bool = False) -> Timecode:
    """Label ``frame`` with SMPTE timecode at nominal integer rate ``fps``.

    ``drop_frame=True`` implements 29.97 drop-frame labelling (only
    meaningful with ``fps=30``).
    """
    if frame < 0:
        raise TimeSystemError("frame number must be non-negative")
    if drop_frame:
        if fps != 30:
            raise TimeSystemError("drop-frame timecode requires fps=30")
        # 2 labels dropped per minute, except every 10th minute.
        frames_per_10min = 10 * 60 * 30 - 9 * 2  # 17982
        frames_per_min = 60 * 30 - 2  # 1798
        tens, rem = divmod(frame, frames_per_10min)
        if rem < 2:
            # Start of a ten-minute block: labels 00 and 01 exist here.
            minute_in_ten = 0
            frame_in_min = rem
        else:
            minute_in_ten, frame_in_min = divmod(rem - 2, frames_per_min)
            if minute_in_ten == 0:
                frame_in_min = rem
            else:
                frame_in_min += 2
        total_minutes = tens * 10 + minute_in_ten
        hours, minutes = divmod(total_minutes, 60)
        seconds, frames = divmod(frame_in_min, 30)
        return Timecode(hours, minutes, seconds, frames, drop_frame=True)

    seconds_total, frames = divmod(frame, fps)
    minutes_total, seconds = divmod(seconds_total, 60)
    hours, minutes = divmod(minutes_total, 60)
    return Timecode(hours, minutes, seconds, frames)


def timecode_to_frame(tc: Timecode, fps: int = 30) -> int:
    """Invert :func:`frame_to_timecode`."""
    nominal = ((tc.hours * 60 + tc.minutes) * 60 + tc.seconds) * fps + tc.frames
    if not tc.drop_frame:
        return nominal
    if fps != 30:
        raise TimeSystemError("drop-frame timecode requires fps=30")
    total_minutes = tc.hours * 60 + tc.minutes
    dropped = 2 * (total_minutes - total_minutes // 10)
    return nominal - dropped


def timecode_seconds(tc: Timecode, system: DiscreteTimeSystem = NTSC_TIME) -> Rational:
    """Continuous time of a timecode label under ``system``.

    For NTSC drop-frame this is exact: the label is first converted to a
    dense frame number, then mapped through ``D_30000/1001``.
    """
    fps_nominal = round(system.frequency.to_seconds())
    frame = timecode_to_frame(tc, fps=fps_nominal)
    return system.to_continuous(frame)
