"""Media types (Definition 1 of the paper).

A *media type* specifies the attributes found in media descriptors and
their possible values; for time-based media it also specifies the form of
element descriptors and the constraints the type imposes on timed streams
(e.g. CD audio forces ``s_{i+1} = s_i + d_i`` and ``d_i = 1``).

The registry ships with the types used by the paper's examples (CD audio,
PAL/NTSC/film video, ADPCM audio, MIDI music, animation, still images)
and applications can register their own.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.core.descriptors import ElementDescriptor, MediaDescriptor
from repro.core.time_system import (
    CD_AUDIO_TIME,
    DAT_TIME,
    DiscreteTimeSystem,
    FILM_TIME,
    MIDI_TIME,
    NTSC_TIME,
    PAL_TIME,
)
from repro.errors import DescriptorError, MediaTypeError


class MediaKind(enum.Enum):
    """Broad families of media; the paper's "type (e.g., image, audio)"."""

    AUDIO = "audio"
    VIDEO = "video"
    IMAGE = "image"
    MUSIC = "music"
    ANIMATION = "animation"
    TEXT = "text"

    @property
    def is_time_based(self) -> bool:
        """Whether objects of this kind are timed streams (vs single values)."""
        return self not in (MediaKind.IMAGE, MediaKind.TEXT)


@dataclass(frozen=True)
class AttributeSpec:
    """Specification of one descriptor attribute.

    ``validator`` receives the value and returns True when acceptable;
    ``choices`` restricts to an enumerated set. Exactly what Definition 1
    calls "the attributes found in media descriptors and their possible
    values".
    """

    name: str
    required: bool = True
    choices: tuple[Any, ...] | None = None
    validator: Callable[[Any], bool] | None = None
    doc: str = ""

    def check(self, value: Any) -> None:
        if self.choices is not None and value not in self.choices:
            raise DescriptorError(
                f"attribute {self.name!r}: {value!r} not among {self.choices}"
            )
        if self.validator is not None and not self.validator(value):
            raise DescriptorError(f"attribute {self.name!r}: invalid value {value!r}")


def _positive(value: Any) -> bool:
    try:
        return value > 0
    # repro: suppress DF006 — validators are total: uncomparable means invalid
    except TypeError:
        return False


def _non_negative(value: Any) -> bool:
    try:
        return value >= 0
    # repro: suppress DF006 — validators are total: uncomparable means invalid
    except TypeError:
        return False


@dataclass(frozen=True)
class MediaType:
    """Definition 1: a specification of media- and element-descriptor forms.

    Parameters
    ----------
    name:
        Unique type name (e.g. ``"cd-audio"``).
    kind:
        The broad :class:`MediaKind`.
    time_system:
        Default discrete time system for streams of this type (None for
        non-time-based kinds such as still images).
    media_attributes:
        Specs for media descriptor attributes.
    element_attributes:
        Specs for element descriptor attributes ("these refer to
        individual elements rather than media objects as a whole").
        Empty for homogeneous types such as CD audio, where "element
        descriptors are not necessary since all elements have the same
        form".
    fixed_duration:
        If not None, every element must have exactly this duration in
        ticks (1 for CD audio samples and fixed-rate video frames).
    continuous:
        Whether streams of this type must be continuous
        (``s_{i+1} = s_i + d_i``).
    event_based:
        Whether elements are duration-less events (MIDI).
    """

    name: str
    kind: MediaKind
    time_system: DiscreteTimeSystem | None = None
    media_attributes: tuple[AttributeSpec, ...] = ()
    element_attributes: tuple[AttributeSpec, ...] = ()
    fixed_duration: int | None = None
    continuous: bool = False
    event_based: bool = False
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise MediaTypeError("media type name must be non-empty")
        if self.kind.is_time_based and self.time_system is None:
            raise MediaTypeError(
                f"time-based media type {self.name!r} requires a time system"
            )
        if self.event_based and self.fixed_duration not in (None, 0):
            raise MediaTypeError("event-based types imply duration 0")
        if self.event_based and self.continuous:
            raise MediaTypeError(
                "a type cannot be both continuous and event-based"
            )

    @property
    def has_element_descriptors(self) -> bool:
        """Whether elements of this type *must* carry descriptors.

        True when some element attribute is required (ADPCM's predictor
        state). Types with only optional element attributes (a video
        frame's ``frame_kind``) accept both bare and described elements.
        """
        return any(spec.required for spec in self.element_attributes)

    # -- descriptor validation -------------------------------------------------

    def validate_media_descriptor(self, descriptor: MediaDescriptor) -> None:
        """Raise :class:`DescriptorError` if ``descriptor`` violates this type."""
        self._validate(descriptor, self.media_attributes, "media")

    def validate_element_descriptor(self, descriptor: ElementDescriptor) -> None:
        """Raise :class:`DescriptorError` if ``descriptor`` violates this type."""
        self._validate(descriptor, self.element_attributes, "element")

    def _validate(
        self,
        descriptor: Mapping[str, Any],
        specs: Iterable[AttributeSpec],
        which: str,
    ) -> None:
        for spec in specs:
            if spec.name not in descriptor:
                if spec.required:
                    raise DescriptorError(
                        f"{self.name}: required {which} attribute "
                        f"{spec.name!r} missing"
                    )
                continue
            spec.check(descriptor[spec.name])

    def make_media_descriptor(self, **attributes: Any) -> MediaDescriptor:
        """Build and validate a media descriptor, filling in ``kind``."""
        attributes.setdefault("kind", self.kind.value)
        attributes.setdefault("media_type", self.name)
        descriptor = MediaDescriptor(attributes)
        self.validate_media_descriptor(descriptor)
        return descriptor

    def make_element_descriptor(self, **attributes: Any) -> ElementDescriptor:
        """Build and validate an element descriptor."""
        descriptor = ElementDescriptor(attributes)
        self.validate_element_descriptor(descriptor)
        return descriptor

    def __str__(self) -> str:
        return f"MediaType({self.name})"


class MediaTypeRegistry:
    """Registry of named media types.

    A single module-level instance :data:`media_type_registry` holds the
    built-in types; tests may build private registries.
    """

    def __init__(self) -> None:
        self._types: dict[str, MediaType] = {}

    def register(self, media_type: MediaType, replace: bool = False) -> MediaType:
        if not replace and media_type.name in self._types:
            raise MediaTypeError(f"media type {media_type.name!r} already registered")
        self._types[media_type.name] = media_type
        return media_type

    def get(self, name: str) -> MediaType:
        try:
            return self._types[name]
        except KeyError:
            raise MediaTypeError(
                f"unknown media type {name!r}; registered: "
                f"{', '.join(sorted(self._types)) or '(none)'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self) -> list[str]:
        return sorted(self._types)

    def by_kind(self, kind: MediaKind) -> list[MediaType]:
        return [t for t in self._types.values() if t.kind is kind]


media_type_registry = MediaTypeRegistry()


def _register_builtins(registry: MediaTypeRegistry) -> None:
    """Install the media types used by the paper's worked examples."""

    registry.register(MediaType(
        name="cd-audio",
        kind=MediaKind.AUDIO,
        time_system=CD_AUDIO_TIME,
        media_attributes=(
            AttributeSpec("sample_rate", choices=(44100,)),
            AttributeSpec("sample_size", choices=(16,)),
            AttributeSpec("channels", choices=(2,)),
            AttributeSpec("encoding", choices=("PCM",)),
            AttributeSpec("duration", required=False, validator=_non_negative),
        ),
        fixed_duration=1,
        continuous=True,
        doc="CD-DA: 44.1 kHz, 16-bit, stereo PCM; homogeneous and uniform.",
    ))

    registry.register(MediaType(
        name="pcm-audio",
        kind=MediaKind.AUDIO,
        time_system=DAT_TIME,
        media_attributes=(
            AttributeSpec("sample_rate", validator=_positive),
            AttributeSpec("sample_size", choices=(8, 16, 24, 32)),
            AttributeSpec("channels", validator=_positive),
            AttributeSpec("encoding", choices=("PCM",)),
        ),
        fixed_duration=1,
        continuous=True,
        doc="General linear PCM audio at any rate.",
    ))

    registry.register(MediaType(
        name="block-audio",
        kind=MediaKind.AUDIO,
        time_system=CD_AUDIO_TIME,
        media_attributes=(
            AttributeSpec("sample_rate", validator=_positive),
            AttributeSpec("sample_size", choices=(8, 16, 24, 32)),
            AttributeSpec("channels", validator=_positive),
            AttributeSpec("encoding", choices=("PCM",)),
            AttributeSpec("block_samples", required=False, validator=_positive),
        ),
        continuous=True,
        doc=(
            "PCM audio whose elements are blocks of samples rather than "
            "single samples (e.g. the 1764-sample-pair units interleaved "
            "after each video frame in the paper's Figure 2). Block "
            "duration in ticks equals samples per block."
        ),
    ))

    registry.register(MediaType(
        name="adpcm-audio",
        kind=MediaKind.AUDIO,
        time_system=CD_AUDIO_TIME,
        media_attributes=(
            AttributeSpec("sample_rate", validator=_positive),
            AttributeSpec("channels", validator=_positive),
            AttributeSpec("encoding", choices=("IMA-ADPCM",)),
            AttributeSpec("block_samples", validator=_positive),
        ),
        element_attributes=(
            AttributeSpec("predictor", validator=lambda v: -32768 <= v <= 32767,
                          doc="initial predictor for the block"),
            AttributeSpec("step_index", validator=lambda v: 0 <= v <= 88,
                          doc="initial step table index for the block"),
        ),
        continuous=True,
        doc=(
            "IMA ADPCM audio; per-block encoding parameters vary over the "
            "sequence, so streams are heterogeneous (the paper's ADPCM "
            "example for element descriptors)."
        ),
    ))

    for name, system in (("pal-video", PAL_TIME),
                         ("ntsc-video", NTSC_TIME),
                         ("film-video", FILM_TIME)):
        registry.register(MediaType(
            name=name,
            kind=MediaKind.VIDEO,
            time_system=system,
            media_attributes=(
                AttributeSpec("frame_rate", validator=_positive),
                AttributeSpec("frame_width", validator=_positive),
                AttributeSpec("frame_height", validator=_positive),
                AttributeSpec("frame_depth", choices=(8, 12, 16, 24, 32)),
                AttributeSpec("color_model", choices=("RGB", "YUV", "GRAY", "CMYK")),
                AttributeSpec("encoding", required=False),
                AttributeSpec("quality_factor", required=False),
            ),
            element_attributes=(
                AttributeSpec("frame_kind", required=False, choices=("I", "P", "B"),
                              doc="inter-frame codecs label key/intermediate frames"),
                AttributeSpec("quantizer", required=False, validator=_positive),
            ),
            fixed_duration=1,
            continuous=True,
            doc=f"Fixed-rate digital video in the {system.name} time system.",
        ))

    registry.register(MediaType(
        name="midi-music",
        kind=MediaKind.MUSIC,
        time_system=MIDI_TIME,
        media_attributes=(
            AttributeSpec("division", validator=_positive,
                          doc="ticks per quarter note"),
            AttributeSpec("tempo_bpm", required=False, validator=_positive),
        ),
        element_attributes=(
            AttributeSpec("status", validator=lambda v: 0x80 <= v <= 0xFF),
            AttributeSpec("channel", validator=lambda v: 0 <= v < 16),
        ),
        event_based=True,
        doc="MIDI event streams; elements are duration-less events.",
    ))

    registry.register(MediaType(
        name="score-music",
        kind=MediaKind.MUSIC,
        time_system=MIDI_TIME,
        media_attributes=(
            AttributeSpec("tempo_bpm", validator=_positive),
        ),
        element_attributes=(
            AttributeSpec("pitch", validator=lambda v: 0 <= v < 128),
            AttributeSpec("velocity", required=False,
                          validator=lambda v: 0 <= v < 128),
        ),
        doc=(
            "Note-level music; chords overlap and rests leave gaps, making "
            "streams non-continuous (the paper's music example)."
        ),
    ))

    registry.register(MediaType(
        name="animation",
        kind=MediaKind.ANIMATION,
        time_system=PAL_TIME,
        media_attributes=(
            AttributeSpec("frame_width", validator=_positive),
            AttributeSpec("frame_height", validator=_positive),
        ),
        element_attributes=(
            AttributeSpec("op", choices=("move", "appear", "disappear", "recolor")),
        ),
        doc=(
            "Animation as movement specifications; objects at rest have no "
            "elements, so streams are non-continuous (the paper's example)."
        ),
    ))

    registry.register(MediaType(
        name="image",
        kind=MediaKind.IMAGE,
        media_attributes=(
            AttributeSpec("width", validator=_positive),
            AttributeSpec("height", validator=_positive),
            AttributeSpec("depth", choices=(1, 8, 24, 32)),
            AttributeSpec("color_model", choices=("RGB", "GRAY", "CMYK", "YUV")),
        ),
        doc="Still images (not time-based).",
    ))

    registry.register(MediaType(
        name="text",
        kind=MediaKind.TEXT,
        media_attributes=(
            AttributeSpec("charset", required=False),
        ),
        doc="Plain text (not time-based).",
    ))


_register_builtins(media_type_registry)
