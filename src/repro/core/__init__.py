"""Core data model: the paper's primary contribution.

This package implements Definitions 1-7 of Gibbs, Breiteneder and
Tsichritzis, "Data Modeling of Time-Based Media" (SIGMOD 1994):

* :mod:`repro.core.time_system` -- discrete time systems (Def. 2)
* :mod:`repro.core.media_types` -- media types and descriptors (Def. 1)
* :mod:`repro.core.streams` -- timed streams and their categories (Def. 3)
* :mod:`repro.core.interpretation` -- BLOB interpretation (Defs. 4-5)
* :mod:`repro.core.derivation` -- derivation objects (Def. 6)
* :mod:`repro.core.composition` -- multimedia composition (Def. 7)
"""

from repro.core.rational import Rational, as_rational
from repro.core.time_system import (
    DiscreteTimeSystem,
    CD_AUDIO_TIME,
    DAT_TIME,
    FILM_TIME,
    MIDI_TIME,
    NTSC_TIME,
    PAL_TIME,
)
from repro.core.intervals import Interval, IntervalRelation, relate
from repro.core.descriptors import ElementDescriptor, MediaDescriptor
from repro.core.media_types import MediaKind, MediaType, media_type_registry
from repro.core.quality import QualityFactor, QualityLadder
from repro.core.elements import MediaElement
from repro.core.streams import StreamCategory, TimedStream, TimedTuple
from repro.core.media_object import DerivedMediaObject, MediaObject
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.derivation import Derivation, DerivationObject, derivation_registry
from repro.core.composition import (
    CompositionRelationship,
    MultimediaObject,
    SpatialComposition,
    TemporalComposition,
)
from repro.core.provenance import ProvenanceGraph
from repro.core.model import (
    AttributeType,
    Entity,
    EntityType,
    ScalarKind,
    video_clip_type,
)

__all__ = [
    "AttributeType",
    "Entity",
    "EntityType",
    "ScalarKind",
    "video_clip_type",
    "Rational",
    "as_rational",
    "DiscreteTimeSystem",
    "CD_AUDIO_TIME",
    "DAT_TIME",
    "FILM_TIME",
    "MIDI_TIME",
    "NTSC_TIME",
    "PAL_TIME",
    "Interval",
    "IntervalRelation",
    "relate",
    "ElementDescriptor",
    "MediaDescriptor",
    "MediaKind",
    "MediaType",
    "media_type_registry",
    "QualityFactor",
    "QualityLadder",
    "MediaElement",
    "StreamCategory",
    "TimedStream",
    "TimedTuple",
    "DerivedMediaObject",
    "MediaObject",
    "Interpretation",
    "PlacementEntry",
    "Derivation",
    "DerivationObject",
    "derivation_registry",
    "CompositionRelationship",
    "MultimediaObject",
    "SpatialComposition",
    "TemporalComposition",
    "ProvenanceGraph",
]
